"""The session layer: compile once, query many, stream answers.

Run with::

    PYTHONPATH=src python examples/api_session.py

Demonstrates the `repro.api` front door (see docs/API.md): a `Session`
that owns the EDB and a storage backend, a `CompiledProgram` whose
classification runs exactly once, an inspectable `QueryPlan`, and the
pull-based `AnswerStream`.
"""

from repro.api import Session

PROGRAM = """
    edge(a, b).  edge(b, c).  edge(c, d).
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- edge(X, Y), tc(Y, Z).
"""


def main() -> None:
    session = Session(store="columnar")
    compiled = session.load(PROGRAM, name="tc")

    # The plan is inspectable before anything runs.
    print(session.explain("q(X, Y) :- tc(X, Y)."))
    print()

    # Lazy streaming: the engine runs only as far as pulled.
    stream = session.query("q(X, Y) :- tc(X, Y).")
    print("first answer:", stream.first(1)[0])
    print("exhausted yet?", stream.exhausted)
    print("full set:", sorted(stream.to_set(), key=str))
    print()

    # Query many: the second query reuses the cached materialization,
    # and classification still ran exactly once.
    reuse = session.query("q(X) :- tc(a, X).")
    print("reachable from a:", sorted(reuse.to_set(), key=str))
    print("served from cache?", reuse.stats.from_cache)
    print("analysis runs:", compiled.analysis_runs)

    # Fact updates invalidate the caches — answers stay correct.
    from repro import parse_program

    _, extra = parse_program("edge(d, e).")
    session.add_facts(extra)
    fresh = session.query("q(X) :- tc(a, X).")
    print("after adding edge(d, e):", sorted(fresh.to_set(), key=str))


if __name__ == "__main__":
    main()
