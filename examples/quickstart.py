#!/usr/bin/env python3
"""Quickstart: parse a program, check its class, compute certain answers.

The scenario is the paper's opening example: transitive closure written
with *non-linear* recursion, which the Section 1.2 elimination procedure
rewrites into the piece-wise linear form, after which the space-efficient
WARD ∩ PWL engine (Theorem 4.2) answers queries.

Run:  python examples/quickstart.py
"""

from repro import parse_program, parse_query, certain_answers
from repro.analysis import (
    is_piecewise_linear,
    is_warded,
    linearize,
    node_width_bound_pwl,
)
from repro.core import Constant
from repro.reasoning import decide_pwl_ward


def main() -> None:
    program, database = parse_program("""
        % a small road network
        edge(vienna, linz).    edge(linz, salzburg).
        edge(salzburg, innsbruck).  edge(innsbruck, bregenz).
        edge(linz, prague).

        % transitive closure, written with non-linear recursion
        reach(X, Y) :- edge(X, Y).
        reach(X, Z) :- reach(X, Y), reach(Y, Z).
    """)

    print("== static analysis ==")
    print(f"warded:             {is_warded(program)}")
    print(f"piece-wise linear:  {is_piecewise_linear(program)}")

    result = linearize(program)
    print(f"after elimination:  piece-wise linear = {result.piecewise_linear}")
    for note in result.notes:
        print(f"  note: {note}")
    program = result.program
    print("\nrewritten program:")
    for rule in program:
        print(f"  {rule}")

    print("\n== query answering ==")
    query = parse_query("q(X, Y) :- reach(X, Y).")
    answers = certain_answers(query, database, program)
    print(f"certain answers to {query}:")
    for x, y in sorted(answers, key=str):
        print(f"  reach({x}, {y})")

    print("\n== the Theorem 4.2 decision procedure, instrumented ==")
    bound = node_width_bound_pwl(query, program.single_head())
    print(f"node-width bound f_WARD∩PWL(q, Σ) = {bound}")
    decision = decide_pwl_ward(
        query,
        (Constant("vienna"), Constant("bregenz")),
        database,
        program,
        trace=True,
    )
    print(f"vienna →* bregenz: {decision.accepted}")
    print(f"  configurations visited: {decision.stats.visited}")
    print(f"  maximal CQ width held:  {decision.stats.max_width}")
    assert decision.trace is not None
    print("  accepting configuration path:")
    for state in decision.trace:
        print(f"    {state if state.atoms else '∅  (accept)'}")


if __name__ == "__main__":
    main()
