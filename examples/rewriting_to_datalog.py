#!/usr/bin/env python3
"""Expressive power in practice: rewriting (WARD ∩ PWL, CQ) to Datalog.

Lemma 6.4 turns a warded piece-wise linear query into an equivalent
piece-wise linear *Datalog* query over fresh C[p] predicates — one per
canonical proof-tree node label.  This script builds the rewriting for
a reachability query, prints (a sample of) the generated rules, and
verifies equivalence against the direct proof-tree engine; it closes
with the Lemma 6.7 witness showing the translation cannot preserve the
*program* expressive power (value invention is genuinely stronger).

Run:  python examples/rewriting_to_datalog.py
"""

from repro import parse_program, parse_query, certain_answers
from repro.analysis import is_piecewise_linear
from repro.datalog import datalog_answers
from repro.expressiveness import (
    pwl_to_datalog,
    refutes_full_program,
    separation_witness,
)


def main() -> None:
    program, database = parse_program("""
        edge(a, b).  edge(b, c).  edge(c, d).  edge(b, e).
        reach(X, Y) :- edge(X, Y).
        reach(X, Z) :- edge(X, Y), reach(Y, Z).
    """)
    query = parse_query("q(X, Y) :- reach(X, Y).")

    rewriting = pwl_to_datalog(query, program, width_bound=3)
    print(f"rewriting: {rewriting.states} canonical labels, "
          f"{rewriting.rules} rules, complete={rewriting.complete}")
    print("output program is full (Datalog):      "
          f"{rewriting.program.is_full()}")
    print("output program is piece-wise linear:   "
          f"{is_piecewise_linear(rewriting.program)}")

    print("\nsample of generated rules:")
    for rule in list(rewriting.program)[:8]:
        print(f"  [{rule.label:5s}] {rule}")

    direct = certain_answers(query, database, program, method="pwl")
    via_datalog = datalog_answers(rewriting.query, database, rewriting.program)
    print(f"\nanswers agree with the direct engine: {via_datalog == direct}")
    print(f"  {len(direct)} certain answers")

    print("\n== the Lemma 6.7 separation ==")
    witness = separation_witness()
    print(f"Σ = {{ {witness.program[0]} }},  D = {{ P(c) }}")
    print("q1 = Q ← R(x,y)        q2 = Q ← R(x,y), P(y)")
    q1 = certain_answers(witness.q1, witness.database, witness.program,
                         method="pwl")
    q2 = certain_answers(witness.q2, witness.database, witness.program,
                         method="pwl")
    print(f"Q1(D) = {q1}   Q2(D) = {q2}")
    from repro.core import Atom, Program, TGD, Variable

    x = Variable("x")
    naive = Program([TGD((Atom("P", (x,)),), (Atom("R", (x, x)),))])
    print("a Datalog candidate P(x) → R(x,x) is refuted: "
          f"{refutes_full_program(naive)}")
    print("(no single Datalog program matches Σ on every CQ — value "
          "invention separates the program expressive powers)")


if __name__ == "__main__":
    main()
