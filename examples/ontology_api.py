#!/usr/bin/env python3
"""A corporate knowledge graph through the OWL 2 QL API.

The paper motivates Vadalog with corporate knowledge graphs: "relevant
business knowledge, for example, knowledge about customers, products,
prices, and competitors" under rule-based reasoning.  This example
builds such a graph with the ontology-level API, compiles it into the
warded piece-wise linear entailment rules of Section 3, and answers
SPARQL-style basic graph patterns under the entailment regime.

Run:  python examples/ontology_api.py
"""

from repro.analysis import is_piecewise_linear, is_warded
from repro.owl2ql import (
    BGPQuery,
    Ontology,
    TriplePattern,
    Var,
    answer_bgp,
    encode,
)


def build_knowledge_graph() -> Ontology:
    return (
        Ontology("corporate-kg")
        # taxonomy
        .subclass("key_account", "customer")
        .subclass("customer", "party")
        .subclass("supplier", "party")
        .subclass("flagship_product", "product")
        # properties
        .subproperty("sells_to", "trades_with")
        .subproperty("buys_from", "trades_with")
        .inverse("sells_to", "buys_from")
        .domain("sells_to", "supplier")
        .range("sells_to", "customer")
        .domain("offers", "supplier")
        .range("offers", "product")
        # every customer has an account manager (value invention)
        .some_values("customer", "has_account_manager")
        # assertions
        .member("acme", "key_account")
        .related("volta_gmbh", "sells_to", "acme")
        .related("volta_gmbh", "offers", "dynamo9")
        .member("dynamo9", "flagship_product")
    )


def main() -> None:
    ontology = build_knowledge_graph()
    encoded = encode(ontology)
    print(
        f"{ontology.axiom_count()} TBox axioms, "
        f"{len(encoded.database)} storage facts, "
        f"{len(encoded.program)} entailment TGDs "
        f"(warded: {is_warded(encoded.program)}, "
        f"PWL: {is_piecewise_linear(encoded.program)})\n"
    )

    questions = [
        (
            "who is a party (through the whole taxonomy)?",
            BGPQuery.make(
                [Var("x")], [TriplePattern(Var("x"), "type", "party")]
            ),
        ),
        (
            "who trades with whom (subproperty closure)?",
            BGPQuery.make(
                [Var("x"), Var("y")],
                [TriplePattern(Var("x"), "trades_with", Var("y"))],
            ),
        ),
        (
            "who buys from volta_gmbh (inverse property)?",
            BGPQuery.make(
                [Var("x")],
                [TriplePattern(Var("x"), "buys_from", "volta_gmbh")],
            ),
        ),
        (
            "suppliers offering a flagship product (join)?",
            BGPQuery.make(
                [Var("s")],
                [
                    TriplePattern(Var("s"), "offers", Var("p")),
                    TriplePattern(Var("p"), "type", "flagship_product"),
                ],
            ),
        ),
        (
            "does acme certainly have an account manager (invention)?",
            BGPQuery.make(
                [],
                [TriplePattern("acme", "has_account_manager", Var("m"))],
            ),
        ),
    ]

    for text, query in questions:
        answers = answer_bgp(query, encoded)
        if query.select:
            rendered = sorted(
                "(" + ", ".join(str(c) for c in row) + ")"
                for row in answers
            )
            print(f"{text}\n  {', '.join(rendered) or '(none)'}\n")
        else:
            print(f"{text}\n  {'yes' if answers == {()} else 'no'}\n")


if __name__ == "__main__":
    main()
