#!/usr/bin/env python3
"""Ontological reasoning with the paper's Example 3.3 (OWL 2 QL core).

The six TGDs implement the heart of the OWL 2 direct semantics
entailment regime: subclass closure, type propagation, property
restrictions (with value invention!), and inverse properties.  The
program is warded and piece-wise linear, so the space-efficient engine
applies.

Run:  python examples/owl2ql_reasoning.py
"""

from repro import parse_program, parse_query, certain_answers
from repro.analysis import wardedness_report


ONTOLOGY = """
    % ---- terminology -------------------------------------------------
    subClass(phd_student, student).
    subClass(student, person).
    subClass(professor, staff).
    subClass(staff, person).

    % every student is enrolled in something; what one is enrolled in
    % is course-like (via the inverse property)
    restriction(student, enrolledIn).
    inverse(enrolledIn, hasEnrolled).
    restriction(course_like, hasEnrolled).

    % ---- assertions ---------------------------------------------------
    type(alice, phd_student).
    type(bob, professor).
    type(carol, student).

    % ---- Example 3.3 rules ---------------------------------------------
    subClassStar(X, Y) :- subClass(X, Y).
    subClassStar(X, Z) :- subClassStar(X, Y), subClass(Y, Z).
    type(X, Z)         :- type(X, Y), subClassStar(Y, Z).
    triple(X, Z, W)    :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X)    :- triple(X, Y, Z), inverse(Y, W).
    type(X, W)         :- triple(X, Y, Z), restriction(W, Y).
"""


def main() -> None:
    program, database = parse_program(ONTOLOGY)

    print("== wardedness report (the paper's underlined wards) ==")
    report = wardedness_report(program)
    for info in report.per_tgd:
        if info.needs_ward:
            print(f"  ward {info.ward}  in  {info.tgd}")
    print(f"warded: {report.warded}, "
          f"piece-wise linear: {program.is_piecewise_linear()}")

    print("\n== inferred types ==")
    query = parse_query("q(X, C) :- type(X, C).")
    for entity, cls in sorted(certain_answers(query, database, program),
                              key=str):
        print(f"  type({entity}, {cls})")

    print("\n== existential reasoning ==")
    # alice must be enrolled in *something* (an invented witness), and
    # that something is course-like.
    enrolled = parse_query("q() :- triple(alice, enrolledIn, W).")
    print("  alice enrolledIn some W:        "
          f"{certain_answers(enrolled, database, program) == {()}}")
    course = parse_query("q() :- triple(alice, enrolledIn, W), type(W, course_like).")
    print("  ... and W is course-like:       "
          f"{certain_answers(course, database, program) == {()}}")
    named = parse_query("q(W) :- triple(alice, enrolledIn, W).")
    print("  named witnesses (none certain): "
          f"{certain_answers(named, database, program)}")


if __name__ == "__main__":
    main()
