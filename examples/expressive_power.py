#!/usr/bin/env python3
"""Expressive power (Section 6): equal combined, strictly more program.

Two results on one screen:

1. **Theorem 6.3 / Lemma 6.4** — as *composite queries* (Σ paired with
   one CQ), WARD ∩ PWL adds nothing over piece-wise linear Datalog:
   every query rewrites into a PWL Datalog program over canonical-CQ
   predicates, here built and evaluated live.
2. **Theorem 6.6 / Lemma 6.7** — decouple the program from the query
   (program expressive power) and the existential quantifier suddenly
   matters: no single Datalog program agrees with
   ``P(x) → ∃y R(x, y)`` on *both* probe queries.  The example runs the
   paper's refutation argument against a few tempting Datalog
   candidates.

Run:  python examples/expressive_power.py
"""

from repro import parse_program, parse_query, certain_answers
from repro.analysis import is_piecewise_linear
from repro.datalog.seminaive import datalog_answers
from repro.expressiveness import (
    pwl_to_datalog,
    refutes_full_program,
    separation_witness,
)


def combined_expressive_power() -> None:
    print("== combined expressive power (Theorem 6.3) ==")
    program, database = parse_program("""
        e(a,b). e(b,c). e(c,d).
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    query = parse_query("q(X,Y) :- t(X,Y).")
    rewriting = pwl_to_datalog(query, program, width_bound=3)
    print(
        f"rewrote (Σ, q) into {rewriting.rules} Datalog rules over "
        f"{rewriting.states} canonical CQs "
        f"(piece-wise linear: {is_piecewise_linear(rewriting.program)})"
    )
    direct = certain_answers(query, database, program, method="pwl")
    via_datalog = datalog_answers(
        rewriting.query, database, rewriting.program
    )
    print(f"direct engine: {len(direct)} answers; "
          f"rewriting: {len(via_datalog)} answers; "
          f"equal: {direct == via_datalog}\n")


def program_expressive_power() -> None:
    print("== program expressive power (Theorem 6.6) ==")
    witness = separation_witness()
    q1_answers = certain_answers(
        witness.q1, witness.database, witness.program, method="pwl"
    )
    q2_answers = certain_answers(
        witness.q2, witness.database, witness.program, method="pwl"
    )
    print("Σ = { P(x) → ∃y R(x, y) },  D = { P(c) }")
    print(f"  q1 = Q ← R(x, y):       certain = {q1_answers == {()}}")
    print(f"  q2 = Q ← R(x, y), P(y): certain = {q2_answers == {()}}")
    print("any Datalog Σ' matching q1 must also satisfy q2 — refuting "
          "candidates:")

    candidates = {
        "P(x) → R(x, x)": "R(X,X) :- P(X).",
        "P(x) → R(x, x) with copy": "R(X,X) :- P(X). P(X) :- R(X,X).",
        "P(x), P(y) → R(x, y)": "R(X,Y) :- P(X), P(Y).",
    }
    for label, text in candidates.items():
        candidate, _ = parse_program(text)
        refuted = refutes_full_program(candidate)
        print(f"  {label:28s} refuted: {refuted}")
    print(
        "\nvalue invention gives warded PWL TGDs strictly more program "
        "expressive power than (PWL) Datalog."
    )


def main() -> None:
    combined_expressive_power()
    program_expressive_power()


if __name__ == "__main__":
    main()
