#!/usr/bin/env python3
"""SPARQL-style negation over the OWL 2 QL entailment core.

The paper's key property (2): "After adding a very mild and easy to
handle negation, the language is able to express SPARQL reasoning
under the OWL 2 QL entailment regime."  The mild negation is
*stratified* negation — it never wraps around recursion.

This example runs the Example 3.3 subclass/type machinery and then
asks two SPARQL-flavoured questions that need NOT EXISTS:

* which declared classes are uninhabited under entailment (no
  instance, even through subclass reasoning)?
* which pairs of entities are "class-separated" (no common inferred
  class)?

Run:  python examples/sparql_negation.py
"""

from repro.datalog.negation import (
    negation_stratification,
    parse_stratified_program,
    stratified_answers,
)
from repro.lang.parser import parse_query

ONTOLOGY = """
    % class declarations
    class(person). class(employee). class(manager).
    class(device). class(robot).

    % the taxonomy
    subClass(employee, person).
    subClass(manager, employee).
    subClass(robot, device).

    % instance data
    type(alice, manager).
    type(bob, employee).
    type(printer, device).
    entity(alice). entity(bob). entity(printer).

    % Example 3.3 core: subclass closure + type transfer
    subClassStar(X, Y) :- subClass(X, Y).
    subClassStar(X, Z) :- subClassStar(X, Y), subClass(Y, Z).
    type(X, Z)         :- type(X, Y), subClassStar(Y, Z).

    % SPARQL NOT EXISTS, stratified on top of the recursion:
    inhabited(C)  :- type(X, C).
    empty(C)      :- class(C), not inhabited(C).

    shared(X, Y)    :- type(X, C), type(Y, C).
    separated(X, Y) :- entity(X), entity(Y), not shared(X, Y).
"""


def main() -> None:
    program, database = parse_stratified_program(ONTOLOGY)
    strata = negation_stratification(program)
    print(f"{len(program)} rules stratify into {len(strata)} strata:")
    for index, layer in enumerate(strata):
        heads = sorted({rule.head.predicate for rule in layer})
        negated = sorted(
            {atom.predicate for rule in layer for atom in rule.negative}
        )
        suffix = f" (negates: {', '.join(negated)})" if negated else ""
        print(f"  stratum {index}: {', '.join(heads)}{suffix}")

    print("\nuninhabited classes under entailment:")
    for (cls,) in sorted(
        stratified_answers(parse_query("q(C) :- empty(C)."),
                           database, program),
        key=str,
    ):
        print(f"  {cls}")

    print("\nclass-separated entity pairs:")
    for x, y in sorted(
        stratified_answers(parse_query("q(X, Y) :- separated(X, Y)."),
                           database, program),
        key=str,
    ):
        print(f"  {x} ⟂ {y}")

    print(
        "\n(alice and bob share `person` through the subclass closure, "
        "so only the printer is separated from them.)"
    )


if __name__ == "__main__":
    main()
