#!/usr/bin/env python3
"""Parallel decisions and reachability indexes: the §7 future-work demo.

Two of the paper's research directions on one workload:

1. *NC² parallelizability* — the per-tuple certainty decisions of an
   all-pairs query workload are independent; a thread pool computes the
   same answer set, and the measured cost profile shows near-linear
   multi-core scaling headroom.
2. *Reachability indexes* — the linear proof search explores a finite
   configuration graph; materializing it once turns every certainty
   check into a 2-hop label intersection (zero graph traversal).

Run:  python examples/parallel_and_indexes.py
"""

import random

from repro import parse_program, parse_query
from repro.core.terms import Constant
from repro.parallel import parallel_certain_answers, speedup_curve
from repro.reachability import TwoHopIndex, configuration_graph
from repro.reasoning import certain_answers


def build_scenario(vertices: int = 14, edges: int = 26, seed: int = 7):
    rng = random.Random(seed)
    pairs = set()
    while len(pairs) < edges:
        a, b = rng.randrange(vertices), rng.randrange(vertices)
        if a != b:
            pairs.add((a, b))
    facts = " ".join(f"road(n{a},n{b})." for a, b in sorted(pairs))
    return parse_program(facts + """
        trip(X, Y) :- road(X, Y).
        trip(X, Z) :- road(X, Y), trip(Y, Z).
    """)


def main() -> None:
    program, database = build_scenario()
    query = parse_query("q(X, Y) :- trip(X, Y).")

    print("== 1. parallel per-tuple decisions ==")
    sequential = certain_answers(query, database, program, method="pwl")
    profile = parallel_certain_answers(
        query, database, program, workers=4, probe_atoms=0, report=True
    )
    print(f"sequential answers: {len(sequential)}")
    print(f"parallel answers:   {len(profile.answers)} "
          f"(equal: {profile.answers == sequential})")
    print(f"independent decisions: {profile.decided_tuples}, "
          f"work {profile.total_work} visits, span {profile.span}")

    costs = list(profile.per_tuple_cost.values())
    print("\nscaling curve (LPT makespan over measured costs):")
    for point in speedup_curve(costs, (1, 2, 4, 8)):
        print(f"  {point.workers:2d} workers: speedup {point.speedup:5.2f}x "
              f"(efficiency {point.efficiency:.0%})")

    print("\n== 2. certainty as indexed reachability ==")
    cfg = configuration_graph(query, database, program, width_bound=3)
    print(f"configuration graph: {len(cfg.graph)} states, "
          f"{cfg.graph.edge_count} transitions")
    index = TwoHopIndex(cfg.graph)
    print(f"2-hop index: {index.stats.label_entries} label entries")

    domain = [Constant(f"n{i}") for i in range(14)]
    agreements = 0
    certain = 0
    for a in domain:
        for b in domain:
            via_index = cfg.certain((a, b), index)
            certain += via_index
            agreements += via_index == ((a, b) in sequential)
    total = len(domain) ** 2
    print(f"checked {total} tuples against the engine: "
          f"{agreements}/{total} agree, {certain} certain")
    print(f"index query traversal: {index.stats.query_visits} node visits "
          "(all answers came from label intersections)")


if __name__ == "__main__":
    main()
