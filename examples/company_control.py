#!/usr/bin/env python3
"""Company control: the Vadalog industrial motivating scenario.

A financial knowledge graph of company ownerships; an entity controls a
company directly or through a chain of controlled intermediaries, and
every controlled company must file a "person of significant control"
record with an invented case identifier (value invention).  The program
is warded and piece-wise linear — exactly the fragment the paper argues
covers most industrial workloads.

Run:  python examples/company_control.py
"""

from repro import parse_program, parse_query, certain_answers
from repro.engine import JoinOptimizer, LinearForestGuide, OperatorNetwork


SCENARIO = """
    % ownership edges: owner, owned
    own(meridian_holdings, atlas_bank).
    own(atlas_bank, coastal_insurance).
    own(coastal_insurance, harbor_credit).
    own(meridian_holdings, polar_securities).
    own(polar_securities, harbor_credit).
    own(quartz_capital, meridian_holdings).

    % control: direct ownership, extended through controlled companies
    control(X, Y) :- own(X, Y).
    control(X, Z) :- control(X, Y), own(Y, Z).

    % every control relationship requires a PSC filing (invented id)
    psc(X, Y, K) :- control(X, Y).
"""


def main() -> None:
    program, database = parse_program(SCENARIO)
    print(f"warded: {program.is_warded()}, "
          f"piece-wise linear: {program.is_piecewise_linear()}")

    print("\n== who controls harbor_credit? ==")
    query = parse_query("q(X) :- control(X, harbor_credit).")
    for (controller,) in sorted(certain_answers(query, database, program),
                                key=str):
        print(f"  {controller}")

    print("\n== quartz_capital's full portfolio ==")
    query = parse_query("q(Y) :- control(quartz_capital, Y).")
    for (company,) in sorted(certain_answers(query, database, program),
                             key=str):
        print(f"  {company}")

    print("\n== every controlled company has a PSC filing ==")
    filing = parse_query("q() :- psc(quartz_capital, harbor_credit, K).")
    print(f"  filing exists: {certain_answers(filing, database, program) == {()}}")

    print("\n== streaming through the Section 7 operator network ==")
    network = OperatorNetwork(
        program,
        optimizer=JoinOptimizer(program, pwl_bias=True),
        guide=LinearForestGuide(),
    )
    result = network.run(database, max_atoms=5000)
    print(f"  events routed:          {result.events}")
    print(f"  atoms derived:          {result.derived}")
    print(f"  intermediate bindings:  {result.intermediate_bindings}")
    print(f"  guide cuts:             {result.guide_cuts}")
    control_facts = result.instance.with_predicate("control")
    print(f"  control facts in fixpoint: {len(control_facts)}")


if __name__ == "__main__":
    main()
