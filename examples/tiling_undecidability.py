#!/usr/bin/env python3
"""The Theorem 5.1 reduction, live: why PWL alone is undecidable.

Builds the paper's fixed PWL (but non-warded!) TGD set Σ and Boolean CQ
q, encodes two tiling systems as databases, and shows that bounded
chase runs of the reduction agree with a direct tiling solver — the
semi-decision behaviour an undecidable problem admits.

Run:  python examples/tiling_undecidability.py
"""

from repro.analysis import is_piecewise_linear, is_warded, wardedness_report
from repro.tiling import (
    TilingSystem,
    find_tiling,
    reduction_holds_within,
    tiling_program,
)


def show_system(name: str, system: TilingSystem, width: int, height: int):
    print(f"-- {name} --")
    tiling = find_tiling(system, width, height)
    if tiling is None:
        print(f"  direct solver: no tiling within {width}x{height}")
    else:
        print("  direct solver found a tiling:")
        for row in tiling:
            print("    " + " ".join(row))
    reduction_answer, solver_answer = reduction_holds_within(
        system, width, height
    )
    print(f"  reduction (bounded chase + CQ): {reduction_answer}")
    print(f"  agreement: {reduction_answer == solver_answer}")
    print()


def main() -> None:
    program = tiling_program()
    print("The fixed reduction program Σ:")
    for rule in program:
        print(f"  {rule}")
    print()
    print(f"Σ is piece-wise linear: {is_piecewise_linear(program)}")
    print(f"Σ is warded:            {is_warded(program)}")
    report = wardedness_report(program)
    for info in report.violations():
        print(f"  violation: {info.failure}")
        print(f"    in rule: {info.tgd}")
    print()

    solvable = TilingSystem.make(
        tiles={"a", "b", "r"},
        left={"a", "b"},
        right={"r"},
        horizontal={("a", "r"), ("b", "r")},
        vertical={("a", "b"), ("b", "b"), ("a", "a"), ("r", "r")},
        start="a",
        finish="b",
    )
    show_system("solvable system", solvable, width=3, height=3)

    unsolvable = TilingSystem.make(
        tiles={"a", "b", "r"},
        left={"a", "b"},
        right={"r"},
        horizontal={("a", "r"), ("b", "r")},
        vertical={("a", "a"), ("r", "r")},
        start="a",
        finish="b",
    )
    show_system("unsolvable system", unsolvable, width=3, height=4)

    print("Because Σ and q are FIXED and only the database varies, a")
    print("decision procedure for CQAns(PWL) would decide the unbounded")
    print("tiling problem — contradiction.  Wardedness is what saves the")
    print("combined fragment (Theorem 4.2).")


if __name__ == "__main__":
    main()
