#!/usr/bin/env python3
"""Dynamic reasoning: maintain certain answers under a fact stream.

Section 7 of the paper plans to exploit the Dyn-FO membership of
reachability: "by maintaining suitable auxiliary data structures when
updating a graph, reachability testing can actually be done in FO, and
thus in SQL."  This example maintains the certain answers of a
transitive-closure query over a live stream of ownership facts — every
insertion is one quantifier-free FO-rule update, every certainty check
an O(1) lookup — and cross-checks the view against a from-scratch
engine run after each update.

Run:  python examples/dynamic_reachability.py
"""

from repro import parse_program, parse_query
from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant
from repro.datalog.seminaive import datalog_answers
from repro.dynfo import IncrementalReasoner


def main() -> None:
    program, _ = parse_program("""
        controls(X, Y) :- owns(X, Y).
        controls(X, Z) :- owns(X, Y), controls(Y, Z).
    """)
    query = parse_query("q(X, Y) :- controls(X, Y).")

    reasoner = IncrementalReasoner(program)
    pattern = reasoner.pattern
    print("recognized closure shape:")
    print(f"  edge predicate:    {pattern.edge_predicate}")
    print(f"  closure predicate: {pattern.closure_predicate}")
    print(f"  orientation:       {pattern.orientation}-linear\n")

    stream = [
        ("meridian", "atlas"),
        ("atlas", "coastal"),
        ("coastal", "harbor"),
        ("quartz", "meridian"),
        ("harbor", "quartz"),     # closes a control cycle!
    ]

    database = Database()
    for owner, owned in stream:
        fact = Atom("owns", (Constant(owner), Constant(owned)))
        database.add(fact)
        new_pairs = reasoner.insert(fact)
        print(f"+ owns({owner}, {owned}) → {new_pairs} new certain pair(s)")

        maintained = reasoner.answers()
        recomputed = datalog_answers(query, database, program)
        assert maintained == recomputed, "maintained view diverged!"
        print(f"  |cert| = {len(maintained)} (cross-checked: OK)")

    print("\nafter the cycle closes, self-control becomes certain:")
    for company in ("meridian", "atlas", "quartz"):
        pair = (Constant(company), Constant(company))
        print(f"  controls({company}, {company}): {reasoner.certain(pair)}")

    stats = reasoner.index.stats
    print(
        f"\nFO-rule work: {stats.pairs_examined} candidate pairs examined "
        f"across {stats.insertions} insertions "
        f"({stats.pairs_added} closure pairs added)"
    )


if __name__ == "__main__":
    main()
