#!/usr/bin/env python3
"""Space efficiency, observed: NLogSpace-style search vs. materialization.

Theorem 4.2 says WARD ∩ PWL query answering is NLogSpace in data
complexity: the decision procedure holds one polynomial-size CQ and
sweeps configurations, instead of materializing the chase.  This script
measures the two observables on growing chain databases:

* the chase materializes Θ(n²) transitive-closure facts,
* the linear proof search for a single decision visits a frontier whose
  *width* stays constant and whose size grows only linearly.

Run:  python examples/space_efficiency_demo.py
"""

from repro.chase import chase
from repro.core import Atom, Constant, Database
from repro.lang.parser import parse_program, parse_query
from repro.reasoning import decide_pwl_ward


def chain_database(n: int) -> Database:
    database = Database()
    for i in range(n - 1):
        database.add(Atom("edge", (Constant(f"n{i}"), Constant(f"n{i+1}"))))
    return database


def main() -> None:
    program, _ = parse_program("""
        reach(X, Y) :- edge(X, Y).
        reach(X, Z) :- edge(X, Y), reach(Y, Z).
    """)
    query = parse_query("q(X, Y) :- reach(X, Y).")

    header = (
        f"{'n':>5} {'chase atoms':>12} {'search states':>14} "
        f"{'frontier peak':>14} {'max CQ width':>13}"
    )
    print(header)
    print("-" * len(header))
    for n in (8, 16, 32, 64):
        database = chain_database(n)
        materialized = chase(database, program)
        decision = decide_pwl_ward(
            query,
            (Constant("n0"), Constant(f"n{n-1}")),
            database,
            program,
        )
        assert decision.accepted
        print(
            f"{n:>5} {len(materialized.instance):>12} "
            f"{decision.stats.visited:>14} "
            f"{decision.stats.max_frontier:>14} "
            f"{decision.stats.max_width:>13}"
        )

    print()
    print("The chase column grows quadratically (it materializes all of")
    print("reach); the search columns grow linearly with constant width —")
    print("the deterministic image of the NLogSpace bound of Theorem 4.2.")


if __name__ == "__main__":
    main()
