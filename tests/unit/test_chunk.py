"""Unit tests for chunk unifiers (Definition 4.3)."""

import pytest

from repro.core.atoms import Atom
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD
from repro.prooftree.chunk import chunk_unifiers, shared_variables

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
XP, YP = Variable("xp"), Variable("yp")
a = Constant("a")


class TestSharedVariables:
    def test_output_variables_are_shared(self):
        atoms = [Atom("r", (X, Y))]
        assert shared_variables(atoms, atoms, {X}) == {X}

    def test_variables_in_rest_are_shared(self):
        atoms = [Atom("r", (X, Y)), Atom("s", (Y,))]
        assert shared_variables(atoms, atoms[:1], set()) == {Y}

    def test_private_variables_not_shared(self):
        atoms = [Atom("r", (X, Y)), Atom("s", (Z,))]
        assert shared_variables(atoms, atoms[:1], set()) == set()


class TestChunkUnifiers:
    def test_paper_unsound_case_blocked(self):
        # CQ Q(x) ← R(x,y), S(y) with TGD P(x') → ∃y' R(x',y'):
        # resolving R(x,y) alone would lose the shared y — no unifier.
        tgd = TGD((Atom("p", (XP,)),), (Atom("r", (XP, YP)),))
        query_atoms = [Atom("r", (X, Y)), Atom("s", (Y,))]
        unifiers = list(chunk_unifiers(query_atoms, {X}, tgd))
        assert unifiers == []

    def test_non_shared_variable_resolves(self):
        tgd = TGD((Atom("p", (XP,)),), (Atom("r", (XP, YP)),))
        query_atoms = [Atom("r", (X, Y))]
        unifiers = list(chunk_unifiers(query_atoms, {X}, tgd))
        assert len(unifiers) == 1
        gamma = unifiers[0].gamma
        assert gamma.apply_term(X) == gamma.apply_term(XP)

    def test_output_variable_cannot_meet_existential(self):
        tgd = TGD((Atom("p", (XP,)),), (Atom("r", (XP, YP)),))
        query_atoms = [Atom("r", (X, Y))]
        # y is an output variable → shared → blocked.
        assert list(chunk_unifiers(query_atoms, {X, Y}, tgd)) == []

    def test_constant_cannot_meet_existential(self):
        tgd = TGD((Atom("p", (XP,)),), (Atom("r", (XP, YP)),))
        query_atoms = [Atom("r", (X, a))]
        assert list(chunk_unifiers(query_atoms, set(), tgd)) == []

    def test_frontier_position_accepts_constant(self):
        tgd = TGD((Atom("p", (XP,)),), (Atom("r", (XP, YP)),))
        query_atoms = [Atom("r", (a, Y))]
        unifiers = list(chunk_unifiers(query_atoms, set(), tgd))
        assert len(unifiers) == 1
        assert unifiers[0].gamma.apply_term(XP) == a

    def test_multi_atom_chunk(self):
        # Both R-atoms must map to the same head atom; their private
        # variables unify with the same existential.
        tgd = TGD((Atom("p", (XP,)),), (Atom("r", (XP, YP)),))
        query_atoms = [Atom("r", (X, Y)), Atom("r", (X, Z))]
        unifiers = list(chunk_unifiers(query_atoms, {X}, tgd))
        sizes = sorted(len(u.s1) for u in unifiers)
        # chunks {first}, {second} are blocked (y/z not shared?? they are
        # private to each atom — but resolving one alone leaves the other
        # in the rest, sharing x only, which is an output): so single-atom
        # chunks ARE allowed for the atom whose private variable is not
        # shared; the two-atom chunk is allowed as well.
        assert 2 in sizes

    def test_two_existentials_cannot_merge(self):
        # Head R(y1', y2') with distinct existentials cannot unify with
        # R(w, w): two fresh nulls are never equal.
        y1, y2 = Variable("y1"), Variable("y2")
        tgd = TGD((Atom("p", (XP,)),), (Atom("r", (y1, y2)),))
        query_atoms = [Atom("r", (W, W))]
        assert list(chunk_unifiers(query_atoms, set(), tgd)) == []

    def test_multi_head_rejected(self):
        tgd = TGD((Atom("p", (XP,)),), (Atom("r", (XP,)), Atom("s", (XP,))))
        with pytest.raises(ValueError, match="single-head"):
            list(chunk_unifiers([Atom("r", (X,))], set(), tgd))

    def test_full_tgd_unrestricted(self):
        # No existentials: any matching subset unifies.
        tgd = TGD((Atom("e", (XP, YP)),), (Atom("t", (XP, YP)),))
        query_atoms = [Atom("t", (X, Y)), Atom("s", (Y,))]
        unifiers = list(chunk_unifiers(query_atoms, set(), tgd))
        assert len(unifiers) == 1

    def test_max_chunk_caps_enumeration(self):
        tgd = TGD((Atom("e", (XP, YP)),), (Atom("t", (XP, YP)),))
        query_atoms = [Atom("t", (X, Y)), Atom("t", (Y, Z)), Atom("t", (Z, W))]
        all_unifiers = list(chunk_unifiers(query_atoms, set(), tgd))
        capped = list(chunk_unifiers(query_atoms, set(), tgd, max_chunk=1))
        assert len(capped) == 3
        assert len(all_unifiers) > len(capped)
