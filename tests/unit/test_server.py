"""Unit tests for the concurrent reasoning server (repro.server).

Covers the MVCC snapshot layer (versions, leases, GC, flattening,
frozen-store enforcement), the embeddable service (snapshot-isolated
queries, cache migration across updates), the NDJSON protocol, and the
daemon + client over a real socket.
"""

import json
import threading
import time

import pytest

from repro.core.atoms import Atom
from repro.core.terms import Constant
from repro.lang.parser import parse_atom
from repro.server import (
    ReasoningClient,
    ReasoningServer,
    ReasoningService,
    ServerError,
    SnapshotManager,
)
from repro.server.protocol import (
    ProtocolError,
    decode_request,
    encode_response,
    handle_request,
)
from repro.storage import BACKENDS, ColumnarStore, FrozenStoreError

PROGRAM = """
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

FULL_QUERY = "q(X, Y) :- path(X, Y)."
BOUND_QUERY = "q(X) :- path(a, X)."


def atom(text: str) -> Atom:
    return parse_atom(text)


def edge(x: str, y: str) -> Atom:
    return Atom("edge", (Constant(x), Constant(y)))


class TestFrozenStores:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_freeze_refuses_mutation(self, backend):
        from repro.storage import make_store

        store = make_store(backend, [edge("a", "b")])
        assert not store.frozen
        store.freeze()
        assert store.frozen
        with pytest.raises(FrozenStoreError):
            store.add(edge("b", "c"))
        with pytest.raises(FrozenStoreError):
            store.discard(edge("a", "b"))
        # Reads still fine, and copies are mutable again.
        assert edge("a", "b") in store
        clone = store.copy()
        assert not clone.frozen
        clone.add(edge("b", "c"))
        assert len(clone) == 2 and len(store) == 1


class TestSnapshotManager:
    def test_install_and_isolation(self):
        manager = SnapshotManager([edge("a", "b")], store="columnar")
        lease0 = manager.current()
        version = manager.install((edge("b", "c"),), ())
        assert version.number == 1
        assert manager.head_version == 1
        # The old lease still reads the old contents.
        assert edge("b", "c") not in lease0.store
        with manager.current() as lease1:
            assert edge("b", "c") in lease1.store
        lease0.release()

    def test_retraction_visible_in_new_version_only(self):
        manager = SnapshotManager([edge("a", "b"), edge("b", "c")])
        old = manager.current()
        manager.install((), (edge("a", "b"),))
        assert edge("a", "b") in old.store
        new = manager.current()
        assert edge("a", "b") not in new.store
        assert len(new.store) == 1
        old.release(), new.release()

    def test_refcount_and_gc(self):
        manager = SnapshotManager([edge("a", "b")])
        lease = manager.current()
        manager.install((edge("b", "c"),), ())
        # v0 still referenced -> alive.
        assert manager.live_versions == (0, 1)
        lease.release()
        assert manager.live_versions == (1,)
        assert manager.collected == 1
        # Idempotent release does not double-decrement.
        lease.release()
        assert manager.refcounts() == {1: 0}

    def test_unreferenced_version_collected_on_install(self):
        manager = SnapshotManager()
        for index in range(3):
            manager.install((edge("a", str(index)),), ())
        assert manager.live_versions == (3,)
        assert manager.collected == 3

    def test_flattening_bounds_depth(self):
        manager = SnapshotManager(
            [edge("a", "b")], store="columnar", flatten_depth=3
        )
        atoms = []
        for index in range(10):
            extra = edge("n", str(index))
            atoms.append(extra)
            manager.install((extra,), ())
        stats = manager.stats()
        assert stats["head_depth"] < 3
        assert stats["flattened"] >= 3
        head = manager.current()
        assert len(head.store) == 11
        for extra in atoms:
            assert extra in head.store
        head.release()

    def test_every_version_frozen(self):
        manager = SnapshotManager([edge("a", "b")])
        manager.install((edge("b", "c"),), ())
        lease = manager.current()
        with pytest.raises(FrozenStoreError):
            lease.store.add(edge("x", "y"))
        lease.release()

    def test_flatten_depth_validated(self):
        with pytest.raises(ValueError):
            SnapshotManager(flatten_depth=0)


class TestReasoningService:
    def test_query_answers_and_version(self):
        service = ReasoningService(PROGRAM)
        result = service.query(BOUND_QUERY)
        assert result.answers == (("b",), ("c",), ("d",))
        assert result.version == 0
        assert result.stats["snapshot_version"] == 0
        assert result.wall_ms >= 0.0

    def test_second_query_hits_version_cache(self):
        service = ReasoningService(PROGRAM)
        first = service.query(FULL_QUERY)
        second = service.query(FULL_QUERY)
        assert not first.stats["from_cache"]
        assert second.stats["from_cache"]
        assert first.answers == second.answers

    def test_update_bumps_version_and_answers(self):
        service = ReasoningService(PROGRAM)
        before = service.query(BOUND_QUERY)
        update = service.apply("+edge(d, e).")
        assert update.effective and update.version == 1
        after = service.query(BOUND_QUERY)
        assert before.version == 0 and after.version == 1
        assert ("e",) in after.answers and ("e",) not in before.answers

    def test_noop_update_installs_nothing(self):
        service = ReasoningService(PROGRAM)
        update = service.apply("+edge(a, b).")  # already present
        assert not update.effective
        assert service.current_version == 0

    def test_in_flight_stream_keeps_its_snapshot(self):
        service = ReasoningService(PROGRAM)
        stream = service.stream(FULL_QUERY)
        stream.first(1)  # engine started on v0
        service.apply("+edge(d, e).")
        rows = {tuple(str(t) for t in row) for row in stream}
        # path over the *original* edges only: no pair involving e.
        assert ("d", "e") not in rows
        assert stream.stats.snapshot_version == 0
        # A fresh query sees the new version.
        assert ("d", "e") in {
            tuple(row) for row in service.query(FULL_QUERY).answers
        }

    def test_stream_release_frees_old_version(self):
        service = ReasoningService(PROGRAM)
        stream = service.stream(FULL_QUERY)
        stream.first(1)
        service.apply("+edge(d, e).")
        assert 0 in service.snapshots.live_versions
        stream.to_set()  # drain -> lease released -> v0 collectable
        assert 0 not in service.snapshots.live_versions

    def test_closed_stream_releases_lease(self):
        service = ReasoningService(PROGRAM)
        stream = service.stream(FULL_QUERY)
        stream.first(1)
        stream.close()
        assert service.snapshots.refcounts()[0] == 0
        assert service.active_streams == 0

    def test_maintainable_fixpoint_migrates_across_update(self):
        service = ReasoningService(PROGRAM)
        warm = service.query(FULL_QUERY)  # populates v0's cache
        update = service.apply("+edge(d, e).")
        assert update.migrated == 1 and not update.fallbacks
        after = service.query(FULL_QUERY)
        # Served from the migrated materialization: no engine rerun.
        assert after.stats["from_cache"]
        assert ("a", "e") in {tuple(r) for r in after.answers}
        assert warm.answers != after.answers

    def test_magic_fixpoint_falls_back_on_update(self):
        service = ReasoningService(PROGRAM)
        service.query(BOUND_QUERY, rewrite="magic")
        update = service.apply("+edge(d, e).")
        assert update.migrated == 0
        assert any("demand-specific" in reason for _, reason in update.fallbacks)
        # Correct after recompute.
        after = service.query(BOUND_QUERY, rewrite="magic")
        assert ("e",) in after.answers

    def test_query_error_counted_and_lease_released(self):
        service = ReasoningService(PROGRAM)
        with pytest.raises(Exception):
            service.query("q(X) :- path(a X")  # parse error
        assert service.errors_total == 1
        assert service.snapshots.refcounts() == {0: 0}

    def test_stats_shape(self):
        service = ReasoningService(PROGRAM, store="columnar")
        service.query(FULL_QUERY)
        service.apply("+edge(d, e).")
        stats = service.stats()
        assert stats["queries_total"] == 1
        assert stats["updates_total"] == 1
        assert stats["snapshots"]["head_version"] == 1
        assert stats["memory"]["edb_atoms"] == 4
        assert stats["memory"]["edb_resident_bytes"] > 0
        json.dumps(stats)  # must be wire-serializable

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_serve(self, backend):
        service = ReasoningService(PROGRAM, store=backend)
        assert service.query(BOUND_QUERY).answers == (
            ("b",), ("c",), ("d",),
        )
        service.apply("+edge(d, e).")
        assert ("e",) in service.query(BOUND_QUERY).answers


class TestProtocol:
    def test_decode_validates(self):
        with pytest.raises(ProtocolError):
            decode_request("not json")
        with pytest.raises(ProtocolError):
            decode_request('["a", "list"]')
        with pytest.raises(ProtocolError):
            decode_request('{"op": "evaporate"}')
        assert decode_request('{"op": "ping"}') == {"op": "ping"}

    def test_roundtrip_query(self):
        service = ReasoningService(PROGRAM)
        request = decode_request(
            json.dumps({"op": "query", "query": BOUND_QUERY, "id": 7})
        )
        response = handle_request(service, request)
        assert response["ok"] and response["id"] == 7
        assert response["answers"] == [["b"], ["c"], ["d"]]
        line = encode_response(response)
        assert "\n" not in line
        assert json.loads(line) == response

    def test_engine_error_becomes_error_response(self):
        service = ReasoningService(PROGRAM)
        response = handle_request(
            service, {"op": "query", "query": "q(X) :- broken(("}
        )
        assert response["ok"] is False
        assert "expected" in response["error"]

    def test_update_accepts_list_and_text(self):
        service = ReasoningService(PROGRAM)
        as_list = handle_request(
            service, {"op": "update", "changes": ["+edge(d, e)."]}
        )
        assert as_list["ok"] and as_list["version"] == 1
        as_text = handle_request(
            service, {"op": "update", "changes": "-edge(d, e)."}
        )
        assert as_text["ok"] and as_text["version"] == 2

    def test_shutdown_returns_none(self):
        service = ReasoningService(PROGRAM)
        assert handle_request(service, {"op": "shutdown"}) is None


@pytest.fixture()
def server():
    service = ReasoningService(PROGRAM, store="columnar")
    daemon = ReasoningServer(service, port=0)
    daemon.serve_in_thread()
    yield daemon
    daemon.close()


class TestDaemonAndClient:
    def test_query_update_stats_ping(self, server):
        host, port = server.address
        with ReasoningClient(host, port) as client:
            assert client.ping() == 0
            result = client.query(BOUND_QUERY)
            assert result.answers == (("b",), ("c",), ("d",))
            assert result.version == 0
            payload = client.update("+edge(d, e).")
            assert payload["version"] == 1
            assert client.query(BOUND_QUERY).answers == (
                ("b",), ("c",), ("d",), ("e",),
            )
            stats = client.stats()
            assert stats["queries_total"] == 2
            assert stats["updates_total"] == 1

    def test_first_n_truncates(self, server):
        host, port = server.address
        with ReasoningClient(host, port) as client:
            result = client.query(FULL_QUERY, first=2)
            assert len(result.answers) == 2
            assert result.truncated

    def test_connection_survives_errors(self, server):
        host, port = server.address
        with ReasoningClient(host, port) as client:
            with pytest.raises(ServerError) as info:
                client.query("q(X) :- broken((")
            assert info.value.kind in ("ParserError", "ValueError", "LexerError")
            # Undecodable frame -> error response, connection stays up.
            client._sock.sendall(b"this is not json\n")
            with client._lock:
                line = client._reader.readline()
            assert json.loads(line)["ok"] is False
            assert client.ping() == 0

    def test_concurrent_clients_one_socket_each(self, server):
        host, port = server.address
        errors = []

        def worker():
            try:
                with ReasoningClient(host, port) as client:
                    for _ in range(5):
                        rows = client.query(FULL_QUERY).answers
                        assert len(rows) >= 6
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors

    def test_shutdown_frame_stops_server(self, server):
        host, port = server.address
        with ReasoningClient(host, port) as client:
            assert client.shutdown() is True
        deadline = time.monotonic() + 5
        while not server.stopping and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.stopping


class TestClientResilience:
    def test_reconnects_once_on_dead_socket(self, server):
        import socket as socket_module

        host, port = server.address
        with ReasoningClient(host, port) as client:
            version = client.ping()
            # Kill the connection out from under the client; the next
            # call must transparently reconnect and succeed.
            client._sock.shutdown(socket_module.SHUT_RDWR)
            assert client.ping() == version
            assert client.reconnects == 1
            # The replacement connection carries real traffic.
            assert client.query(BOUND_QUERY).answers == (
                ("b",), ("c",), ("d",),
            )
            assert client.reconnects == 1

    def test_second_failure_propagates(self, server):
        import socket as socket_module

        host, port = server.address
        client = ReasoningClient(host, port)
        client.ping()
        # Dead connection AND no listener to reconnect to: the single
        # reconnect attempt itself fails, and the error surfaces
        # instead of looping.
        server.close()
        client._sock.shutdown(socket_module.SHUT_RDWR)
        with pytest.raises((ConnectionError, OSError)):
            client.ping()

    def test_per_request_timeout_raises_without_reconnect(self):
        import socket as socket_module

        # A listener that accepts but never replies: the bounded call
        # must raise TimeoutError — and must NOT reconnect-and-resend,
        # because the request may still be executing server-side.
        silent = socket_module.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        host, port = silent.getsockname()
        try:
            client = ReasoningClient(host, port, timeout=10.0)
            with pytest.raises(TimeoutError):
                client.ping(timeout=0.2)
            assert client.reconnects == 0
            # The connection default is restored after a bounded call.
            assert client._sock.gettimeout() == 10.0
            client.close()
        finally:
            silent.close()

    def test_timeout_threads_through_operations(self, server):
        host, port = server.address
        with ReasoningClient(host, port) as client:
            assert client.ping(timeout=30) == 0
            assert client.query(BOUND_QUERY, timeout=30).answers
            assert client.update("+edge(x, y).", timeout=30)["version"] == 1
            assert client.stats(timeout=30)["updates_total"] == 1


class TestColumnarProbeConcurrency:
    """Regression: the lazy index build and LRU probe cache used to be
    unsynchronized — two threads probing the same cold (predicate,
    position) raced on index construction and cache eviction."""

    def test_concurrent_cold_probes(self):
        atoms = [edge(str(i), str(i + 1)) for i in range(300)]
        store = ColumnarStore(atoms, probe_cache_size=16)
        results, errors = [], []
        barrier = threading.Barrier(8)

        def worker():
            try:
                barrier.wait(timeout=10)
                for i in range(50):
                    rows = list(
                        store.matching_bound(
                            "edge",
                            {1: Constant(str(i)), 2: Constant(str(i + 1))},
                        )
                    )
                    results.append(len(rows))
            except Exception as error:
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert results and all(count == 1 for count in results)
        # Counter invariant: every probe recorded exactly one hit or miss.
        assert store.cache_hits + store.cache_misses == len(results)


class TestServiceMemoryStats:
    """Per-version resident/spilled byte figures in ``stats()`` (PR 7)."""

    def test_per_version_figures(self):
        service = ReasoningService(PROGRAM, store="columnar")
        service.query(FULL_QUERY)
        service.apply("+edge(d, e).")
        service.query(FULL_QUERY)
        stats = service.stats()
        memory = stats["memory"]
        versions = memory["versions"]
        # Both live versions are reported, head included.
        assert set(versions) >= {"1"}
        head = versions[str(stats["snapshots"]["head_version"])]
        assert head["atoms"] == 4
        assert head["resident_bytes"] > 0
        assert head["spilled_bytes"] == 0
        assert memory["resident_bytes_total"] >= head["resident_bytes"]
        assert memory["spilled_bytes_total"] == 0
        # The head is a DeltaOverlay after the update (delta over the
        # frozen columnar base).
        assert memory["backend"] == "delta"
        json.dumps(stats)

    def test_shared_structure_charged_once(self):
        """Old versions share the head's interning table and (via the
        overlay chain) most of its rows: the total must come out far
        below `live versions × head cost`."""
        service = ReasoningService(PROGRAM, store="columnar")
        lease = service.snapshots.current()  # pin version 0
        try:
            for i in range(5):
                service.apply(f"+edge(x{i}, y{i}).")
            stats = service.stats()
            memory = stats["memory"]
            versions = memory["versions"]
            assert len(versions) >= 2  # head + pinned v0 at least
            head_bytes = versions[str(stats["snapshots"]["head_version"])][
                "resident_bytes"
            ]
            assert memory["resident_bytes_total"] < (
                len(versions) * head_bytes
            )
        finally:
            lease.release()

    def test_sharded_backend_reports_spill(self):
        from repro.storage import sharded_store_factory

        atoms_text = " ".join(
            f"edge(v{i}, v{i + 1})." for i in range(200)
        )
        service = ReasoningService(
            atoms_text + " path(X, Y) :- edge(X, Y).",
            store=sharded_store_factory(4096, None),
        )
        stats = service.stats()
        memory = stats["memory"]
        assert memory["backend"] == "sharded"
        assert memory["edb_spilled_bytes"] > 0
        assert memory["spilled_bytes_total"] >= memory["edb_spilled_bytes"]
        json.dumps(stats)

    def test_sharded_service_answers(self):
        from repro.storage import sharded_store_factory

        service = ReasoningService(
            PROGRAM, store=sharded_store_factory(None, None)
        )
        assert service.query(BOUND_QUERY).answers == (
            ("b",), ("c",), ("d",),
        )
        service.apply("+edge(d, e).")
        assert ("e",) in service.query(BOUND_QUERY).answers


class TestWarmStart:
    """State-directory persistence: a restarted service answers its
    first query from restored caches, without resaturating."""

    def test_cold_then_warm(self, tmp_path):
        first = ReasoningService(PROGRAM, state_dir=tmp_path)
        assert first.warm_started is False
        cold = first.query(FULL_QUERY)
        assert cold.stats["from_cache"] is False
        first.checkpoint()

        second = ReasoningService(PROGRAM, state_dir=tmp_path)
        assert second.warm_started is True
        warm = second.query(FULL_QUERY)
        assert warm.stats["from_cache"] is True
        assert warm.answers == cold.answers
        stats = second.stats()
        assert stats["warm_started"] is True
        assert stats["state_dir"] == str(tmp_path)

    def test_apply_checkpoints_automatically(self, tmp_path):
        first = ReasoningService(PROGRAM, state_dir=tmp_path)
        first.query(FULL_QUERY)
        first.apply("+edge(d, e).")  # checkpoint rides on the update

        second = ReasoningService(PROGRAM, state_dir=tmp_path)
        assert second.warm_started is True
        warm = second.query(FULL_QUERY)
        assert warm.stats["from_cache"] is True
        assert ("d", "e") in warm.answers

    def test_program_change_invalidates_state(self, tmp_path):
        first = ReasoningService(PROGRAM, state_dir=tmp_path)
        first.query(FULL_QUERY)
        first.checkpoint()

        changed = PROGRAM + "\npath(X, X) :- edge(X, Y)."
        second = ReasoningService(changed, state_dir=tmp_path)
        assert second.warm_started is False
        assert second.query(FULL_QUERY).stats["from_cache"] is False

    def test_store_mismatch_skips_restored_fixpoints(self, tmp_path):
        first = ReasoningService(PROGRAM, store="columnar",
                                 state_dir=tmp_path)
        first.query(FULL_QUERY)
        first.checkpoint()

        second = ReasoningService(PROGRAM, store="instance",
                                  state_dir=tmp_path)
        # EDB still restores (warm), but the columnar fixpoint does not
        # masquerade as an instance-backed one.
        assert second.warm_started is True
        result = second.query(FULL_QUERY)
        assert result.stats["from_cache"] is False
        assert result.answers == first.query(FULL_QUERY).answers

    def test_no_state_dir_never_warm(self):
        service = ReasoningService(PROGRAM)
        assert service.warm_started is False
        assert service.stats()["state_dir"] is None
        service.checkpoint()  # no-op without a directory


DEFECTIVE_PROGRAM = """
e(a, b).
p(X) :- e(X, Y).
q(X, Y) :- p(X).
pair(Y, Z) :- q(X, Y), q(W, Z).
bad(Z) :- e(X, Y), not e(Y, Z).
"""


class TestLintOp:
    def test_service_lints_request_text(self):
        service = ReasoningService(PROGRAM)
        payload = service.lint(DEFECTIVE_PROGRAM)
        assert payload["program"] == "<request>"
        assert payload["errors"] >= 1
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"E101", "W201"} <= codes

    def test_service_serves_loaded_program_report(self):
        service = ReasoningService(PROGRAM)
        payload = service.lint()
        assert payload["summary"] == "clean"
        assert payload["diagnostics"] == []
        # Served from the compiled artifact's cache: no re-runs.
        from repro.lint import pass_invocations

        before = pass_invocations()
        for _ in range(5):
            service.lint()
        assert pass_invocations() == before

    def test_service_syntax_error_becomes_e001(self):
        payload = ReasoningService(PROGRAM).lint("t(X) :- e(X\n")
        (finding,) = payload["diagnostics"]
        assert finding["code"] == "E001"
        assert payload["errors"] == 1

    def test_service_select_ignore(self):
        service = ReasoningService(PROGRAM)
        payload = service.lint(DEFECTIVE_PROGRAM, select=["E"])
        assert all(
            d["code"].startswith("E") for d in payload["diagnostics"]
        )
        payload = service.lint(DEFECTIVE_PROGRAM, ignore=["E", "W", "I"])
        assert payload["diagnostics"] == []

    def test_protocol_lint_op(self):
        service = ReasoningService(PROGRAM)
        response = handle_request(
            service, {"op": "lint", "program": DEFECTIVE_PROGRAM}
        )
        assert response["ok"]
        assert response["errors"] >= 1

    def test_protocol_rejects_non_string_program(self):
        service = ReasoningService(PROGRAM)
        response = handle_request(service, {"op": "lint", "program": 7})
        assert not response["ok"]

    def test_client_lint_round_trip(self, server):
        host, port = server.address
        with ReasoningClient(host, port) as client:
            payload = client.lint(DEFECTIVE_PROGRAM)
            codes = {d["code"] for d in payload["diagnostics"]}
            assert "E101" in codes
            # No program: the loaded program's cached (clean) report.
            assert client.lint()["summary"] == "clean"
