"""Unit tests for atoms, positions, and schema inference."""

import pytest

from repro.core.atoms import Atom, Position, atoms_variables, schema_of
from repro.core.terms import Constant, Null, Variable

X, Y = Variable("X"), Variable("Y")
a, b = Constant("a"), Constant("b")


class TestAtom:
    def test_args_coerced_to_tuple(self):
        atom = Atom("r", [X, a])  # type: ignore[arg-type]
        assert isinstance(atom.args, tuple)

    def test_variables_constants_nulls(self):
        atom = Atom("r", (X, a, Null(0), X))
        assert atom.variables() == {X}
        assert atom.constants() == {a}
        assert atom.nulls() == {Null(0)}

    def test_is_fact(self):
        assert Atom("r", (a, b)).is_fact()
        assert not Atom("r", (a, X)).is_fact()
        assert not Atom("r", (a, Null(0))).is_fact()

    def test_is_ground_allows_nulls(self):
        assert Atom("r", (a, Null(0))).is_ground()
        assert not Atom("r", (a, X)).is_ground()

    def test_positions_are_one_based(self):
        atom = Atom("r", (X, Y))
        positions = dict(atom.positions())
        assert positions[Position("r", 1)] == X
        assert positions[Position("r", 2)] == Y

    def test_positions_of_term(self):
        atom = Atom("r", (X, Y, X))
        assert atom.positions_of(X) == {Position("r", 1), Position("r", 3)}

    def test_equality_and_hash(self):
        assert Atom("r", (X,)) == Atom("r", (X,))
        assert Atom("r", (X,)) != Atom("s", (X,))
        assert len({Atom("r", (X,)), Atom("r", (X,))}) == 1

    def test_str(self):
        assert str(Atom("r", (X, a))) == "r(X,a)"


class TestHelpers:
    def test_atoms_variables(self):
        atoms = [Atom("r", (X, a)), Atom("s", (Y,))]
        assert atoms_variables(atoms) == {X, Y}

    def test_schema_of(self):
        atoms = [Atom("r", (X, a)), Atom("s", (Y,))]
        assert schema_of(atoms) == {"r": 2, "s": 1}

    def test_schema_of_rejects_arity_conflict(self):
        with pytest.raises(ValueError, match="arities"):
            schema_of([Atom("r", (X,)), Atom("r", (X, Y))])
