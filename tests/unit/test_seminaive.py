"""Unit tests for semi-naive Datalog evaluation and strata."""

import pytest

from repro.core.terms import Constant
from repro.datalog.seminaive import datalog_answers, seminaive
from repro.datalog.strata import compute_strata, stratified_seminaive
from repro.lang.parser import parse_program, parse_query

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


class TestSemiNaive:
    def test_transitive_closure(self):
        program, database = parse_program("""
            e(a,b). e(b,c). e(c,d).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        result = seminaive(database, program)
        query = parse_query("q(X,Y) :- t(X,Y).")
        assert result.evaluate(query) == {
            (a, b), (b, c), (c, d), (a, c), (b, d), (a, d)
        }
        assert result.derived == 6

    def test_rounds_reflect_chain_depth(self):
        program, database = parse_program("""
            e(a,b). e(b,c). e(c,d).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        result = seminaive(database, program)
        assert result.rounds >= 3

    def test_existential_program_rejected(self):
        program, database = parse_program("r(X,K) :- p(X).")
        with pytest.raises(ValueError, match="full TGDs"):
            seminaive(database, program)

    def test_multi_head_rejected(self):
        program, database = parse_program("r(X), s(X) :- p(X).")
        with pytest.raises(ValueError, match="single-head"):
            seminaive(database, program)

    def test_no_duplicate_derivations(self):
        # Semi-naive should not rediscover old facts: `considered`
        # stays linear in derived facts for a chain.
        program, database = parse_program("""
            e(a,b). e(b,c). e(c,d).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        result = seminaive(database, program)
        assert result.considered <= 3 * result.derived + len(database)

    def test_mutual_recursion(self):
        program, database = parse_program("""
            start(a). e(a,b). e(b,c).
            even(X) :- start(X).
            odd(Y) :- even(X), e(X,Y).
            even(Y) :- odd(X), e(X,Y).
        """)
        result = seminaive(database, program)
        assert result.evaluate(parse_query("q(X) :- even(X).")) == {(a,), (c,)}
        assert result.evaluate(parse_query("q(X) :- odd(X).")) == {(b,)}

    def test_constants_in_rules(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            from_a(Y) :- e(a,Y).
        """)
        assert datalog_answers(
            parse_query("q(X) :- from_a(X)."), database, program
        ) == {(b,)}


class TestStrata:
    def test_layers_are_topological(self):
        program, _ = parse_program("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
            u(X) :- t(X,Y).
            v(X) :- u(X).
        """)
        strata = compute_strata(program)
        heads = [
            {tgd.head[0].predicate for tgd in layer} for layer in strata.layers
        ]
        assert heads.index({"t"}) < heads.index({"u"}) < heads.index({"v"})

    def test_materialized_equals_global(self):
        program, database = parse_program("""
            e(a,b). e(b,c). e(c,d).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
            u(X) :- t(X,Y).
            v(X,Y) :- u(X), t(X,Y).
        """)
        query = parse_query("q(X,Y) :- v(X,Y).")
        with_mat = stratified_seminaive(database, program, materialize=True)
        without = stratified_seminaive(database, program, materialize=False)
        assert with_mat.evaluate(query) == without.evaluate(query)

    def test_per_stratum_stats(self):
        program, database = parse_program("""
            e(a,b).
            t(X,Y) :- e(X,Y).
            u(X) :- t(X,Y).
        """)
        result = stratified_seminaive(database, program, materialize=True)
        assert len(result.per_stratum_derived) >= 2
        assert sum(result.per_stratum_derived) == 2
