"""Unit tests for MGU computation (flat syntactic unification)."""


from repro.core.atoms import Atom
from repro.core.terms import Constant, Null, Variable
from repro.core.unification import UnionFind, mgu_atoms, mgu_pairs

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
a, b = Constant("a"), Constant("b")


class TestMguAtoms:
    def test_variable_to_constant(self):
        mgu = mgu_atoms(Atom("r", (X, Y)), Atom("r", (a, b)))
        assert mgu is not None
        assert mgu.apply_term(X) == a
        assert mgu.apply_term(Y) == b

    def test_variable_to_variable(self):
        mgu = mgu_atoms(Atom("r", (X,)), Atom("r", (Y,)))
        assert mgu is not None
        assert mgu.apply_term(X) == mgu.apply_term(Y)

    def test_constant_clash(self):
        assert mgu_atoms(Atom("r", (a,)), Atom("r", (b,))) is None

    def test_predicate_mismatch(self):
        assert mgu_atoms(Atom("r", (X,)), Atom("s", (X,))) is None

    def test_arity_mismatch(self):
        assert mgu_atoms(Atom("r", (X,)), Atom("r", (X, Y))) is None

    def test_repeated_variable_propagates(self):
        mgu = mgu_atoms(Atom("r", (X, X)), Atom("r", (a, Y)))
        assert mgu is not None
        assert mgu.apply_term(Y) == a

    def test_repeated_variable_clash(self):
        assert mgu_atoms(Atom("r", (X, X)), Atom("r", (a, b))) is None

    def test_null_behaves_rigidly(self):
        n = Null(0)
        mgu = mgu_atoms(Atom("r", (X,)), Atom("r", (n,)))
        assert mgu is not None and mgu.apply_term(X) == n
        assert mgu_atoms(Atom("r", (Null(0),)), Atom("r", (Null(1),))) is None

    def test_mgu_is_most_general(self):
        # The MGU of r(X, Y) and r(Y, X) merges X and Y but maps to a
        # variable, not to any constant.
        mgu = mgu_atoms(Atom("r", (X, Y)), Atom("r", (Y, X)))
        assert mgu is not None
        image = mgu.apply_term(X)
        assert isinstance(image, Variable)
        assert mgu.apply_term(Y) == image


class TestMguPairs:
    def test_simultaneous_unification(self):
        # Unify both r(X, b) and r(a, Y) with r(U, V) at once.
        U, V = Variable("U"), Variable("V")
        head = Atom("r", (U, V))
        mgu = mgu_pairs([(Atom("r", (X, b)), head), (Atom("r", (a, Y)), head)])
        assert mgu is not None
        assert mgu.apply_term(X) == a
        assert mgu.apply_term(Y) == b

    def test_simultaneous_clash(self):
        U = Variable("U")
        head = Atom("r", (U,))
        assert mgu_pairs([(Atom("r", (a,)), head), (Atom("r", (b,)), head)]) is None


class TestUnionFind:
    def test_rigid_conflict_detected(self):
        uf = UnionFind()
        assert uf.union(X, a)
        assert not uf.union(X, b)

    def test_transitive_merge(self):
        uf = UnionFind()
        uf.union(X, Y)
        uf.union(Y, Z)
        assert uf.find(X) == uf.find(Z)

    def test_rigid_of(self):
        uf = UnionFind()
        uf.union(X, Y)
        assert uf.rigid_of(X) is None
        uf.union(Y, a)
        assert uf.rigid_of(X) == a

    def test_to_substitution_deterministic(self):
        uf = UnionFind()
        uf.union(Y, X)
        subst = uf.to_substitution()
        # The representative is the min-name variable of the class.
        assert subst.apply_term(Y) == X
