"""Unit tests for the incremental closure reasoner (Dyn-FO application)."""

import pytest

from repro.core.atoms import Atom
from repro.core.terms import Constant
from repro.dynfo import IncrementalReasoner, closure_pattern
from repro.lang.parser import parse_program
from repro.reasoning import certain_answers

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


def right_linear():
    return parse_program("""
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)[0]


class TestClosurePattern:
    def test_right_linear_recognized(self):
        pattern = closure_pattern(right_linear())
        assert pattern is not None
        assert (pattern.edge_predicate, pattern.closure_predicate) == ("e", "t")
        assert pattern.orientation == "right"
        assert not pattern.linearized

    def test_left_linear_recognized(self):
        program, _ = parse_program("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), e(Y,Z).
        """)
        pattern = closure_pattern(program)
        assert pattern is not None
        assert pattern.orientation == "left"

    def test_doubling_recognized_via_linearization(self):
        program, _ = parse_program("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        pattern = closure_pattern(program)
        assert pattern is not None
        assert pattern.linearized

    def test_unrelated_program_rejected(self):
        program, _ = parse_program("""
            s(X) :- p(X,Y).
            p(X,Y) :- q(Y,X).
        """)
        assert closure_pattern(program) is None

    def test_non_binary_rejected(self):
        program, _ = parse_program("""
            t(X,Y) :- e(X,Y,W).
            t(X,Z) :- e(X,Y,W), t(Y,Z).
        """)
        assert closure_pattern(program) is None


class TestIncrementalReasoner:
    def test_rejects_unrecognized_program(self):
        program, _ = parse_program("p(X) :- q(X).")
        with pytest.raises(ValueError, match="transitive-closure shape"):
            IncrementalReasoner(program)

    def test_insert_and_query(self):
        reasoner = IncrementalReasoner(right_linear())
        reasoner.insert(Atom("e", (a, b)))
        reasoner.insert(Atom("e", (b, c)))
        assert reasoner.certain((a, c))
        assert not reasoner.certain((c, a))
        assert not reasoner.certain((a, a))

    def test_non_edge_facts_ignored(self):
        reasoner = IncrementalReasoner(right_linear())
        assert reasoner.insert(Atom("label", (a,))) == 0

    def test_closure_facts_rejected(self):
        reasoner = IncrementalReasoner(right_linear())
        with pytest.raises(ValueError, match="closure predicate"):
            reasoner.insert(Atom("t", (a, b)))

    def test_seeded_from_database(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        reasoner = IncrementalReasoner(program, database)
        assert reasoner.certain((a, c))

    def test_answers_match_engine_after_stream(self):
        program = right_linear()
        reasoner = IncrementalReasoner(program)
        stream = [(a, b), (b, c), (c, d), (d, b)]
        from repro.core.instance import Database

        database = Database()
        for u, v in stream:
            fact = Atom("e", (u, v))
            database.add(fact)
            reasoner.insert(fact)
            # Invariant after *every* insertion: maintained view equals
            # a from-scratch evaluation.
            expected = certain_answers(
                reasoner.query(), database, program
            )
            assert reasoner.answers() == expected

    def test_cycle_makes_self_pairs_certain(self):
        reasoner = IncrementalReasoner(right_linear())
        reasoner.insert_edge(a, b)
        reasoner.insert_edge(b, a)
        assert reasoner.certain((a, a))
        assert reasoner.certain((b, b))

    def test_deletion_path(self):
        reasoner = IncrementalReasoner(right_linear())
        reasoner.insert_edge(a, b)
        reasoner.insert_edge(b, c)
        reasoner.delete_edge(a, b)
        assert not reasoner.certain((a, c))
        assert reasoner.certain((b, c))
