"""Unit tests for the chase procedure (Section 2)."""

import pytest

from repro.chase.runner import chase, chase_answers
from repro.chase.termination import DepthPolicy, IsomorphismPolicy
from repro.chase.trigger import all_triggers, fire
from repro.core.atoms import Atom
from repro.core.terms import Constant, Null, NullFactory
from repro.lang.parser import parse_program, parse_query

a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestTriggers:
    def test_all_triggers_found(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
        """)
        triggers = list(all_triggers(list(program), database.to_instance()))
        assert len(triggers) == 2

    def test_fire_invents_fresh_nulls(self):
        program, database = parse_program("p(a). r(X,Z) :- p(X).")
        (trigger,) = all_triggers(list(program), database.to_instance())
        factory = NullFactory()
        atoms1, _ = fire(trigger, factory)
        atoms2, _ = fire(trigger, factory)
        (n1,) = [t for t in atoms1[0].args if isinstance(t, Null)]
        (n2,) = [t for t in atoms2[0].args if isinstance(t, Null)]
        assert n1 != n2

    def test_null_depth_increases(self):
        program, database = parse_program("""
            p(a).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        result = chase(database, program, policy=DepthPolicy(3))
        depths = {n.depth for n in result.instance.nulls()}
        assert depths == {1, 2, 3}


class TestChaseBasics:
    def test_transitive_closure(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        result = chase(database, program)
        assert result.saturated
        query = parse_query("q(X,Y) :- t(X,Y).")
        assert result.evaluate(query) == {(a, b), (b, c), (a, c)}

    def test_restricted_chase_reuses_witnesses(self):
        # r already holds for a, so the existential rule need not fire.
        program, database = parse_program("""
            p(a). r(a, b).
            r(X,Z) :- p(X).
        """)
        result = chase(database, program, variant="restricted")
        assert result.saturated
        assert len(result.instance.nulls()) == 0

    def test_oblivious_chase_always_fires(self):
        program, database = parse_program("""
            p(a). r(a, b).
            r(X,Z) :- p(X).
        """)
        result = chase(database, program, variant="oblivious")
        assert len(result.instance.nulls()) == 1

    def test_unknown_variant_rejected(self):
        program, database = parse_program("p(a). r(X,Z) :- p(X).")
        with pytest.raises(ValueError, match="variant"):
            chase(database, program, variant="bogus")

    def test_multi_head_tgd(self):
        program, database = parse_program("""
            p(a).
            r(X,K), s(K) :- p(X).
        """)
        result = chase(database, program)
        assert result.saturated
        query = parse_query("q(X) :- r(X, W), s(W).")
        assert result.evaluate(query) == {(a,)}

    def test_constants_in_rules(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            near_a(Y) :- e(a, Y).
        """)
        result = chase(database, program)
        query = parse_query("q(X) :- near_a(X).")
        assert result.evaluate(query) == {(b,)}


class TestLimits:
    def test_infinite_chase_truncated_by_steps(self):
        program, database = parse_program("""
            p(a).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        result = chase(database, program, max_steps=10)
        assert not result.saturated
        assert result.fired <= 10

    def test_infinite_chase_truncated_by_atoms(self):
        program, database = parse_program("""
            p(a).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        result = chase(database, program, max_atoms=20)
        assert not result.saturated
        assert len(result.instance) <= 22  # one firing may add a few atoms

    def test_depth_policy_terminates(self):
        program, database = parse_program("""
            p(a).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        result = chase(database, program, policy=DepthPolicy(2))
        assert result.saturated is True or result.fired > 0
        assert all(n.depth <= 2 for n in result.instance.nulls())


class TestIsomorphismPolicy:
    def test_prunes_isomorphic_tail(self):
        program, database = parse_program("""
            p(a).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        policy = IsomorphismPolicy()
        policy.register(database)
        result = chase(database, program, policy=policy, max_steps=1000)
        # Chase terminates with a finite isomorphism-closed instance.
        assert result.fired < 10
        assert policy.suppressed >= 1

    def test_preserves_ground_facts(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        policy = IsomorphismPolicy()
        policy.register(database)
        result = chase(database, program, policy=policy)
        query = parse_query("q(X,Y) :- t(X,Y).")
        assert result.evaluate(query) == {(a, b), (b, c), (a, c)}


class TestChaseGraph:
    def test_graph_records_derivations(self):
        program, database = parse_program("""
            e(a,b).
            t(X,Y) :- e(X,Y).
            u(X) :- t(X,Y).
        """)
        result = chase(database, program, record_graph=True)
        graph = result.graph
        assert graph is not None
        t_atom = Atom("t", (a, b))
        u_atom = Atom("u", (a,))
        assert graph.parents(u_atom) == (t_atom,)
        assert graph.is_database_atom(Atom("e", (a, b)))
        assert graph.depth_of(u_atom) == 2
        assert Atom("e", (a, b)) in graph.ancestors(u_atom)

    def test_proposition_21_cert_equals_chase_eval(self):
        # cert(q, D, Σ) = q(chase(D, Σ)) on a terminating instance.
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        assert chase_answers(query, database, program) == {
            (a, b), (b, c), (a, c)
        }
