"""Unit tests for the certain-answer facade."""

import pytest

from repro.core.terms import Constant
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.answers import (
    UnsupportedProgramError,
    certain_answers,
    is_certain_answer,
)

a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestAutoDispatch:
    def test_datalog_route(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        report = certain_answers(query, database, program, report=True)
        assert report.method == "datalog"
        assert report.answers == {(a, b), (b, c), (a, c)}

    def test_pwl_route(self):
        program, database = parse_program("""
            p(c).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        query = parse_query("q(X) :- r(X,Y).")
        report = certain_answers(query, database, program, report=True)
        assert report.method == "pwl"
        assert report.answers == {(c,)}

    def test_ward_route(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            s(X) :- p(X).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
            t(X,K) :- s(X).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        report = certain_answers(query, database, program, report=True)
        assert report.method == "ward"
        assert report.answers == {(a, b), (b, c), (a, c)}

    def test_chase_route_for_non_warded_terminating(self):
        # Two dangerous variables in different body atoms (no ward), but
        # the chase terminates: answers are exact via the chase route.
        program, database = parse_program("""
            p(a).
            r(X,K) :- p(X).
            s(Y,X) :- r(X,Y).
            t(Y,W) :- s(Y,X), r(X,W).
        """)
        assert not program.is_warded()
        query = parse_query("q() :- t(X,W).")
        report = certain_answers(query, database, program, report=True)
        assert report.method == "chase"
        assert report.answers == {()}


class TestMethodSelection:
    def test_unknown_method(self):
        program, database = parse_program("e(a,b). t(X,Y) :- e(X,Y).")
        query = parse_query("q(X,Y) :- t(X,Y).")
        with pytest.raises(ValueError, match="unknown method"):
            certain_answers(query, database, program, method="bogus")

    def test_explicit_pwl_on_datalog(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        datalog = certain_answers(query, database, program, method="datalog")
        pwl = certain_answers(query, database, program, method="pwl")
        assert datalog == pwl


class TestIsCertainAnswer:
    def test_positive_and_negative(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        assert is_certain_answer(query, (a, c), database, program)
        assert not is_certain_answer(query, (c, a), database, program)

    def test_outside_ward_raises(self):
        from repro.tiling.reduction import tiling_program

        program = tiling_program()
        _, database = parse_program("tile(t1).")
        query = parse_query("q(X) :- tile(X).")
        with pytest.raises(UnsupportedProgramError):
            is_certain_answer(query, (Constant("t1"),), database, program)


class TestProbeInteraction:
    def test_probe_settles_positives(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        report = certain_answers(
            query, database, program, method="pwl", report=True, probe_depth=5
        )
        # the terminating restricted chase finds all three answers;
        # only non-answers go through the decision procedure.
        assert report.probe_answers == 3
        assert report.answers == {(a, b), (b, c), (a, c)}

    def test_boolean_query_answers(self):
        program, database = parse_program("""
            p(c).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        query = parse_query("q() :- r(X,Y), p(Y).")
        assert certain_answers(query, database, program, method="pwl") == {()}


class TestCandidateCompleteness:
    """The candidate pools come from the star abstraction, so the
    answer set must be complete for *any* probe budget (regression:
    pools drawn from a truncated probe silently dropped answers)."""

    def setup_method(self):
        self.program, self.database = parse_program("""
            e(a,b). e(b,c). e(c,d).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        self.query = parse_query("q(X,Y) :- t(X,Y).")
        self.truth = {
            (a, b), (b, c), (a, c),
            (Constant("c"), Constant("d")),
            (b, Constant("d")), (a, Constant("d")),
        }

    def test_zero_probe_budget_still_complete(self):
        answers = certain_answers(
            self.query, self.database, self.program,
            method="pwl", probe_atoms=0,
        )
        assert answers == self.truth

    def test_tiny_probe_budget_still_complete(self):
        for probe_atoms in (1, 4, 7):
            answers = certain_answers(
                self.query, self.database, self.program,
                method="pwl", probe_atoms=probe_atoms,
            )
            assert answers == self.truth, probe_atoms

    def test_ward_engine_same_guarantee(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        answers = certain_answers(
            query, database, program, method="ward", probe_atoms=0,
        )
        assert answers == {(a, b), (b, c), (a, c)}

    def test_star_constant_never_a_candidate(self):
        # Value invention puts ⋆ into the abstraction at r[1]; it must
        # never surface as an answer candidate.
        program, database = parse_program("""
            p(c).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        query = parse_query("q(Y) :- r(X,Y).")
        answers = certain_answers(
            query, database, program, method="pwl", probe_atoms=0,
        )
        assert answers == set()
