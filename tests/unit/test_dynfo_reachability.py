"""Unit tests for the Dyn-FO incremental reachability relation."""

from repro.dynfo.reachability import DynamicReachability, IncrementalReachability


class TestIncrementalInsertions:
    def test_single_edge(self):
        index = IncrementalReachability()
        added = index.insert_edge("a", "b")
        assert added == 1
        assert index.reaches("a", "b")
        assert not index.reaches("b", "a")
        assert index.reaches("a", "a")  # reflexive

    def test_chain_composes(self):
        index = IncrementalReachability()
        index.insert_edge("a", "b")
        index.insert_edge("b", "c")
        assert index.reaches("a", "c")

    def test_joining_edge_adds_cross_pairs(self):
        # a→b and c→d exist; inserting b→c must add a⇝c, a⇝d, b⇝d, b⇝c.
        index = IncrementalReachability()
        index.insert_edge("a", "b")
        index.insert_edge("c", "d")
        added = index.insert_edge("b", "c")
        assert added == 4
        assert index.reaches("a", "d")

    def test_redundant_edge_is_noop(self):
        index = IncrementalReachability()
        index.insert_edge("a", "b")
        index.insert_edge("b", "c")
        added = index.insert_edge("a", "c")  # already implied
        assert added == 0
        assert index.stats.noop_insertions == 1

    def test_cycle(self):
        index = IncrementalReachability()
        index.insert_edge("a", "b")
        index.insert_edge("b", "a")
        assert index.reaches("a", "a") and index.reaches("b", "a")
        assert index.reaches_strict("a", "a")  # via the cycle

    def test_strict_vs_reflexive(self):
        index = IncrementalReachability()
        index.insert_edge("a", "b")
        assert index.reaches("a", "a")
        assert not index.reaches_strict("a", "a")  # no cycle through a
        assert index.reaches_strict("a", "b")

    def test_closure_size_counts_pairs(self):
        index = IncrementalReachability()
        index.insert_edge("a", "b")
        index.insert_edge("b", "c")
        # reflexive 3 + (a,b), (b,c), (a,c)
        assert index.closure_size() == 6

    def test_matches_brute_force_on_random_stream(self):
        import random

        rng = random.Random(11)
        index = IncrementalReachability()
        edges = set()
        for _ in range(40):
            u, v = rng.randrange(8), rng.randrange(8)
            if u == v:
                continue
            edges.add((u, v))
            index.insert_edge(u, v)
        # Brute-force closure from the edge set.
        from repro.reachability.digraph import DiGraph

        g = DiGraph.from_pairs(edges)
        for u in range(8):
            for v in range(8):
                if u in g:
                    assert index.reaches(u, v) == (v in g.reachable_from(u))


class TestDynamicDeletions:
    def test_delete_breaks_path(self):
        index = DynamicReachability()
        index.insert_edge("a", "b")
        index.insert_edge("b", "c")
        index.delete_edge("a", "b")
        assert not index.reaches("a", "c")
        assert index.reaches("b", "c")

    def test_delete_keeps_alternative_path(self):
        index = DynamicReachability()
        index.insert_edge("a", "b")
        index.insert_edge("b", "d")
        index.insert_edge("a", "c")
        index.insert_edge("c", "d")
        index.delete_edge("a", "b")
        assert index.reaches("a", "d")  # via c

    def test_delete_missing_edge_is_noop(self):
        index = DynamicReachability()
        index.insert_edge("a", "b")
        index.delete_edge("x", "y")
        assert index.stats.deletions == 0
        assert index.reaches("a", "b")

    def test_recompute_counter(self):
        index = DynamicReachability()
        index.insert_edge("a", "b")
        index.delete_edge("a", "b")
        assert index.stats.recomputes == 1
        assert not index.reaches("a", "b")

    def test_insert_after_delete(self):
        index = DynamicReachability()
        index.insert_edge("a", "b")
        index.delete_edge("a", "b")
        index.insert_edge("a", "b")
        assert index.reaches("a", "b")


class TestWorkCounters:
    def test_fo_rule_work_is_ancestors_times_descendants(self):
        index = IncrementalReachability()
        index.insert_edge("a", "b")
        index.insert_edge("c", "d")
        before = index.stats.pairs_examined
        index.insert_edge("b", "c")
        # ancestors of b = {a, b}; descendants of c = {c, d} → 4 pairs.
        assert index.stats.pairs_examined - before == 4
