"""Unit tests for the surface-syntax lexer and parser."""

import pytest

from repro.core.atoms import Atom
from repro.core.terms import Constant, Variable
from repro.lang.lexer import LexerError, TokenType, tokenize
from repro.lang.parser import ParserError, parse_atom, parse_program, parse_query


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("t(X, a) :- e(X).")
        kinds = [t.type for t in tokens]
        assert kinds == [
            TokenType.NAME, TokenType.LPAREN, TokenType.VARIABLE,
            TokenType.COMMA, TokenType.NAME, TokenType.RPAREN,
            TokenType.IMPLIES, TokenType.NAME, TokenType.LPAREN,
            TokenType.VARIABLE, TokenType.RPAREN, TokenType.PERIOD,
            TokenType.EOF,
        ]

    def test_comments_skipped(self):
        tokens = tokenize("% header\np(a). # trailing\n")
        assert [t.type for t in tokens][:4] == [
            TokenType.NAME, TokenType.LPAREN, TokenType.NAME, TokenType.RPAREN
        ]

    def test_strings_and_numbers(self):
        tokens = tokenize('p("hello world", 42, -7).')
        assert tokens[2].type == TokenType.STRING
        assert tokens[2].value == "hello world"
        assert tokens[4].type == TokenType.NUMBER
        assert tokens[6].value == "-7"

    def test_unterminated_string(self):
        with pytest.raises(LexerError, match="unterminated"):
            tokenize('p("oops).')

    def test_illegal_character(self):
        with pytest.raises(LexerError, match="unexpected"):
            tokenize("p(a) & q(b).")

    def test_arrow_alias(self):
        tokens = tokenize("t(X) <- e(X).")
        assert any(t.type == TokenType.IMPLIES for t in tokens)


class TestParseProgram:
    def test_facts_and_rules_separated(self):
        program, database = parse_program("""
            e(a, b).  e(b, c).
            t(X, Y) :- e(X, Y).
        """)
        assert len(program) == 1
        assert len(database) == 2

    def test_existential_variables_inferred(self):
        program, _ = parse_program("r(X, Z) :- p(X).")
        assert program[0].existential_variables() == {Variable("Z")}

    def test_multi_head(self):
        program, _ = parse_program("r(X, K), s(K) :- p(X).")
        assert len(program[0].head) == 2

    def test_dont_care_variables_fresh(self):
        program, _ = parse_program("t(X) :- e(X, _), f(_).")
        body_vars = program[0].body_variables()
        # X plus two distinct don't-care variables
        assert len(body_vars) == 3

    def test_numbers_and_strings_are_constants(self):
        _, database = parse_program('p(1, "two").')
        fact = next(iter(database))
        assert fact.args == (Constant(1), Constant("two"))

    def test_fact_with_variables_rejected(self):
        with pytest.raises(ValueError, match="variables"):
            parse_program("p(X).")

    def test_capitalized_predicate_names(self):
        # The paper writes SubClass(x, y); a capitalized token followed
        # by '(' is a predicate application.
        program, _ = parse_program("Type(X, Z) :- Type(X, Y), SubClass(Y, Z).")
        assert program[0].head[0].predicate == "Type"

    def test_missing_period(self):
        with pytest.raises(ParserError):
            parse_program("t(X) :- e(X)")


class TestParseQuery:
    def test_output_variables(self):
        q = parse_query("q(X, Y) :- e(X, Z), e(Z, Y).")
        assert q.output == (Variable("X"), Variable("Y"))
        assert q.width() == 2

    def test_boolean_query(self):
        q = parse_query("q() :- e(X, Y).")
        assert q.is_boolean()

    def test_constant_in_output_rejected(self):
        with pytest.raises(ValueError, match="must be variables"):
            parse_query("q(a) :- e(a, Y).")

    def test_output_must_be_in_body(self):
        with pytest.raises(ValueError, match="does not occur"):
            parse_query("q(W) :- e(X, Y).")

    def test_constants_in_body(self):
        q = parse_query("q(X) :- e(X, b).")
        assert q.atoms[0].args[1] == Constant("b")


class TestParseAtom:
    def test_parse_atom(self):
        atom = parse_atom("edge(a, B)")
        assert atom == Atom("edge", (Constant("a"), Variable("B")))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError, match="trailing"):
            parse_atom("edge(a) edge(b)")


class TestSourcePositions:
    def test_typo_on_line_7_reports_line_7(self):
        # Regression: every syntax failure is a ParserError carrying the
        # 1-based source position of the offending token — six healthy
        # lines followed by a missing comma on line 7 must say line 7.
        text = (
            "e(a, b).\n"
            "e(b, c).\n"
            "e(c, d).\n"
            "t(X, Y) :- e(X, Y).\n"
            "t(X, Z) :- e(X, Y), t(Y, Z).\n"
            "p(X) :- t(a, X).\n"
            "q(X) :- t(X Y).\n"
        )
        with pytest.raises(ParserError) as excinfo:
            parse_program(text)
        assert excinfo.value.line == 7
        assert excinfo.value.column > 1
        assert "line 7" in str(excinfo.value)

    def test_all_syntax_errors_are_parser_errors(self):
        # The parser never lets a bare ValueError escape: every grammar
        # violation is the one positioned type.
        for bad in [
            "t(X) :- e(X)",        # missing period
            "t(X) :- .",           # empty body
            ":- e(X).",            # missing head
            "t(X) :- e(X,).",      # trailing comma
            "t(X)",                # bare atom, no period
        ]:
            with pytest.raises(ParserError) as excinfo:
                parse_program(bad)
            assert excinfo.value.line >= 1
            assert excinfo.value.column >= 1

    def test_atom_spans_threaded_from_lexer(self):
        program, database = parse_program(
            "e(a, b).\nt(X, Y) :- e(X, Y).\n"
        )
        fact = next(iter(database))
        assert fact.span is not None
        assert fact.span.whole.line == 1
        rule = program[0]
        assert rule.span is not None and rule.span.line == 2
        head = rule.head[0]
        assert (head.span.whole.line, head.span.whole.column) == (2, 1)
        body = rule.body[0]
        assert (body.span.whole.line, body.span.whole.column) == (2, 12)
        # Argument spans line up with the argument tuple.
        assert body.span.arg(0).column == 14
        assert body.span.arg(1).column == 17

    def test_spans_do_not_affect_identity(self):
        first, _ = parse_program("t(X) :- e(X).")
        second, _ = parse_program("\n\n  t(X) :- e(X).")
        assert first[0] == second[0]
        assert first[0].span != second[0].span

    def test_negated_literals_parsed(self):
        program, _ = parse_program("p(X) :- e(X), not f(X).")
        rule = program[0]
        assert rule.has_negation()
        assert [a.predicate for a in rule.negated] == ["f"]
        assert rule.negated[0].span.whole.line == 1
