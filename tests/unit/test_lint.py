"""Unit tests for repro.lint — the static diagnostics engine.

Covers the diagnostic model (codes, severities, filtering, renderings),
every registered pass with a minimal triggering program, the acceptance
program (unsafe + non-stratifiable + non-warded, all reported with
distinct stable codes and correct spans), syntax-error degradation
(E001), and the session-layer wiring: cached reports on
CompiledProgram, the LintError planning gate, and the explain line.
"""

import pytest

from repro.api import LintError, Session
from repro.lang.parser import parse_program
from repro.lint import (
    ProgramDiagnostics,
    lint_source,
    pass_invocations,
    registered_codes,
    run_lint,
    severity_of_code,
)

# The acceptance program: simultaneously unsafe (E101: Z in the head of
# a negated rule, and in a negated literal, without a positive binder),
# non-stratifiable (E103: odd/even negate through their own recursive
# component), and non-warded (W201: dangerous Y, Z never co-occur in
# one body atom of the pair rule).
DEFECTIVE = """e(a, b).
p(X) :- e(X, Y).
q(X, Y) :- p(X).
pair(Y, Z) :- q(X, Y), q(W, Z).
odd(X) :- e(X, Y), not even(X).
even(X) :- e(X, Y), not odd(X).
bad(Z) :- e(X, Y), not e(Y, Z).
"""

CLEAN = """e(a, b). e(b, c).
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
"""


def lint_text(text, **kwargs):
    report = lint_source(text, **kwargs)
    assert isinstance(report, ProgramDiagnostics)
    return report


class TestDiagnosticModel:
    def test_severity_of_code(self):
        assert severity_of_code("E101") == "error"
        assert severity_of_code("W201") == "warning"
        assert severity_of_code("I106") == "info"
        with pytest.raises(ValueError, match="must start with"):
            severity_of_code("X999")

    def test_registry_is_sorted_and_consistent(self):
        codes = [code for code, _, _, _ in registered_codes()]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))
        for code, name, severity, summary in registered_codes():
            assert severity == severity_of_code(code)
            assert name and summary

    def test_render_and_dict(self):
        report = lint_text(DEFECTIVE)
        first = report.diagnostics[0]
        line = first.render("prog.vada")
        assert line.startswith("prog.vada:")
        assert first.code in line and first.name in line
        payload = first.as_dict()
        assert payload["code"] == first.code
        assert payload["line"] == first.span.line
        assert payload["column"] == first.span.column

    def test_report_sorted_by_source_position(self):
        report = lint_text(DEFECTIVE)
        positions = [
            (d.span.line, d.span.column) for d in report if d.span is not None
        ]
        assert positions == sorted(positions)

    def test_counts_and_fails(self):
        report = lint_text(CLEAN)
        assert report.summary() == "clean"
        assert not report.fails() and not report.fails(strict=True)

        report = lint_text(DEFECTIVE)
        counts = report.counts()
        assert counts["error"] == 4
        assert counts["warning"] == 2
        assert report.fails() and report.fails(strict=True)

    def test_warnings_fail_only_under_strict(self):
        # Drop the errors: what remains is warnings + infos.
        report = lint_text(DEFECTIVE, ignore=["E"])
        assert not report.errors() and report.warnings()
        assert not report.fails()
        assert report.fails(strict=True)

    def test_infos_never_fail(self):
        report = lint_text(DEFECTIVE, select=["I"])
        assert report.infos() and not report.errors()
        assert not report.fails() and not report.fails(strict=True)

    def test_select_and_ignore_prefixes(self):
        report = lint_text(DEFECTIVE)
        errors_only = report.filter(select=["E"])
        assert errors_only.codes() == ("E101", "E103")
        no_frag = report.filter(ignore=["W2", "I"])
        assert all(not c.startswith(("W2", "I")) for c in no_frag.codes())
        exact = report.filter(select=["E101"])
        assert exact.codes() == ("E101",)
        assert len(exact) == 2

    def test_filter_identity_returns_self(self):
        report = lint_text(DEFECTIVE)
        assert report.filter(None, None) is report

    def test_summary_counts_codes(self):
        report = lint_text(DEFECTIVE, select=["E"])
        assert report.summary() == "4 error(s) — E101 ×2, E103 ×2"


class TestAcceptanceProgram:
    """The ISSUE acceptance criterion: one program, three defect
    families, three distinct stable codes, correct line:column spans."""

    def test_distinct_codes_present(self):
        report = lint_text(DEFECTIVE)
        codes = report.codes()
        assert "E101" in codes  # unsafe
        assert "E103" in codes  # non-stratifiable
        assert "W201" in codes  # non-warded

    def test_spans_point_at_the_defects(self):
        report = lint_text(DEFECTIVE)
        by_code = {}
        for d in report:
            by_code.setdefault(d.code, []).append(d)

        # E101: both findings anchor at head variable Z of the bad rule
        # on line 7 (its first occurrence in the rule).
        assert [(d.span.line, d.span.column) for d in by_code["E101"]] == [
            (7, 5),
            (7, 5),
        ]
        # E103: the negated literals inside the odd/even component.
        assert [(d.span.line, d.span.column) for d in by_code["E103"]] == [
            (5, 24),
            (6, 25),
        ]
        # W201: the non-warded pair rule starting at line 4.
        (w201,) = by_code["W201"]
        assert (w201.span.line, w201.span.column) == (4, 1)
        assert "{Y, Z}" in w201.message

    def test_rule_indices_recorded(self):
        report = lint_text(DEFECTIVE)
        (w201,) = [d for d in report if d.code == "W201"]
        assert w201.rule_index == 2  # pair is the third rule


class TestPerCodeTriggers:
    def lint_one(self, text, code, **kwargs):
        report = lint_text(text, **kwargs)
        findings = [d for d in report if d.code == code]
        assert findings, f"{code} not raised; got {report.codes()}"
        return findings

    def test_e101_unbound_negated_variable(self):
        findings = self.lint_one(
            "p(X) :- e(X), not f(Y).\ne(a).", "E101"
        )
        assert "Y" in findings[0].message

    def test_e102_arity_mismatch(self):
        findings = self.lint_one(
            "e(a, b).\np(X) :- e(X).", "E102"
        )
        assert "arities" in findings[0].message
        assert findings[0].predicate == "e"

    def test_e103_negation_through_recursion(self):
        self.lint_one(
            "p(X) :- e(X), not q(X).\nq(X) :- p(X).\ne(a).", "E103"
        )

    def test_w104_edb_predicate_in_head(self):
        findings = self.lint_one("e(a, b).\ne(X, Y) :- r(X, Y).\nr(c, d).", "W104")
        assert findings[0].predicate == "e"

    def test_w105_type_conflict(self):
        findings = self.lint_one("age(ann, 31).\nage(bob, old).", "W105")
        assert "integer" in findings[0].message

    def test_i106_singleton_variable(self):
        findings = self.lint_one("p(X) :- e(X, Y).\ne(a, b).", "I106")
        assert "Y" in findings[0].message

    def test_i106_skips_underscore(self):
        report = lint_text("p(X) :- e(X, _Y).\ne(a, b).")
        assert "I106" not in report.codes()

    def test_i107_existential_head(self):
        findings = self.lint_one("q(X, Y) :- p(X).\np(a).", "I107")
        assert "Y" in findings[0].message

    def test_i108_duplicate_rule(self):
        self.lint_one(
            "p(X) :- e(X).\np(X) :- e(X).\ne(a).", "I108"
        )

    def test_w202_non_pwl_rule(self):
        self.lint_one(
            "t(X, Y) :- e(X, Y).\n"
            "t(X, Z) :- t(X, Y), t(Y, Z).\n"
            "e(a, b).",
            "W202",
        )

    def test_w203_cartesian_product(self):
        findings = self.lint_one(
            "pair(X, Y) :- p(X), q(Y).\np(a). q(b).", "W203"
        )
        assert "2 variable-disjoint" in findings[0].message

    def test_w204_demand_opaque_rule(self):
        self.lint_one(
            "r(X) :- e(X).\n"
            "out(Y) :- f(Y), r(X).\n"
            "e(a). f(b).",
            "W204",
        )

    def test_w205_needs_query(self):
        text = "p(X) :- e(X).\nq(X) :- f(X).\ne(a). f(b)."
        # Without a query the reachability pass does not run.
        assert "W205" not in lint_text(text).codes()
        findings = self.lint_one(text, "W205", query="ans(X) :- p(X).")
        assert "q" in findings[0].message

    def test_i206_dead_predicate(self):
        findings = self.lint_one("p(X) :- e(X).\ne(a).", "I206")
        assert findings[0].predicate == "p"

    def test_i207_once_per_program(self):
        findings = self.lint_one(
            "q(X, Y) :- p(X).\nr(X, Y) :- s(X).\np(a). s(b).", "I207"
        )
        assert len(findings) == 1


class TestSyntaxErrors:
    def test_e001_reports_parse_position(self):
        # Six good lines, then a typo on line 7: E001 must say line 7.
        text = (
            "e(a, b).\n"
            "e(b, c).\n"
            "e(c, d).\n"
            "t(X, Y) :- e(X, Y).\n"
            "t(X, Z) :- e(X, Y), t(Y, Z).\n"
            "p(X) :- t(a, X).\n"
            "q(X) :- t(X Y).\n"
        )
        report = lint_text(text)
        assert report.codes() == ("E001",)
        assert report.passes_run == 0
        (finding,) = report.diagnostics
        assert finding.severity == "error"
        assert finding.span.line == 7
        assert report.fails()

    def test_e001_from_lexer_error(self):
        report = lint_text("p(a).\nq(§).\n")
        (finding,) = report.diagnostics
        assert finding.code == "E001"
        assert finding.span.line == 2

    def test_e001_from_bad_query(self):
        report = lint_text(CLEAN, query="q(X) :- ")
        assert report.codes() == ("E001",)


class TestSessionWiring:
    def test_compiled_program_caches_diagnostics(self):
        session = Session()
        compiled = session.load(CLEAN)
        assert compiled.lint_runs == 0  # lazy: nothing ran yet
        report = compiled.diagnostics
        assert compiled.lint_runs == 1
        before = pass_invocations()
        for _ in range(10):
            assert compiled.diagnostics is report
            session.query("q(X, Y) :- t(X, Y).").to_set()
        assert compiled.lint_runs == 1
        assert pass_invocations() == before

    def test_lint_runs_mirrors_analysis_runs(self):
        session = Session()
        compiled = session.load(CLEAN)
        compiled.diagnostics
        for _ in range(5):
            session.query("q(X, Y) :- t(X, Y).").to_set()
        assert compiled.analysis_runs == 1
        assert compiled.lint_runs == 1

    def test_plan_rejects_error_diagnostics(self):
        session = Session()
        session.load(DEFECTIVE)
        with pytest.raises(LintError, match="E101") as excinfo:
            session.plan("ans(X, Y) :- pair(X, Y).")
        error = excinfo.value
        assert all(d.severity == "error" for d in error.diagnostics)
        codes = {d.code for d in error.diagnostics}
        assert codes == {"E101", "E103"}

    def test_explain_carries_lint_summary(self):
        session = Session()
        session.load(CLEAN)
        plan = session.plan("q(X, Y) :- t(X, Y).")
        assert "lint    : clean" in plan.explain()

    def test_explain_lint_line_reports_findings(self):
        session = Session()
        # Warnings do not block planning; they do show in explain().
        session.load(
            "owns(a, b). owns(b, c).\n"
            "c(X, Y) :- owns(X, Y).\n"
            "c(X, Z) :- c(X, Y), c(Y, Z).\n"
            "boards(X, Y) :- c(X, P), c(Y, Q).\n"
        )
        plan = session.plan("q(X, Y) :- c(X, Y).")
        assert "lint    :" in plan.explain()
        assert "W203" in plan.explain()

    def test_facts_inform_edb_passes(self):
        # W104 needs the session EDB: the program alone has no facts.
        session = Session()
        compiled = session.load("e(a, b).\ne(X, Y) :- r(X, Y).\nr(c, d).")
        assert "W104" in compiled.diagnostics.codes()

    def test_run_lint_on_parsed_program(self):
        program, database = parse_program(DEFECTIVE)
        report = run_lint(program, facts=database)
        assert {"E101", "E103", "W201"} <= set(report.codes())
        assert report.passes_run > 0


class TestPlannerNegationGate:
    def test_negated_program_planning_fails_with_pointer_to_lint(self):
        session = Session()
        session.load(
            "e(a). f(a).\n"
            "p(X) :- e(X), not f(X).\n"
        )
        with pytest.raises(ValueError, match="positive Datalog"):
            session.plan("q(X) :- p(X).")

    def test_lint_accepts_stratifiable_negation(self):
        # Stratified negation lints clean (no E-codes) even though the
        # evaluation engines refuse it — the diagnostics and the
        # planner gate are separate, deliberately.
        report = lint_text("e(a). f(a).\np(X) :- e(X), not f(X).\n")
        assert not report.errors()
