"""Unit tests for the WARD ∩ PWL linear proof search (Theorem 4.8)."""

import pytest

from repro.core.terms import Constant
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.pwl_ward import decide_pwl_ward

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


def tc_setup():
    program, database = parse_program("""
        e(a,b). e(b,c). e(c,d).
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    query = parse_query("q(X,Y) :- t(X,Y).")
    return program, database, query


class TestReachability:
    def test_positive_chain(self):
        program, database, query = tc_setup()
        assert decide_pwl_ward(query, (a, d), database, program).accepted

    def test_direct_edge(self):
        program, database, query = tc_setup()
        assert decide_pwl_ward(query, (a, b), database, program).accepted

    def test_negative(self):
        program, database, query = tc_setup()
        assert not decide_pwl_ward(query, (d, a), database, program).accepted

    def test_negative_self(self):
        program, database, query = tc_setup()
        assert not decide_pwl_ward(query, (a, a), database, program).accepted

    def test_exhaustive_specialization_agrees(self):
        program, database, query = tc_setup()
        for answer in [(a, d), (d, a), (b, d)]:
            guided = decide_pwl_ward(
                query, answer, database, program, specialization="guided"
            ).accepted
            exhaustive = decide_pwl_ward(
                query, answer, database, program, specialization="exhaustive"
            ).accepted
            assert guided == exhaustive


class TestExistentials:
    def setup_method(self):
        self.program, self.database = parse_program("""
            p(c).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)

    def test_atomic_query_over_invented_values(self):
        query = parse_query("q(X) :- r(X,Y).")
        assert decide_pwl_ward(query, (c,), self.database, self.program).accepted

    def test_boolean_join_on_null(self):
        # r(c,z), p(z) holds in the chase (z the invented null).
        query = parse_query("q() :- r(X,Y), p(Y).")
        assert decide_pwl_ward(query, (), self.database, self.program).accepted

    def test_cycle_query_fails(self):
        # The chase never creates r-cycles.
        query = parse_query("q() :- r(X,Y), r(Y,X).")
        assert not decide_pwl_ward(query, (), self.database, self.program).accepted

    def test_deep_chain_query(self):
        # r(c, z1), r(z1, z2): two levels of invention.
        query = parse_query("q() :- r(X,Y), r(Y,Z).")
        assert decide_pwl_ward(query, (), self.database, self.program).accepted


class TestGuards:
    def test_membership_checked(self):
        program, database = parse_program("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        with pytest.raises(ValueError, match="piece-wise linear"):
            decide_pwl_ward(query, (a, b), database, program)

    def test_membership_check_bypass(self):
        program, database = parse_program("""
            e(a,b).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        decision = decide_pwl_ward(
            query, (a, b), database, program, check_membership=False
        )
        assert decision.accepted  # sound even outside the class

    def test_non_warded_rejected(self):
        from repro.tiling.reduction import tiling_program
        program = tiling_program()
        database = parse_program("tile(t1).")[1]
        query = parse_query("q(X) :- tile(X).")
        with pytest.raises(ValueError, match="not warded"):
            decide_pwl_ward(query, (Constant("t1"),), database, program)


class TestDiagnostics:
    def test_trace_reconstructs_path(self):
        program, database, query = tc_setup()
        decision = decide_pwl_ward(query, (a, c), database, program, trace=True)
        assert decision.accepted
        assert decision.trace is not None
        assert decision.trace[-1].is_accepting()
        assert decision.trace[0].width() >= 1

    def test_stats_populated(self):
        program, database, query = tc_setup()
        decision = decide_pwl_ward(query, (a, d), database, program)
        assert decision.stats.visited >= 1
        assert decision.stats.max_width <= decision.width_bound

    def test_width_bound_override(self):
        program, database, query = tc_setup()
        decision = decide_pwl_ward(
            query, (a, d), database, program, width_bound=2
        )
        assert decision.width_bound == 2
        assert decision.accepted  # width 2 suffices for linear TC
