"""Unit tests for certified answers (verifiable accepting runs)."""

import pytest

from repro.core.terms import Constant
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.certificate import (
    Certificate,
    CertificateError,
    certified_decision,
    extract_certificate,
    verify_certificate,
)
from repro.reasoning.state import State

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


def tc_setup():
    program, database = parse_program("""
        e(a,b). e(b,c). e(c,d).
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    query = parse_query("q(X,Y) :- t(X,Y).")
    return program, database, query


class TestExtraction:
    def test_positive_yields_certificate(self):
        program, database, query = tc_setup()
        certificate = extract_certificate(query, (a, d), database, program)
        assert certificate is not None
        assert certificate.answer == (a, d)
        assert certificate.states[-1].is_accepting()
        assert all(
            op in ("resolution", "specialization")
            for op in certificate.operations
        )

    def test_negative_yields_none(self):
        program, database, query = tc_setup()
        assert extract_certificate(query, (d, a), database, program) is None

    def test_widths_respect_bound(self):
        program, database, query = tc_setup()
        certificate = extract_certificate(query, (a, d), database, program)
        assert certificate.max_width() <= certificate.width_bound

    def test_direct_database_match_gives_single_state(self):
        program, database, query = tc_setup()
        # t(a, b) resolves to e(a, b) ∈ D; the shortest certificates
        # still need at least the base resolution step.
        certificate = extract_certificate(query, (a, b), database, program)
        assert certificate is not None
        assert len(certificate) >= 2


class TestVerification:
    def test_extracted_certificates_verify(self):
        program, database, query = tc_setup()
        for answer in [(a, b), (a, c), (a, d), (b, d)]:
            certificate = extract_certificate(
                query, answer, database, program
            )
            assert verify_certificate(certificate, database, program)

    def test_tampered_initial_state_rejected(self):
        program, database, query = tc_setup()
        certificate = extract_certificate(query, (a, d), database, program)
        forged = Certificate(
            query=certificate.query,
            answer=(a, c),                      # claims a different tuple
            states=certificate.states,
            operations=certificate.operations,
            width_bound=certificate.width_bound,
        )
        with pytest.raises(CertificateError, match="initial configuration"):
            verify_certificate(forged, database, program)

    def test_tampered_transition_rejected(self):
        program, database, query = tc_setup()
        certificate = extract_certificate(query, (a, d), database, program)
        from repro.core.atoms import Atom

        # Splice in an unreachable configuration.
        states = list(certificate.states)
        states[1] = State.make((Atom("t", (d, d)),), database)
        forged = Certificate(
            query=certificate.query,
            answer=certificate.answer,
            states=tuple(states),
            operations=certificate.operations,
            width_bound=certificate.width_bound,
        )
        with pytest.raises(CertificateError):
            verify_certificate(forged, database, program)

    def test_truncated_certificate_rejected(self):
        program, database, query = tc_setup()
        certificate = extract_certificate(query, (a, d), database, program)
        forged = Certificate(
            query=certificate.query,
            answer=certificate.answer,
            states=certificate.states[:-1],
            operations=certificate.operations[:-1],
            width_bound=certificate.width_bound,
        )
        with pytest.raises(CertificateError, match="not the empty CQ"):
            verify_certificate(forged, database, program)

    def test_misaligned_operations_rejected(self):
        program, database, query = tc_setup()
        certificate = extract_certificate(query, (a, d), database, program)
        forged = Certificate(
            query=certificate.query,
            answer=certificate.answer,
            states=certificate.states,
            operations=certificate.operations[:-1],
            width_bound=certificate.width_bound,
        )
        with pytest.raises(CertificateError, match="do not align"):
            verify_certificate(forged, database, program)

    def test_width_bound_violation_rejected(self):
        program, database, query = tc_setup()
        certificate = extract_certificate(query, (a, d), database, program)
        forged = Certificate(
            query=certificate.query,
            answer=certificate.answer,
            states=certificate.states,
            operations=certificate.operations,
            width_bound=0,
        )
        with pytest.raises(CertificateError, match="width bound"):
            verify_certificate(forged, database, program)


class TestCertifiedDecision:
    def test_positive_verified_end_to_end(self):
        program, database, query = tc_setup()
        accepted, certificate = certified_decision(
            query, (a, d), database, program
        )
        assert accepted and certificate is not None

    def test_negative_has_no_witness(self):
        program, database, query = tc_setup()
        accepted, certificate = certified_decision(
            query, (d, a), database, program
        )
        assert not accepted and certificate is None

    def test_existential_program_certifiable(self):
        program, database = parse_program("""
            p(c).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        query = parse_query("q(X) :- r(X,Y).")
        accepted, certificate = certified_decision(
            query, (c,), database, program
        )
        assert accepted
        assert verify_certificate(certificate, database, program)

    def test_all_chain_pairs(self):
        program, database, query = tc_setup()
        reachable = {(a, b), (b, c), (c, d), (a, c), (b, d), (a, d)}
        for x in (a, b, c, d):
            for y in (a, b, c, d):
                accepted, certificate = certified_decision(
                    query, (x, y), database, program
                )
                assert accepted == ((x, y) in reachable)
                if accepted:
                    assert certificate.states[-1].is_accepting()


class TestSpecializationModes:
    def test_exhaustive_search_still_certifiable(self):
        # The verifier must re-derive paper-literal (exhaustive)
        # specialization steps, not only guided ones.
        program, database, query = tc_setup()
        certificate = extract_certificate(
            query, (a, d), database, program, specialization="exhaustive"
        )
        assert certificate is not None
        assert verify_certificate(certificate, database, program)
