"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main

TC_PROGRAM = """
    e(a,b). e(b,c).
    t(X,Y) :- e(X,Y).
    t(X,Z) :- e(X,Y), t(Y,Z).
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "tc.vada"
    path.write_text(TC_PROGRAM)
    return path


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestClassify:
    def test_reports_memberships(self, program_file):
        code, output = run(["classify", str(program_file)])
        assert code == 0
        assert "warded:               True" in output
        assert "piece-wise linear:    True" in output
        assert "full (Datalog):       True" in output

    def test_reports_bounds_with_query(self, program_file):
        code, output = run(
            ["classify", str(program_file), "--query", "q(X,Y) :- t(X,Y)."]
        )
        assert code == 0
        assert "f_WARD∩PWL(q, Σ) = 8" in output
        assert "f_WARD(q, Σ)     = 4" in output

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            run(["classify", str(tmp_path / "nope.vada")])


class TestAnswer:
    def test_prints_answers(self, program_file):
        code, output = run(
            ["answer", str(program_file), "--query", "q(X,Y) :- t(X,Y)."]
        )
        assert code == 0
        assert "(a, c)" in output
        assert "3 certain answer(s)" in output

    def test_explicit_method(self, program_file):
        code, output = run(
            [
                "answer", str(program_file),
                "--query", "q(X,Y) :- t(X,Y).",
                "--method", "pwl",
            ]
        )
        assert code == 0
        assert "3 certain answer(s)" in output


class TestChase:
    def test_saturating_chase(self, program_file):
        code, output = run(["chase", str(program_file)])
        assert code == 0
        assert "saturated" in output
        assert "t(a,c)" in output

    def test_truncated_chase_exit_code(self, tmp_path):
        path = tmp_path / "runaway.vada"
        path.write_text("""
            p(c).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        code, output = run(["chase", str(path), "--max-atoms", "20"])
        assert code == 3
        assert "truncated" in output


class TestStats:
    def test_prints_buckets(self):
        code, output = run(["stats", "--scale", "1"])
        assert code == 0
        assert "directly piece-wise linear" in output
        assert "piece-wise linear total" in output


class TestBench:
    def test_choice_mirrors_match_harness(self):
        # The parser's static choices must track the harness constants.
        from repro.benchsuite.harness import SCALES, SUITES
        from repro.cli import BENCH_SCALES, BENCH_SUITES

        assert BENCH_SCALES == tuple(SCALES)
        assert BENCH_SUITES == SUITES

    def test_trace_mirrors_match_workloads(self):
        from repro.cli import TRACE_FAMILIES, TRACE_MIXES
        from repro.workloads import MIXES
        from repro.workloads import TRACE_FAMILIES as WORKLOAD_FAMILIES

        assert TRACE_MIXES == tuple(MIXES)
        assert TRACE_FAMILIES == WORKLOAD_FAMILIES

    def test_matrix_subcommand_writes_artifact(self, tmp_path):
        import json

        out_path = tmp_path / "results" / "BENCH_suite.json"
        code, output = run(
            [
                "bench", "--scale", "smoke",
                "--suite", "industrial",
                "--engine", "pwl", "--engine", "ward",
                "--store", "instance", "--store", "columnar",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert "0 disagreement(s)" in output
        assert f"wrote {out_path}" in output
        payload = json.loads(out_path.read_text())
        assert payload["scale"] == "smoke"
        assert payload["suites"] == ["industrial"]
        assert {c["engine"] for c in payload["cells"]} == {"pwl", "ward"}
        assert {c["store"] for c in payload["cells"]} == {
            "instance", "columnar"
        }
        assert all(c["status"] == "ok" for c in payload["cells"])

    def test_rejects_unknown_engine_and_store(self, tmp_path):
        with pytest.raises(SystemExit):
            run(["bench", "--engine", "warp"])
        with pytest.raises(SystemExit):
            run(["bench", "--store", "ram"])

    def test_rejects_nonpositive_queries(self, tmp_path):
        # argparse-level rejection: usage error, nothing runs.
        with pytest.raises(SystemExit):
            run(
                ["bench", "--queries", "0",
                 "--out", str(tmp_path / "b.json")]
            )

    def test_vacuous_matrix_fails(self, tmp_path):
        # Every iwarded cell is skipped for the datalog engine (the
        # programs have existentials): measuring nothing must not exit 0.
        code, output = run(
            [
                "bench", "--scale", "smoke", "--suite", "iwarded",
                "--engine", "datalog", "--store", "instance",
                "--out", str(tmp_path / "b.json"),
            ]
        )
        assert code == 3
        assert "no successful cells" in output


class TestTrace:
    """The workload-harness subcommand: generate / replay / summarize."""

    GENERATE = [
        "trace", "generate", "--ops", "40", "--seed", "11",
        "--vertices", "16", "--edges", "32", "--clusters", "2",
    ]

    def test_generate_to_stdout_is_ndjson(self):
        import json

        code, output = run(self.GENERATE)
        assert code == 0
        lines = output.strip().splitlines()
        assert len(lines) == 41  # header + one line per op
        header = json.loads(lines[0])
        assert header["schema"] == "repro/trace/v1"
        assert json.loads(lines[1])["index"] == 0

    def test_generate_to_file_then_summarize(self, tmp_path):
        import json

        path = tmp_path / "t.ndjson"
        code, output = run(self.GENERATE + ["--out", str(path)])
        assert code == 0
        assert "40 op(s)" in output
        code, output = run(["trace", "summarize", str(path)])
        assert code == 0
        summary = json.loads(output)
        assert summary["ops"] == 40
        assert summary["schema"] == "repro/trace/v1"

    def test_generate_is_deterministic(self):
        _, first = run(self.GENERATE)
        _, second = run(self.GENERATE)
        assert first == second

    def test_replay_session_and_service(self, tmp_path):
        path = tmp_path / "t.ndjson"
        run(self.GENERATE + ["--out", str(path)])
        for target in ("session", "service"):
            code, output = run(
                ["trace", "replay", str(path), "--target", target,
                 "--workers", "2"]
            )
            assert code == 0, output
            assert "0 mismatch(es)" in output
            assert "0 error(s)" in output

    def test_replay_json_output(self, tmp_path):
        import json

        path = tmp_path / "t.ndjson"
        run(self.GENERATE + ["--out", str(path)])
        code, output = run(
            ["trace", "replay", str(path), "--json", "--workers", "2"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["ok"] is True
        assert payload["ops_run"] == 40
        assert "p99_ms" in payload["latency"]["all"]

    def test_replay_open_loop(self, tmp_path):
        path = tmp_path / "t.ndjson"
        run(self.GENERATE + ["--out", str(path), "--rate", "2000"])
        code, output = run(
            ["trace", "replay", str(path), "--rate", "trace",
             "--workers", "2"]
        )
        assert code == 0
        assert "lateness" in output

    def test_replay_missing_file_errors(self, tmp_path):
        code, _ = run(
            ["trace", "replay", str(tmp_path / "absent.ndjson")]
        )
        assert code == 2  # one-line diagnostic, no traceback

    def test_rejects_bad_rate_and_mix(self):
        with pytest.raises(SystemExit):
            run(["trace", "generate", "--mix", "write-only"])
        with pytest.raises(SystemExit):
            run(["trace", "replay", "t.ndjson", "--rate", "-2"])

    def test_replay_server_connection_refused(self, tmp_path):
        path = tmp_path / "t.ndjson"
        run(self.GENERATE + ["--out", str(path)])
        code, _ = run(
            ["trace", "replay", str(path), "--target", "server",
             "--port", "1"]  # nothing listens on port 1
        )
        assert code == 2


class TestQuery:
    """The compile-once-query-many subcommand."""

    def test_many_queries_one_load(self, program_file):
        code, output = run(
            [
                "query", str(program_file),
                "--query", "q(X,Y) :- t(X,Y).",
                "--query", "q(X) :- t(a,X).",
            ]
        )
        assert code == 0
        assert "?- q(X,Y) :- t(X,Y)." in output
        assert "3 certain answer(s)" in output
        assert "?- q(X) :- t(a,X)." in output
        assert "2 certain answer(s)" in output

    def test_stdin_repl(self, program_file):
        stdin = io.StringIO("q(X,Y) :- t(X,Y).\nnot a query\nquit\n")
        out = io.StringIO()
        code = main(["query", str(program_file)], out=out, stdin=stdin)
        output = out.getvalue()
        assert code == 0
        assert "loaded tc" in output
        assert "3 certain answer(s)" in output
        assert "error:" in output          # bad query keeps the loop alive

    def test_explain_prints_plan(self, program_file):
        code, output = run(
            [
                "query", str(program_file),
                "--query", "q(X,Y) :- t(X,Y).",
                "--explain",
            ]
        )
        assert code == 0
        assert "engine  : datalog" in output
        assert "pipeline:" in output

    def test_first_leaves_stream_unexhausted(self, program_file):
        code, output = run(
            [
                "query", str(program_file),
                "--query", "q(X,Y) :- t(X,Y).",
                "--first", "1",
            ]
        )
        assert code == 0
        assert "first 1 answer(s)" in output
        assert "not exhausted" in output


class TestStoreOption:
    """--store is accepted by every subcommand and validated."""

    @pytest.mark.parametrize(
        "argv_tail",
        [
            ["--query", "q(X,Y) :- t(X,Y)."],
            [],
        ],
    )
    def test_answer_and_chase_accept_backends(self, program_file, argv_tail):
        command = "answer" if argv_tail else "chase"
        for backend in ("instance", "columnar", "delta"):
            code, _ = run(
                [command, str(program_file), "--store", backend] + argv_tail
            )
            assert code == 0

    @pytest.mark.parametrize(
        "argv",
        [
            ["classify", "FILE"],
            ["answer", "FILE", "--query", "q(X,Y) :- t(X,Y)."],
            ["query", "FILE", "--query", "q(X,Y) :- t(X,Y)."],
            ["chase", "FILE"],
            ["stats"],
            ["rewrite", "FILE", "--query", "q(X,Y) :- t(X,Y)."],
            ["update", "FILE", "--changes", "nope.delta"],
        ],
    )
    def test_every_subcommand_validates_store(self, program_file, argv,
                                              capsys):
        argv = [
            str(program_file) if token == "FILE" else token for token in argv
        ]
        with pytest.raises(SystemExit):
            run(argv + ["--store", "bogus"])
        stderr = capsys.readouterr().err
        assert "unknown storage backend 'bogus'" in stderr
        assert "instance, columnar, delta" in stderr


class TestParserErrors:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            run(["frobnicate"])


class TestRewrite:
    def test_rewrites_pwl_program(self, program_file):
        code, output = run(
            [
                "rewrite", str(program_file),
                "--query", "q(X,Y) :- t(X,Y).",
                "--width", "3",
            ]
        )
        assert code == 0
        assert "complete" in output
        assert "→" in output          # TGDs print with the arrow form
        assert "Answer" in output

    def test_truncation_exit_code(self, program_file):
        code, output = run(
            [
                "rewrite", str(program_file),
                "--query", "q(X,Y) :- t(X,Y).",
                "--max-states", "2",
            ]
        )
        assert code == 3
        assert "TRUNCATED" in output


class TestUpdate:
    def run_with_stdin(self, argv, text):
        out = io.StringIO()
        code = main(argv, out=out, stdin=io.StringIO(text))
        return code, out.getvalue()

    def test_insert_and_retract_maintain_cached_fixpoint(self, program_file):
        code, output = self.run_with_stdin(
            [
                "update", str(program_file),
                "--query", "q(X,Y) :- t(X,Y).",
            ],
            "+e(c,d).\n-e(a,b).\n",
        )
        assert code == 0
        assert "edb: +1 fact(s), -1 fact(s)" in output
        assert "maintained datalog×instance fixpoint" in output
        # the post-update answers reflect both the insert and retract
        assert "(b, d)" in output and "(a, b)" not in output

    def test_changes_file_and_store_flag(self, program_file, tmp_path):
        delta = tmp_path / "changes.delta"
        delta.write_text("# new edge\n+e(c,d).\n")
        code, output = run(
            [
                "update", str(program_file),
                "--changes", str(delta),
                "--query", "q(X,Y) :- t(X,Y).",
                "--store", "columnar",
            ]
        )
        assert code == 0
        assert "maintained datalog×columnar fixpoint" in output
        assert "(a, d)" in output

    def test_batch_separator_applies_sequentially(self, program_file):
        code, output = self.run_with_stdin(
            [
                "update", str(program_file),
                "--query", "q(X,Y) :- t(X,Y).",
            ],
            "+e(c,d).\n--\n-e(c,d).\n",
        )
        assert code == 0
        assert "batch 1:" in output and "batch 2:" in output
        # net effect of the two batches is zero
        assert "3 certain answer(s)" in output

    def test_no_cached_fixpoint_reports_nothing_to_maintain(
        self, program_file
    ):
        code, output = self.run_with_stdin(
            ["update", str(program_file)], "+e(c,d).\n"
        )
        assert code == 0
        assert "no cached fixpoints to maintain" in output

    def test_rederive_counter_surfaces(self, tmp_path):
        # two parallel paths a→b: retracting one rederives t(a,b)
        path = tmp_path / "diamond.vada"
        path.write_text("""
            e(a,b). f(a,b).
            t(X,Y) :- e(X,Y).
            t(X,Y) :- f(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        code, output = self.run_with_stdin(
            ["update", str(path), "--query", "q(X,Y) :- t(X,Y)."],
            "-e(a,b).\n",
        )
        assert code == 0
        assert "1 rederived" in output
        assert "(a, b)" in output  # still derivable through f

    def test_bad_delta_line_fails_with_batch_diagnostic(self, program_file):
        code, output = self.run_with_stdin(
            ["update", str(program_file)], "+e(X,b).\n"
        )
        assert code == 3
        assert "error in batch 1" in output

    def test_failed_batch_stops_later_batches(self, program_file):
        """Batches are sequential: nothing after a failed batch may
        apply (a 1,3 application with a gap matches no valid input)."""
        code, output = self.run_with_stdin(
            ["update", str(program_file),
             "--query", "q(X,Y) :- t(X,Y)."],
            "+e(c,d).\n--\n+bad(X.\n--\n-e(c,d).\n",
        )
        assert code == 3
        assert "error in batch 2" in output
        assert "applied 1 batch(es)" in output
        assert "batch 3:" not in output
        # batch 1 applied, batch 3 did not revert it
        assert "(c, d)" in output

    def test_missing_changes_file(self, program_file):
        with pytest.raises(SystemExit, match="cannot read"):
            run(["update", str(program_file), "--changes", "missing.delta"])


class TestExitCodes:
    """Engine errors are diagnostics (exit 2, one line on stderr), not
    tracebacks; interrupts exit 130."""

    def test_engine_error_exits_2(self, program_file, capsys):
        code, output = run(
            ["answer", str(program_file), "--query", "q(X) :- broken(("]
        )
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, monkeypatch, program_file,
                                          capsys):
        import repro.cli as cli

        def interrupt(args, out):
            raise KeyboardInterrupt

        monkeypatch.setitem(
            cli.__dict__, "_cmd_answer", interrupt
        )
        code, _ = run(
            ["answer", str(program_file), "--query", "q(X,Y) :- t(X,Y)."]
        )
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

    def test_repl_interrupt_ends_session_cleanly(self, program_file):
        class InterruptingStdin:
            def __init__(self):
                self.calls = 0

            def isatty(self):
                return False

            def readline(self):
                self.calls += 1
                if self.calls == 1:
                    return "q(X,Y) :- t(X,Y).\n"
                raise KeyboardInterrupt

        out = io.StringIO()
        code = main(
            ["query", str(program_file)], out=out,
            stdin=InterruptingStdin(),
        )
        assert code == 0
        assert "3 certain answer(s)" in out.getvalue()


class TestServeAndClient:
    SERVER_PROGRAM = TC_PROGRAM

    @pytest.fixture
    def running_server(self, program_file):
        from repro.server import ReasoningServer, ReasoningService

        service = ReasoningService(program_file, store="columnar")
        server = ReasoningServer(service, port=0)
        server.serve_in_thread()
        yield server.address
        server.close()

    def test_client_query(self, running_server):
        host, port = running_server
        code, output = run(
            ["client", "--host", host, "--port", str(port),
             "query", "q(X,Y) :- t(X,Y)."]
        )
        assert code == 0
        assert "(a, c)" in output
        assert "3 answer(s) @ version 0" in output

    def test_client_update_then_query(self, running_server, tmp_path):
        host, port = running_server
        delta = tmp_path / "batch.delta"
        delta.write_text("+e(c,d).\n")
        code, output = run(
            ["client", "--host", host, "--port", str(port),
             "update", "--changes", str(delta)]
        )
        assert code == 0
        assert "version 1: +1 -0" in output
        code, output = run(
            ["client", "--host", host, "--port", str(port),
             "query", "q(X) :- t(a, X)."]
        )
        assert code == 0
        assert "(d)" in output

    def test_client_stats_and_ping(self, running_server):
        host, port = running_server
        code, output = run(
            ["client", "--host", host, "--port", str(port), "ping"]
        )
        assert code == 0 and "ok (version 0)" in output
        code, output = run(
            ["client", "--host", host, "--port", str(port), "stats"]
        )
        assert code == 0
        assert '"queries_total"' in output

    def test_client_engine_error_exits_2(self, running_server, capsys):
        host, port = running_server
        code, _ = run(
            ["client", "--host", running_server[0],
             "--port", str(running_server[1]), "query", "q(X) :- broken(("]
        )
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_client_connection_refused_exits_2(self, capsys):
        import socket

        # An ephemeral port bound then closed is very likely free.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code, _ = run(
            ["client", "--port", str(port), "ping"]
        )
        assert code == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_serve_shutdown_via_client(self, program_file, tmp_path):
        import threading

        port_file = tmp_path / "port.txt"
        out = io.StringIO()
        result = {}

        def serve():
            result["code"] = main(
                ["serve", str(program_file), "--port", "0",
                 "--port-file", str(port_file)],
                out=out,
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        import time
        deadline = time.monotonic() + 10
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        port = int(port_file.read_text().strip())
        code, output = run(
            ["client", "--port", str(port), "shutdown"]
        )
        assert code == 0 and "server stopping" in output
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert result["code"] == 0
        assert "server stopped" in out.getvalue()


class TestShardedStoreFlags:
    def test_answer_with_budget_and_spill_dir(self, program_file, tmp_path):
        code, output = run(
            ["answer", str(program_file),
             "--query", "q(X,Y) :- t(X,Y).",
             "--store", "sharded",
             "--memory-budget", "64k",
             "--spill-dir", str(tmp_path / "spill")]
        )
        assert code == 0
        assert "3 certain answer(s)" in output

    def test_chase_with_sharded_store(self, program_file):
        code, output = run(
            ["chase", str(program_file), "--store", "sharded"]
        )
        assert code == 0
        assert "saturated" in output

    def test_budget_requires_sharded(self, program_file):
        with pytest.raises(SystemExit, match="require --store sharded"):
            run(
                ["answer", str(program_file),
                 "--query", "q(X,Y) :- t(X,Y).",
                 "--store", "columnar",
                 "--memory-budget", "64k"]
            )

    def test_spill_dir_requires_sharded(self, program_file, tmp_path):
        with pytest.raises(SystemExit, match="require --store sharded"):
            run(
                ["answer", str(program_file),
                 "--query", "q(X,Y) :- t(X,Y).",
                 "--spill-dir", str(tmp_path)]
            )

    def test_byte_size_suffixes(self):
        from repro.cli import _byte_size

        assert _byte_size("4096") == 4096
        assert _byte_size("64k") == 64 * 1024
        assert _byte_size("2M") == 2 * 1024 * 1024
        assert _byte_size("1g") == 1024 ** 3
        with pytest.raises(Exception):
            _byte_size("0")
        with pytest.raises(Exception):
            _byte_size("12q")


class TestClientMemoryStats:
    @pytest.fixture
    def sharded_server(self, program_file):
        from repro.server import ReasoningServer, ReasoningService
        from repro.storage import sharded_store_factory

        service = ReasoningService(
            program_file, store=sharded_store_factory(None, None)
        )
        server = ReasoningServer(service, port=0)
        server.serve_in_thread()
        yield server.address
        server.close()

    def test_stats_reports_per_version_bytes(self, sharded_server, tmp_path):
        import json

        host, port = sharded_server
        delta = tmp_path / "batch.delta"
        delta.write_text("+e(c,d).\n")
        code, _ = run(
            ["client", "--host", host, "--port", str(port),
             "update", "--changes", str(delta)]
        )
        assert code == 0
        code, output = run(
            ["client", "--host", host, "--port", str(port), "stats"]
        )
        assert code == 0
        stats = json.loads(output)
        memory = stats["memory"]
        assert memory["resident_bytes_total"] > 0
        assert "spilled_bytes_total" in memory
        versions = memory["versions"]
        assert versions  # at least the head
        for entry in versions.values():
            assert set(entry) == {"atoms", "resident_bytes",
                                  "spilled_bytes"}


class TestLint:
    CLEAN = TC_PROGRAM
    DEFECTIVE = """
        e(a, b).
        p(X) :- e(X, Y).
        q(X, Y) :- p(X).
        pair(Y, Z) :- q(X, Y), q(W, Z).
        odd(X) :- e(X, Y), not even(X).
        even(X) :- e(X, Y), not odd(X).
        bad(Z) :- e(X, Y), not e(Y, Z).
    """
    WARN_ONLY = """
        p(a). q(b).
        pair(X, Y) :- p(X), q(Y).
    """

    def write(self, tmp_path, text, name="prog.vada"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_clean_program_exits_0(self, tmp_path):
        path = self.write(tmp_path, self.CLEAN)
        code, output = run(["lint", str(path)])
        assert code == 0
        assert "clean" in output

    def test_defective_program_exits_1_with_codes(self, tmp_path):
        path = self.write(tmp_path, self.DEFECTIVE)
        code, output = run(["lint", str(path)])
        assert code == 1
        for expected in ["E101", "E103", "W201"]:
            assert expected in output
        # Findings carry the file path and line:column locations.
        assert f"{path}:" in output

    def test_warnings_gate_only_under_strict(self, tmp_path):
        path = self.write(tmp_path, self.WARN_ONLY)
        code, output = run(["lint", str(path)])
        assert code == 0
        assert "W203" in output
        code, _ = run(["lint", "--strict", str(path)])
        assert code == 1

    def test_select_and_ignore(self, tmp_path):
        path = self.write(tmp_path, self.DEFECTIVE)
        code, output = run(["lint", str(path), "--select", "E1"])
        assert code == 1
        assert "E101" in output and "W201" not in output
        code, output = run(["lint", str(path), "--ignore", "E,W"])
        assert code == 0
        assert "E101" not in output

    def test_json_format_and_out_file(self, tmp_path):
        import json

        path = self.write(tmp_path, self.DEFECTIVE)
        report_path = tmp_path / "report.json"
        code, output = run(
            ["lint", str(path), "--format", "json",
             "--out", str(report_path)]
        )
        assert code == 1
        payload = json.loads(output)
        assert payload["failed"] is True
        (entry,) = payload["files"]
        assert entry["path"] == str(path)
        codes = {d["code"] for d in entry["diagnostics"]}
        assert {"E101", "E103", "W201"} <= codes
        for diagnostic in entry["diagnostics"]:
            assert diagnostic["severity"] in ("error", "warning", "info")
            assert diagnostic["line"] >= 1
        # --out writes the same payload to disk.
        assert json.loads(report_path.read_text()) == payload

    def test_multiple_files_aggregate(self, tmp_path):
        clean = self.write(tmp_path, self.CLEAN, "clean.vada")
        bad = self.write(tmp_path, self.DEFECTIVE, "bad.vada")
        code, output = run(["lint", str(clean), str(bad)])
        assert code == 1
        assert f"{clean}: clean" in output
        assert "E101" in output

    def test_syntax_error_becomes_e001(self, tmp_path):
        path = self.write(tmp_path, "t(X) :- e(X\n")
        code, output = run(["lint", str(path)])
        assert code == 1
        assert "E001" in output and "syntax-error" in output

    def test_missing_file_exits_via_systemexit(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            run(["lint", str(tmp_path / "nope.vada")])

    def test_help_lists_registered_codes(self, capsys):
        from repro.lint import registered_codes

        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        help_text = capsys.readouterr().out
        assert "E001" in help_text
        for code, _, _, _ in registered_codes():
            assert code in help_text


class TestClientLint:
    @pytest.fixture
    def running_server(self, program_file):
        from repro.server import ReasoningServer, ReasoningService

        service = ReasoningService(program_file, store="columnar")
        server = ReasoningServer(service, port=0)
        server.serve_in_thread()
        yield server.address
        server.close()

    def test_client_lint_clean_and_defective(self, running_server, tmp_path):
        host, port = running_server
        clean = tmp_path / "clean.vada"
        clean.write_text(TC_PROGRAM)
        code, output = run(
            ["client", "--host", host, "--port", str(port),
             "lint", str(clean)]
        )
        assert code == 0
        assert "clean" in output

        bad = tmp_path / "bad.vada"
        bad.write_text("bad(Z) :- e(X, Y), not e(Y, Z).\ne(a, b).\n")
        code, output = run(
            ["client", "--host", host, "--port", str(port),
             "lint", str(bad)]
        )
        assert code == 1
        assert "E101" in output

    def test_client_lint_strict_gates_warnings(self, running_server,
                                               tmp_path):
        host, port = running_server
        warn = tmp_path / "warn.vada"
        warn.write_text("p(a). q(b).\npair(X, Y) :- p(X), q(Y).\n")
        code, output = run(
            ["client", "--host", host, "--port", str(port),
             "lint", str(warn)]
        )
        assert code == 0 and "W203" in output
        code, _ = run(
            ["client", "--host", host, "--port", str(port),
             "lint", str(warn), "--strict"]
        )
        assert code == 1
