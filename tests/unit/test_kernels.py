"""Unit tests for the columnar batch-kernel subsystem.

Covers the three layers the kernels cut across: the compiler
(``repro.kernels.compiler`` — lowering rules to pin plans with the
first-pin old/full discipline), the runtime
(``repro.kernels.runtime`` — batch execution over interned id rows,
parity with the per-tuple interpreter), and the dispatch surfaces
(``exec_mode`` through ``seminaive``, the planner's exec dimension,
and ``StreamStats``/server observability), plus the bulk storage
surface the kernels compile against (``intern_many`` /
``extend_interned``).
"""

import pytest

from repro.api import EXEC_MODES, Session
from repro.core.atoms import Atom
from repro.core.instance import Instance
from repro.core.terms import Constant, Variable
from repro.datalog.seminaive import (
    seminaive,
    seminaive_delta_rounds,
    seminaive_rounds,
)
from repro.kernels import (
    KernelEvaluator,
    compile_kernels,
    compile_rule,
    kernel_capable,
)
from repro.kernels.compiler import CONST, SLOT
from repro.lang.parser import parse_program
from repro.server.service import ReasoningService
from repro.storage import ColumnarStore, ShardedStore, TermTable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")

TC_SOURCE = """
    e(a,b). e(b,c). e(c,d).
    t(X,Y) :- e(X,Y).
    t(X,Z) :- e(X,Y), t(Y,Z).
"""


def _rule(text):
    program, _ = parse_program(text)
    return list(program)[0]


class TestCompiler:
    def test_tc_rule_layout(self):
        kernel = compile_rule(_rule("t(X,Z) :- e(X,Y), t(Y,Z)."))
        assert kernel.num_slots == 3
        assert kernel.head_predicate == "t"
        assert kernel.head_arity == 2
        assert all(kind == SLOT for kind, _ in kernel.head)
        # One pin plan per body position, each with one join step for
        # the other atom.
        assert len(kernel.pins) == 2
        for pin in kernel.pins:
            assert len(pin.steps) == 1

    def test_first_pin_old_full_discipline(self):
        kernel = compile_rule(_rule("t(X,Z) :- e(X,Y), t(Y,Z)."))
        pin0, pin1 = kernel.pins
        # Pin 0: the other atom sits at a later body position — full.
        assert pin0.pin_index == 0
        assert pin0.steps[0].predicate == "t"
        assert not pin0.steps[0].old_only
        # Pin 1: the other atom sits earlier — old rows only, so a
        # match whose first delta position is 1 surfaces exactly once.
        assert pin1.pin_index == 1
        assert pin1.steps[0].predicate == "e"
        assert pin1.steps[0].old_only

    def test_bound_join_key_covers_shared_variables(self):
        kernel = compile_rule(_rule("p(X) :- e(X,Y), e(Y,X)."))
        step = kernel.pins[0].steps[0]
        # After pinning e(X,Y) both X and Y are bound, so the second
        # atom probes on both positions and binds nothing new.
        assert len(step.key) == 2
        assert step.binds == ()
        assert all(kind == SLOT for _, (kind, _) in step.key)

    def test_within_atom_repeat(self):
        kernel = compile_rule(_rule("r(X) :- e(X,X)."))
        pin = kernel.pins[0]
        assert pin.repeats == ((1, 0),)
        assert len(pin.binds) == 1

    def test_constants_land_in_consts_and_keys(self):
        kernel = compile_rule(_rule("r(Y) :- e(a,Y), t(Y,b)."))
        pin0 = kernel.pins[0]
        assert pin0.consts == ((0, a),)
        step = pin0.steps[0]
        kinds = {kind for _, (kind, _) in step.key}
        # t(Y, b): Y is bound (slot), b is a constant key source.
        assert kinds == {SLOT, CONST}

    def test_head_constants(self):
        kernel = compile_rule(_rule("r(X,c) :- e(X,Y)."))
        assert kernel.head[0][0] == SLOT
        assert kernel.head[1] == (CONST, c)

    def test_rejects_existential_rule(self):
        with pytest.raises(ValueError, match="full single-head"):
            compile_rule(_rule("r(X,K) :- p(X)."))

    def test_rejects_multi_head_rule(self):
        with pytest.raises(ValueError, match="full single-head"):
            compile_rule(_rule("r(X), s(X) :- p(X)."))

    def test_describe_is_stable_and_informative(self):
        program, _ = parse_program(TC_SOURCE)
        text = compile_kernels(program).describe()
        assert "kernel program: 2 rule(s)" in text
        assert "pin 0" in text and "pin 1" in text
        assert "probe[e/2|old]" in text  # the old-only recursive pin
        assert "probe[t/2]" in text


class TestBulkInterning:
    """Satellite: ``TermTable.intern_many`` ≡ the per-term loop."""

    def test_intern_many_matches_intern_loop(self):
        terms = [a, b, a, c, b, Constant("fresh"), a]
        bulk = TermTable()
        loop = TermTable()
        assert bulk.intern_many(terms) == [loop.intern(t) for t in terms]
        assert len(bulk) == len(loop) == 4

    def test_intern_many_reuses_existing_ids(self):
        table = TermTable()
        first = table.intern(a)
        ids = table.intern_many([b, a, b])
        assert ids[1] == first
        assert ids[0] == ids[2]
        assert table.term(ids[0]) == b

    def test_intern_many_empty(self):
        table = TermTable()
        assert table.intern_many([]) == []
        assert len(table) == 0


def _edge_atoms(n):
    return [
        Atom("edge", (Constant(f"n{i}"), Constant(f"n{i + 1}")))
        for i in range(n)
    ]


class TestExtendInterned:
    """Satellite: ``extend_interned`` ≡ adding the decoded atoms."""

    @pytest.mark.parametrize("factory", [ColumnarStore, ShardedStore])
    def test_bulk_append_matches_per_atom_add(self, factory):
        atoms = _edge_atoms(6)
        reference = factory()
        reference.add_all(atoms)
        bulk = factory()
        rows = [
            tuple(bulk.table.intern_many(atom.args)) for atom in atoms
        ]
        added = bulk.extend_interned("edge", 2, rows)
        assert added == len(atoms)
        assert bulk.atoms() == reference.atoms()
        assert len(bulk) == len(reference)

    @pytest.mark.parametrize("factory", [ColumnarStore, ShardedStore])
    def test_bulk_append_dedups(self, factory):
        atoms = _edge_atoms(4)
        store = factory()
        store.add_all(atoms[:2])
        rows = [
            tuple(store.table.intern_many(atom.args)) for atom in atoms
        ]
        # Two rows already stored, two new, one duplicated in-batch.
        assert store.extend_interned("edge", 2, rows + [rows[-1]]) == 2
        assert store.extend_interned("edge", 2, rows) == 0
        assert len(store) == 4

    @pytest.mark.parametrize("factory", [ColumnarStore, ShardedStore])
    def test_arity_mismatch_rejected(self, factory):
        store = factory()
        tid = store.table.intern(a)
        with pytest.raises(ValueError, match="column"):
            store.extend_interned("edge", 2, [(tid,)])

    @pytest.mark.parametrize("factory", [ColumnarStore, ShardedStore])
    def test_uninterned_id_rejected(self, factory):
        store = factory()
        tid = store.table.intern(a)
        with pytest.raises(ValueError, match="not interned"):
            store.extend_interned("edge", 2, [(tid, tid + 99)])

    def test_extended_rows_visible_to_matching(self):
        store = ColumnarStore()
        rows = [tuple(store.table.intern_many((a, b)))]
        store.extend_interned("e", 2, rows)
        assert set(store.matching(Atom("e", (X, Y)))) == {Atom("e", (a, b))}


def _parity(source, store):
    """Kernel result on *store* vs the interpreter on ``instance``."""
    program, database = parse_program(source)
    kernel = seminaive(
        database, program, store=store, exec_mode="kernel"
    )
    interp = seminaive(
        database, program, store="instance", exec_mode="interpret"
    )
    assert kernel.instance.atoms() == interp.instance.atoms()
    assert kernel.rounds == interp.rounds
    assert kernel.derived == interp.derived
    assert kernel.considered == interp.considered
    assert kernel.per_round_considered == interp.per_round_considered
    assert kernel.per_round_derived == interp.per_round_derived
    assert kernel.exec_mode == "kernel"
    assert interp.exec_mode == "interpret"
    assert interp.batches == 0
    return kernel, interp


class TestRuntimeParity:
    """Kernel execution ≡ the interpreter, counts and all."""

    @pytest.mark.parametrize("store", ["columnar", "sharded"])
    def test_transitive_closure(self, store):
        kernel, _ = _parity(TC_SOURCE, store)
        assert kernel.derived == 6
        assert kernel.batches > 0

    def test_body_constants(self):
        _parity(
            """
            e(a,b). e(b,c). e(c,d).
            from_a(Y) :- e(a,Y).
            from_a(Z) :- from_a(Y), e(Y,Z).
            """,
            "columnar",
        )

    def test_repeated_head_variable(self):
        _parity(
            """
            e(a,b). e(b,a). e(b,c).
            loop(X,X) :- e(X,Y), e(Y,X).
            """,
            "columnar",
        )

    def test_within_atom_repeat_and_head_constant(self):
        _parity(
            """
            e(a,a). e(a,b). e(c,c).
            diag(X,marked) :- e(X,X).
            """,
            "columnar",
        )

    def test_cartesian_scan_step(self):
        # No shared variable between the body atoms: the second step
        # has an empty key and runs as a scan (cartesian extension).
        _parity(
            """
            p(a). p(b). q(c). q(d).
            pair(X,Y) :- p(X), q(Y).
            """,
            "columnar",
        )

    def test_mutual_recursion(self):
        _parity(
            """
            start(a). e(a,b). e(b,c). e(c,d).
            even(X) :- start(X).
            odd(Y) :- even(X), e(X,Y).
            even(Y) :- odd(X), e(X,Y).
            """,
            "columnar",
        )

    def test_rule_that_never_fires_interns_no_constants(self):
        program, database = parse_program(
            """
            e(a,b).
            t(X,Y) :- e(X,Y).
            ghost(phantom) :- missing(X).
            """
        )
        result = seminaive(
            database, program, store="columnar", exec_mode="kernel"
        )
        # The interpreter never materializes heads of rules without a
        # body match; the kernel must not intern their constants either.
        assert result.instance.table.id_of(Constant("phantom")) is None

    def test_round_events_match_interpreter(self):
        program, database = parse_program(TC_SOURCE)
        kernel_events = list(
            seminaive_rounds(
                database, program, store="columnar", exec_mode="kernel"
            )
        )
        interp_events = list(
            seminaive_rounds(
                database, program, store="instance", exec_mode="interpret"
            )
        )
        assert len(kernel_events) == len(interp_events)
        for kev, iev in zip(kernel_events, interp_events):
            assert kev.index == iev.index
            assert set(kev.staged) == set(iev.staged)
            assert kev.considered == iev.considered
        assert all(e.exec_mode == "kernel" for e in kernel_events)
        assert all(e.batches > 0 for e in kernel_events[1:])


class TestDeltaResumption:
    def test_seed_delta_matches_from_scratch(self):
        program, database = parse_program(TC_SOURCE)
        saturated = seminaive(
            database, program, store="columnar", exec_mode="kernel"
        ).instance
        delta = [Atom("e", (d, Constant("f"))), Atom("e", (a, b))]
        events = list(
            seminaive_delta_rounds(
                saturated, program, delta, exec_mode="kernel"
            )
        )
        # Round 0 carries the deduplicated seed — including the
        # re-asserted e(a,b), delta without being a new row.
        assert set(events[0].staged) == set(delta)
        assert events[0].exec_mode == "kernel"
        scratch_program, scratch_db = parse_program(
            TC_SOURCE + "\ne(d,f)."
        )
        scratch = seminaive(
            scratch_db, scratch_program, store="instance",
            exec_mode="interpret",
        )
        assert saturated.atoms() == scratch.instance.atoms()

    def test_duplicate_seed_atoms_collapse(self):
        program, database = parse_program(TC_SOURCE)
        saturated = seminaive(
            database, program, store="columnar", exec_mode="kernel"
        ).instance
        fresh = Atom("e", (d, Constant("f")))
        events = list(
            seminaive_delta_rounds(
                saturated, program, [fresh, fresh], exec_mode="kernel"
            )
        )
        assert events[0].staged == (fresh,)


class TestExecResolution:
    def test_exec_modes_tuple(self):
        assert EXEC_MODES == ("auto", "kernel", "interpret")

    def test_unknown_mode_rejected(self):
        program, database = parse_program(TC_SOURCE)
        with pytest.raises(ValueError, match="unknown exec_mode"):
            seminaive(database, program, exec_mode="vectorized")

    def test_forced_kernel_needs_id_array_surface(self):
        program, database = parse_program(TC_SOURCE)
        for store in ("instance", "delta"):
            with pytest.raises(ValueError, match="interned"):
                list(
                    seminaive_rounds(
                        database, program, store=store, exec_mode="kernel"
                    )
                )

    def test_auto_resolution_per_store(self):
        program, database = parse_program(TC_SOURCE)
        assert (
            seminaive(database, program, store="columnar").exec_mode
            == "kernel"
        )
        assert (
            seminaive(database, program, store="instance").exec_mode
            == "interpret"
        )

    def test_kernel_capable_probe(self):
        assert kernel_capable(ColumnarStore())
        assert kernel_capable(ShardedStore())
        assert not kernel_capable(Instance())

    def test_evaluator_rejects_incapable_store(self):
        program, _ = parse_program(TC_SOURCE)
        with pytest.raises(ValueError, match="interned"):
            KernelEvaluator(Instance(), program)


class TestScratchAccounting:
    """Satellite: the mirror surfaces as ``kernel_scratch``."""

    def test_scratch_registered_for_generator_lifetime(self):
        program, database = parse_program(TC_SOURCE)
        store = ColumnarStore(database)
        evaluator = KernelEvaluator(store, program)
        evaluator.mark_all_delta()
        assert not store.has_scratch
        rounds = evaluator.rounds()
        next(rounds)
        assert store.has_scratch
        report = store.memory_report()
        assert report.components["kernel_scratch"] > 0
        # Shared row tuples are charged to the store's own columns;
        # the mirror pays only for its containers and indexes.
        assert "columns" in report.components
        for _ in rounds:
            pass
        assert not store.has_scratch
        assert "kernel_scratch" not in store.memory_report().components

    def test_scratch_unregistered_on_early_close(self):
        program, database = parse_program(TC_SOURCE)
        store = ColumnarStore(database)
        evaluator = KernelEvaluator(store, program)
        evaluator.mark_all_delta()
        rounds = evaluator.rounds()
        next(rounds)
        rounds.close()
        assert not store.has_scratch

    def test_scratch_bytes_positive_after_mirroring(self):
        program, database = parse_program(TC_SOURCE)
        store = ColumnarStore(database)
        evaluator = KernelEvaluator(store, program)
        assert evaluator.scratch_bytes() > 0


class TestPlannerExecDimension:
    def test_columnar_auto_resolves_to_kernel(self):
        session = Session(store="columnar")
        session.load(TC_SOURCE)
        plan = session.plan("q(X,Y) :- t(X,Y).")
        assert plan.exec_mode == "kernel"
        assert "interned id arrays" in plan.exec_note
        assert "exec    : kernel" in plan.explain()

    def test_instance_auto_falls_back_to_interpreter(self):
        session = Session(store="instance")
        session.load(TC_SOURCE)
        plan = session.plan("q(X,Y) :- t(X,Y).")
        assert plan.exec_mode == "interpret"
        assert "no interned id-array surface" in plan.exec_note

    def test_forced_interpret_on_capable_store(self):
        session = Session(store="columnar")
        session.load(TC_SOURCE)
        plan = session.plan("q(X,Y) :- t(X,Y).", exec_mode="interpret")
        assert plan.exec_mode == "interpret"
        assert "forced by the caller" in plan.exec_note

    def test_forced_kernel_on_incapable_store_rejected(self):
        session = Session(store="instance")
        session.load(TC_SOURCE)
        with pytest.raises(ValueError, match="interned id-array"):
            session.plan("q(X,Y) :- t(X,Y).", exec_mode="kernel")

    def test_unknown_mode_rejected_at_plan_time(self):
        session = Session(store="columnar")
        session.load(TC_SOURCE)
        with pytest.raises(ValueError, match="unknown exec_mode"):
            session.plan("q(X,Y) :- t(X,Y).", exec_mode="simd")

    def test_non_datalog_engine_refuses_forced_kernel(self):
        session = Session(store="columnar")
        session.load(
            """
            person(a).
            knows(X,K) :- person(X).
            """
        )
        with pytest.raises(ValueError, match="semi-naive"):
            session.plan("q(X) :- person(X).", exec_mode="kernel")
        plan = session.plan("q(X) :- person(X).")
        assert plan.exec_mode == "interpret"
        assert "no compiled kernel path" in plan.exec_note


class TestStatsEcho:
    """Satellite: exec observability through stream stats + server."""

    def test_stream_stats_report_kernel_dispatch(self):
        session = Session(store="columnar")
        session.load(TC_SOURCE)
        stream = session.query("q(X,Y) :- t(X,Y).", exec_mode="kernel")
        answers = stream.to_set()
        assert len(answers) == 6
        assert stream.stats.exec_mode == "kernel"
        assert stream.stats.kernel_batches > 0

    def test_interpreter_reports_zero_batches(self):
        session = Session(store="instance")
        session.load(TC_SOURCE)
        stream = session.query("q(X,Y) :- t(X,Y).")
        stream.to_set()
        assert stream.stats.exec_mode == "interpret"
        assert stream.stats.kernel_batches == 0

    def test_cache_hit_reports_no_exec_mode(self):
        session = Session(store="columnar")
        session.load(TC_SOURCE)
        session.query("q(X,Y) :- t(X,Y).").to_set()
        cached = session.query("q(X,Y) :- t(X,Y).")
        cached.to_set()
        # A reused materialization ran no engine at all — neither core
        # can claim it.
        assert cached.stats.from_cache
        assert cached.stats.exec_mode == ""

    def test_exec_mode_shared_fixpoint_across_modes(self):
        # exec changes how the fixpoint is computed, never the
        # fixpoint: the kernel-built materialization serves the
        # interpret-mode query from cache.
        session = Session(store="columnar")
        session.load(TC_SOURCE)
        first = session.query("q(X,Y) :- t(X,Y).", exec_mode="kernel")
        kernel_answers = first.to_set()
        second = session.query("q(X,Y) :- t(X,Y).", exec_mode="interpret")
        assert second.to_set() == kernel_answers
        assert second.stats.from_cache

    def test_server_echoes_exec_mode(self):
        service = ReasoningService(TC_SOURCE, store="columnar")
        result = service.query(
            "q(X,Y) :- t(X,Y).", exec_mode="kernel"
        )
        assert result.stats["exec_mode"] == "kernel"
        assert result.stats["kernel_batches"] > 0
        forced = service.query(
            "q(X,Y) :- t(X,Y).", exec_mode="interpret"
        )
        # Same fixpoint, already materialized: the forced-interpret
        # query answers from cache without running either core.
        assert forced.stats["from_cache"]
        assert {tuple(r) for r in forced.answers} == {
            tuple(r) for r in result.answers
        }
