"""Unit tests for chunk-based resolution and IDO resolvents."""


from repro.core.atoms import Atom
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD
from repro.lang.parser import parse_query
from repro.prooftree.canonical import canonical_form
from repro.prooftree.resolution import ido_resolvents, resolvents

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a = Constant("a")


def tc_step() -> TGD:
    # t(X,Z) :- e(X,Y), t(Y,Z) — with its own variable names.
    u, v, w = Variable("u"), Variable("v"), Variable("w")
    return TGD((Atom("e", (u, v)), Atom("t", (v, w))), (Atom("t", (u, w)),))


def tc_base() -> TGD:
    u, v = Variable("u"), Variable("v")
    return TGD((Atom("e", (u, v)),), (Atom("t", (u, v)),))


class TestResolvents:
    def test_base_resolution(self):
        q = parse_query("q(X,Y) :- t(X,Y).")
        results = list(ido_resolvents(q, tc_base()))
        assert len(results) == 1
        body = results[0].query.atoms
        assert len(body) == 1 and body[0].predicate == "e"
        # IDO: the outputs keep their names.
        assert body[0].args == (X, Y)

    def test_step_resolution_grows_body(self):
        q = parse_query("q(X,Y) :- t(X,Y).")
        results = list(ido_resolvents(q, tc_step()))
        assert len(results) == 1
        body = results[0].query.atoms
        assert sorted(a.predicate for a in body) == ["e", "t"]

    def test_unsound_step_blocked(self):
        # The paper's example: q(X) ← r(X,Y), s(Y) with P(x') → ∃y' R(x',y').
        q = parse_query("q(X) :- r(X,Y), s(Y).")
        xp, yp = Variable("xp"), Variable("yp")
        tgd = TGD((Atom("p", (xp,)),), (Atom("r", (xp, yp)),))
        assert list(resolvents(q, tgd)) == []
        assert list(ido_resolvents(q, tgd)) == []

    def test_ido_rejects_output_merging(self):
        # Unifying two output variables is not identity-on-outputs.
        q = parse_query("q(X,Y) :- t(X,X), t(X,Y).")
        u, v = Variable("u"), Variable("v")
        tgd = TGD((Atom("e", (u, v)),), (Atom("t", (u, u)),))
        # resolving t(X,Y) with head t(u,u) forces X = Y: not IDO.
        for resolvent in ido_resolvents(q, tgd):
            assert resolvent.query.output == q.output
            # the unifier never renamed an output into another output
            for atom in resolvent.query.atoms:
                pass  # structural check: outputs unchanged
        non_ido = list(resolvents(q, tgd))
        ido = list(ido_resolvents(q, tgd))
        assert len(non_ido) >= len(ido)

    def test_resolvent_body_is_set(self):
        # Duplicate atoms collapse (CQ bodies are sets).
        q = parse_query("q(X) :- t(X,X).")
        u = Variable("u")
        tgd = TGD((Atom("e", (u, u)),), (Atom("t", (u, u)),))
        results = list(ido_resolvents(q, tgd))
        assert len(results) == 1
        assert results[0].query.atoms == (Atom("e", (X, X)),)

    def test_constants_survive_resolution(self):
        q = parse_query("q(Y) :- t(a, Y).")
        results = list(ido_resolvents(q, tc_base()))
        assert results[0].query.atoms[0].args[0] == a

    def test_unfolding_chain_simulates_paths(self):
        # Repeated resolution unfolds t into e-chains: after two steps a
        # query over t becomes e(X,u), e(u,v), t(v,Y) — up to renaming.
        q = parse_query("q(X,Y) :- t(X,Y).")
        (step1,) = list(ido_resolvents(q, tc_step()))
        two_step = [
            r.query
            for r in ido_resolvents(step1.query, tc_step())
            if sum(1 for at in r.query.atoms if at.predicate == "e") == 2
        ]
        assert two_step
        expected = parse_query("q(X,Y) :- e(X,U), e(U,V), t(V,Y).")
        assert any(
            canonical_form(got.atoms, {X, Y})
            == canonical_form(expected.atoms, {X, Y})
            for got in two_step
        )


class TestMultipleUnifiers:
    def test_multiple_chunks_multiple_resolvents(self):
        q = parse_query("q() :- t(X,Y), t(Y,Z).")
        results = list(ido_resolvents(q, tc_base()))
        # each t-atom alone, plus the two-atom chunk (t(X,Y),t(Y,Z) both
        # unify with head t(u,v) forcing X=Y=Z chain collapse)
        assert len(results) >= 2
