"""Unit tests for stratified negation (the paper's "mild negation")."""

import pytest

from repro.core.terms import Constant
from repro.datalog.negation import (
    NotStratifiableError,
    Rule,
    negation_stratification,
    parse_stratified_program,
    stratified_answers,
    stratified_fixpoint,
)
from repro.lang.parser import parse_atom, parse_query

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


class TestParsing:
    def test_positive_rules_and_facts(self):
        program, database = parse_stratified_program("""
            edge(a, b). edge(b, c).
            reach(X, Y) :- edge(X, Y).
        """)
        assert len(program) == 1
        assert len(database) == 2
        assert not program.has_negation()

    def test_negative_literals(self):
        program, _ = parse_stratified_program("""
            separated(X, Y) :- node(X), node(Y), not edge(X, Y).
        """)
        rule = program.rules[0]
        assert len(rule.positive) == 2
        assert len(rule.negative) == 1
        assert rule.negative[0].predicate == "edge"

    def test_unsafe_existential_negation_rejected(self):
        # "not edge(X, Y)" with Y nowhere positive is the classic
        # safety violation; the supported encoding goes through a
        # has_out(X) :- edge(X, Y) helper.
        with pytest.raises(ValueError, match="unsafe"):
            parse_stratified_program("""
                sink(X) :- node(X), not edge(X, Y).
            """)

    def test_comments_stripped(self):
        program, database = parse_stratified_program("""
            % a comment with not edge(X, Y). inside
            edge(a, b).
        """)
        assert len(program) == 0
        assert len(database) == 1

    def test_missing_period_rejected(self):
        with pytest.raises(ValueError, match="terminating period"):
            parse_stratified_program("edge(a, b)")

    def test_fact_with_variables_rejected(self):
        with pytest.raises(ValueError, match="variables"):
            parse_stratified_program("edge(a, X).")


class TestSafety:
    def test_unsafe_head_variable_rejected(self):
        with pytest.raises(ValueError, match="unsafe"):
            Rule(
                parse_atom("p(X, Y)"),
                (parse_atom("q(X)"),),
            )

    def test_unsafe_negative_variable_rejected(self):
        with pytest.raises(ValueError, match="unsafe"):
            Rule(
                parse_atom("p(X)"),
                (parse_atom("q(X)"),),
                (parse_atom("r(X, Z)"),),
            )

    def test_rule_needs_positive_body(self):
        with pytest.raises(ValueError, match="positive body"):
            Rule(parse_atom("p(a)"), ())


class TestStratification:
    def test_negation_free_is_one_order(self):
        program, _ = parse_stratified_program("""
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- edge(X, Y), reach(Y, Z).
        """)
        strata = negation_stratification(program)
        assert sum(len(layer) for layer in strata) == 2

    def test_negation_below_recursion_allowed(self):
        program, _ = parse_stratified_program("""
            reach(X, Y)     :- edge(X, Y).
            reach(X, Z)     :- edge(X, Y), reach(Y, Z).
            separated(X, Y) :- node(X), node(Y), not reach(X, Y).
        """)
        strata = negation_stratification(program)
        # `separated` must evaluate after the `reach` component.
        last = strata[-1]
        assert any(rule.head.predicate == "separated" for rule in last)

    def test_win_move_rejected(self):
        program, _ = parse_stratified_program("""
            win(X) :- move(X, Y), not win(Y).
        """)
        with pytest.raises(NotStratifiableError, match="win"):
            negation_stratification(program)

    def test_mutual_negation_rejected(self):
        program, _ = parse_stratified_program("""
            p(X) :- base(X), not q(X).
            q(X) :- base(X), not p(X).
        """)
        with pytest.raises(NotStratifiableError):
            negation_stratification(program)


class TestEvaluation:
    def test_complement_of_reachability(self):
        program, database = parse_stratified_program("""
            node(a). node(b). node(c).
            edge(a, b). edge(b, c).
            reach(X, Y)     :- edge(X, Y).
            reach(X, Z)     :- edge(X, Y), reach(Y, Z).
            separated(X, Y) :- node(X), node(Y), not reach(X, Y).
        """)
        query = parse_query("q(X, Y) :- separated(X, Y).")
        answers = stratified_answers(query, database, program)
        # Pairs with NO path, including reflexive ones (no self-loops).
        assert (b, a) in answers
        assert (c, a) in answers
        assert (a, a) in answers
        assert (a, b) not in answers
        assert (a, c) not in answers
        assert len(answers) == 6

    def test_sinks(self):
        program, database = parse_stratified_program("""
            node(a). node(b). node(c).
            edge(a, b). edge(b, c).
            has_out(X) :- edge(X, Y).
            sink(X)    :- node(X), not has_out(X).
        """)
        query = parse_query("q(X) :- sink(X).")
        assert stratified_answers(query, database, program) == {(c,)}

    def test_negation_free_matches_seminaive(self):
        from repro.datalog.seminaive import datalog_answers
        from repro.lang.parser import parse_program

        text = """
            edge(a, b). edge(b, c). edge(c, a).
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- edge(X, Y), reach(Y, Z).
        """
        strat_program, strat_db = parse_stratified_program(text)
        plain_program, plain_db = parse_program(text)
        query = parse_query("q(X, Y) :- reach(X, Y).")
        assert stratified_answers(query, strat_db, strat_program) == \
            datalog_answers(query, plain_db, plain_program)

    def test_double_negation_through_strata(self):
        program, database = parse_stratified_program("""
            node(a). node(b).
            edge(a, b).
            has_out(X)  :- edge(X, Y).
            sink(X)     :- node(X), not has_out(X).
            source(X)   :- node(X), not sink(X).
        """)
        query = parse_query("q(X) :- source(X).")
        assert stratified_answers(query, database, program) == {(a,)}

    def test_fixpoint_statistics(self):
        program, database = parse_stratified_program("""
            node(a). node(b).
            edge(a, b).
            has_out(X) :- edge(X, Y).
            sink(X)    :- node(X), not has_out(X).
        """)
        result = stratified_fixpoint(database, program)
        assert result.derived == 2    # has_out(a), sink(b)
        assert result.strata >= 2


class TestOwl2QLWithNegation:
    """The paper's key property (2): OWL 2 QL entailment + mild negation."""

    def test_classes_without_instances(self):
        program, database = parse_stratified_program("""
            class(person). class(robot).
            subClass(employee, person). class(employee).
            type(alice, employee).

            subClassStar(X, Y) :- subClass(X, Y).
            subClassStar(X, Z) :- subClassStar(X, Y), subClass(Y, Z).
            type(X, Z)         :- type(X, Y), subClassStar(Y, Z).

            inhabited(C) :- type(X, C).
            empty(C)     :- class(C), not inhabited(C).
        """)
        query = parse_query("q(C) :- empty(C).")
        answers = stratified_answers(query, database, program)
        assert answers == {(Constant("robot"),)}
