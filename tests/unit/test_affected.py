"""Unit tests for affected positions (Section 3)."""

from repro.analysis.affected import (
    affected_positions,
    all_positions,
    nonaffected_positions,
)
from repro.core.atoms import Position
from repro.lang.parser import parse_program


def affected_of(text: str):
    program, _ = parse_program(text)
    return affected_positions(program)


class TestBaseCase:
    def test_existential_position_is_affected(self):
        aff = affected_of("r(X, Z) :- p(X).")
        assert Position("r", 2) in aff
        assert Position("r", 1) not in aff
        assert Position("p", 1) not in aff

    def test_full_program_has_no_affected_positions(self):
        aff = affected_of("""
            t(X, Y) :- e(X, Y).
            t(X, Z) :- t(X, Y), e(Y, Z).
        """)
        assert aff == set()


class TestPropagation:
    def test_null_propagation_cycle(self):
        # The paper's core example: P(x) → ∃z R(x,z); R(x,y) → P(y).
        aff = affected_of("""
            r(X, Z) :- p(X).
            p(Y) :- r(X, Y).
        """)
        # z lands in r[2]; y read from r[2] only → p[1] affected;
        # x read from p[1] only → r[1] affected.
        assert aff == {Position("r", 1), Position("r", 2), Position("p", 1)}

    def test_harmless_occurrence_blocks_propagation(self):
        # y also occurs at a non-affected position (s[1]), so it is
        # harmless and p[1] stays unaffected.
        aff = affected_of("""
            r(X, Z) :- p(X).
            p(Y) :- r(X, Y), s(Y).
        """)
        assert Position("p", 1) not in aff
        assert aff == {Position("r", 2)}

    def test_example_33_affected_positions(self):
        from repro.benchsuite.dbpedia import example_33_program

        aff = affected_positions(example_33_program())
        # The paper: frontier variables at Type[1], Triple[1], Triple[3]
        # are dangerous — those positions (where nulls can appear) are
        # affected; class/property positions are not.
        assert Position("triple", 3) in aff
        assert Position("triple", 1) in aff
        assert Position("type", 1) in aff
        assert Position("type", 2) not in aff
        assert Position("triple", 2) not in aff
        assert Position("subClassStar", 1) not in aff


class TestHelpers:
    def test_all_positions(self):
        program, _ = parse_program("r(X, Z) :- p(X).")
        assert all_positions(program) == {
            Position("p", 1), Position("r", 1), Position("r", 2)
        }

    def test_nonaffected_complement(self):
        program, _ = parse_program("r(X, Z) :- p(X).")
        assert nonaffected_positions(program) == {Position("p", 1), Position("r", 1)}
