"""Unit tests for the search frontier (best-first vs BFS orders)."""

import pytest

from repro.core.atoms import Atom
from repro.core.terms import Variable
from repro.reasoning.state import Frontier, State

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def state_of_width(width: int) -> State:
    atoms = tuple(
        Atom(f"p{i}", (Variable(f"V{i}"),)) for i in range(width)
    )
    return State.make(atoms)


class TestBestFirst:
    def test_pops_narrowest_first(self):
        frontier = Frontier("bestfirst")
        wide, narrow = state_of_width(3), state_of_width(1)
        frontier.push(wide)
        frontier.push(narrow)
        assert frontier.pop() == narrow
        assert frontier.pop() == wide

    def test_fifo_among_equal_widths(self):
        frontier = Frontier("bestfirst")
        first = State.make((Atom("a", (X,)),))
        second = State.make((Atom("b", (X,)),))
        frontier.push(first)
        frontier.push(second)
        assert frontier.pop() == first
        assert frontier.pop() == second


class TestBFS:
    def test_fifo_regardless_of_width(self):
        frontier = Frontier("bfs")
        wide, narrow = state_of_width(3), state_of_width(1)
        frontier.push(wide)
        frontier.push(narrow)
        assert frontier.pop() == wide
        assert frontier.pop() == narrow


class TestProtocol:
    def test_len_and_bool(self):
        for strategy in Frontier.STRATEGIES:
            frontier = Frontier(strategy)
            assert len(frontier) == 0
            assert not frontier
            frontier.push(state_of_width(1))
            assert len(frontier) == 1
            assert frontier
            frontier.pop()
            assert not frontier

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            Frontier("dfs")
