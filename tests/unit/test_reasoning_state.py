"""Unit tests for search states and the successor generator (Section 4.3)."""

import pytest

from repro.core.atoms import Atom
from repro.core.terms import Constant, Variable
from repro.lang.parser import parse_program
from repro.reasoning.state import SearchStats, State, SuccessorGenerator

X, Y = Variable("X"), Variable("Y")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def setup_tc():
    program, database = parse_program("""
        e(a,b). e(b,c).
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    return program.single_head(), database


class TestState:
    def test_eager_drop_of_database_facts(self):
        _, database = setup_tc()
        state = State.make((Atom("e", (a, b)), Atom("t", (a, c))), database)
        assert all(atom.predicate == "t" for atom in state.atoms)

    def test_ground_non_fact_kept(self):
        _, database = setup_tc()
        state = State.make((Atom("e", (a, c)),), database)  # not in D
        assert state.width() == 1

    def test_accepting_state(self):
        _, database = setup_tc()
        state = State.make((Atom("e", (a, b)),), database)
        assert state.is_accepting()

    def test_canonical_identity(self):
        s1 = State.make((Atom("t", (X, Y)),))
        s2 = State.make((Atom("t", (Variable("P"), Variable("Q"))),))
        assert s1 == s2
        assert hash(s1) == hash(s2)


class TestSuccessorGenerator:
    def test_requires_single_head(self):
        program, database = parse_program("r(X,K), s(K) :- p(X).")
        with pytest.raises(ValueError, match="single-head"):
            SuccessorGenerator(database, program, 4)

    def test_resolution_successors(self):
        program, database = setup_tc()
        gen = SuccessorGenerator(database, program, width_bound=4)
        state = State.make((Atom("t", (a, c)),), database)
        successors = list(gen.resolutions(state))
        # base: {e(a,c)} (ground, not in D → kept); step: {e(a,u), t(u,c)}
        assert len(successors) == 2

    def test_width_bound_rejects(self):
        program, database = setup_tc()
        stats = SearchStats()
        gen = SuccessorGenerator(database, program, width_bound=1, stats=stats)
        state = State.make((Atom("t", (a, c)),), database)
        successors = list(gen.resolutions(state))
        assert len(successors) == 1  # only the base-rule resolvent fits
        assert stats.width_rejections == 1

    def test_guided_specialization_binds_via_database(self):
        program, database = setup_tc()
        gen = SuccessorGenerator(database, program, 4, specialization="guided")
        state = State.make((Atom("e", (a, X)),), database)
        successors = list(gen.specializations(state))
        # e(a, X) matches only e(a,b) → X:=b → atom drops → accepting
        assert len(successors) == 1
        assert successors[0].is_accepting()

    def test_exhaustive_specialization_covers_domain(self):
        program, database = setup_tc()
        gen = SuccessorGenerator(database, program, 4, specialization="exhaustive")
        state = State.make((Atom("t", (X, X)),), database)
        successors = set(gen.specializations(state))
        # X → a | b | c
        assert len(successors) == 3

    def test_dead_state_detection(self):
        program, database = setup_tc()
        gen = SuccessorGenerator(database, program, 4)
        # e(c, X): c has no outgoing edge; e is extensional → dead.
        dead = State.make((Atom("e", (c, X)),), database)
        assert gen.is_dead(dead)
        # t(c, X): no chase atom t(c, ·) exists, so the star-abstraction
        # oracle proves this state dead as well.
        assert gen.is_dead(State.make((Atom("t", (c, X)),), database))

    def test_dead_state_detection_without_oracle(self):
        program, database = setup_tc()
        weak = SuccessorGenerator(database, program, 4, use_oracle=False)
        # The weak check still kills unmatched extensional atoms ...
        assert weak.is_dead(State.make((Atom("e", (c, X)),), database))
        # ... but keeps intensional atoms alive: t could be derived.
        assert not weak.is_dead(State.make((Atom("t", (c, X)),), database))

    def test_successors_filter_dead(self):
        program, database = setup_tc()
        gen = SuccessorGenerator(database, program, 4)
        # resolving t(c,a) gives e(c,a) (dead) and e(c,u), t(u,a) (dead)
        state = State.make((Atom("t", (c, a)),), database)
        assert list(gen.successors(state)) == []

    def test_stats_accumulate(self):
        program, database = setup_tc()
        stats = SearchStats()
        gen = SuccessorGenerator(database, program, 4, stats=stats)
        state = State.make((Atom("t", (a, c)),), database)
        list(gen.successors(state))
        assert stats.expanded == 1
        assert stats.resolution_steps >= 2
