"""Unit tests for the elimination of unnecessary non-linear recursion."""

from repro.analysis.linearization import find_composition_pattern, linearize
from repro.analysis.piecewise import is_piecewise_linear
from repro.chase.runner import chase
from repro.lang.parser import parse_program, parse_query


def program_of(text: str):
    program, _ = parse_program(text)
    return program


class TestPatternDetection:
    def test_tc_doubling_detected(self):
        program = program_of("t(X,Z) :- t(X,Y), t(Y,Z).")
        pattern = find_composition_pattern(program[0])
        assert pattern is not None
        left, right, split = pattern
        assert split == 1

    def test_wide_composition_detected(self):
        # Arity-4 with a 2/2 split: T(a,b,m,n), T(m,n,c,d) → T(a,b,c,d).
        program = program_of("t(A,B,C,D) :- t(A,B,M,N), t(M,N,C,D).")
        pattern = find_composition_pattern(program[0])
        assert pattern is not None
        assert pattern[2] == 2

    def test_non_composition_rejected(self):
        # Shared first argument is not the chain shape.
        program = program_of("t(X,Z) :- t(X,Y), t(X,Z).")
        assert find_composition_pattern(program[0]) is None

    def test_different_head_predicate_rejected(self):
        program = program_of("s(X,Z) :- t(X,Y), t(Y,Z).")
        assert find_composition_pattern(program[0]) is None

    def test_repeated_head_variable_rejected(self):
        program = program_of("t(X,X) :- t(X,Y), t(Y,X).")
        assert find_composition_pattern(program[0]) is None


class TestLinearize:
    def test_paper_example(self):
        # E(x,y) → T(x,y); T(x,y), T(y,z) → T(x,z)  becomes linear.
        program = program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        assert not is_piecewise_linear(program)
        result = linearize(program)
        assert result.changed
        assert result.piecewise_linear
        assert is_piecewise_linear(result.program)

    def test_semantics_preserved(self):
        text_facts = "e(a,b). e(b,c). e(c,d). e(d,e)."
        program, database = parse_program(text_facts + """
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        result = linearize(program)
        query = parse_query("q(X,Y) :- t(X,Y).")
        original = chase(database, program).evaluate(query)
        rewritten = chase(database, result.program).evaluate(query)
        assert original == rewritten
        assert len(original) == 10  # all ordered pairs on the 5-chain

    def test_already_pwl_untouched(self):
        program = program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        result = linearize(program)
        assert not result.changed
        assert result.piecewise_linear

    def test_without_base_rule_not_linearizable(self):
        program = program_of("t(X,Z) :- t(X,Y), t(Y,Z).")
        result = linearize(program)
        assert not result.changed
        assert not result.piecewise_linear

    def test_existential_base_blocks_unfolding(self):
        # The base rule invents the second component; unfolding through
        # it would change null sharing, so the procedure must refuse.
        program = program_of("""
            t(X,K) :- p(X).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        result = linearize(program)
        assert not result.piecewise_linear

    def test_multiple_base_rules_unfold_to_multiple_rules(self):
        program = program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Y) :- f(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        result = linearize(program)
        assert result.piecewise_linear
        # the doubling rule is replaced by one rule per base rule
        step_rules = [r for r in result.program if len(r.body) == 2]
        assert len(step_rules) == 2

    def test_non_pwl_beyond_pattern_reported(self):
        program = program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), s(Y,Z).
            s(X,Z) :- t(X,Y), t(Y,Z).
        """)
        result = linearize(program)
        assert not result.piecewise_linear
