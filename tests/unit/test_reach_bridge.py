"""Unit tests for the reasoning ⇝ reachability bridge."""

import pytest

from repro.core.terms import Constant
from repro.lang.parser import parse_program, parse_query
from repro.reachability import (
    DFSReachability,
    TwoHopIndex,
    configuration_graph,
    data_graph,
)
from repro.reachability.bridge import ACCEPT
from repro.reasoning import decide_pwl_ward

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


def tc_setup():
    program, database = parse_program("""
        e(a,b). e(b,c). e(c,d).
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    query = parse_query("q(X,Y) :- t(X,Y).")
    return program, database, query


class TestDataGraph:
    def test_binary_predicate_extracted(self):
        _, database, _ = tc_setup()
        g = data_graph(database, "e")
        assert len(g) == 4
        assert g.edge_count == 3
        assert b in g.successors(a)

    def test_missing_predicate_gives_empty_graph(self):
        _, database, _ = tc_setup()
        assert len(data_graph(database, "nope")) == 0


class TestConfigurationGraph:
    def test_contains_accept_node(self):
        program, database, query = tc_setup()
        cfg = configuration_graph(query, database, program, width_bound=3)
        assert ACCEPT in cfg.graph
        assert cfg.accept is ACCEPT

    def test_every_candidate_has_a_source(self):
        program, database, query = tc_setup()
        cfg = configuration_graph(query, database, program, width_bound=3)
        assert len(cfg.source_of) == 16  # 4 constants, arity 2

    def test_certainty_matches_engine(self):
        program, database, query = tc_setup()
        cfg = configuration_graph(query, database, program, width_bound=3)
        index = TwoHopIndex(cfg.graph)
        for x in (a, b, c, d):
            for y in (a, b, c, d):
                expected = decide_pwl_ward(
                    query, (x, y), database, program
                ).accepted
                assert cfg.certain((x, y), index) == expected, (x, y)

    def test_certainty_with_dfs_baseline(self):
        program, database, query = tc_setup()
        cfg = configuration_graph(query, database, program, width_bound=3)
        index = DFSReachability(cfg.graph)
        assert cfg.certain((a, d), index)
        assert not cfg.certain((d, a), index)

    def test_unknown_tuple_is_not_certain(self):
        program, database, query = tc_setup()
        cfg = configuration_graph(
            query, database, program, width_bound=3, answers=[(a, d)]
        )
        index = DFSReachability(cfg.graph)
        assert cfg.certain((a, d), index)
        assert not cfg.certain((d, a), index)  # not a materialized source

    def test_explicit_answers_restrict_sources(self):
        program, database, query = tc_setup()
        cfg = configuration_graph(
            query, database, program, width_bound=3,
            answers=[(a, b), (a, d)],
        )
        assert set(cfg.source_of) == {(a, b), (a, d)}

    def test_max_states_truncates(self):
        program, database, query = tc_setup()
        cfg = configuration_graph(
            query, database, program, width_bound=3, max_states=2
        )
        assert cfg.truncated

    def test_membership_enforced(self):
        program, database = parse_program("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        with pytest.raises(ValueError, match="piece-wise linear"):
            configuration_graph(query, database, program)

    def test_cyclic_data(self):
        program, database = parse_program("""
            e(a,b). e(b,a).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        cfg = configuration_graph(query, database, program, width_bound=3)
        index = TwoHopIndex(cfg.graph)
        assert cfg.certain((a, a), index)
        assert cfg.certain((b, b), index)
        assert cfg.certain((a, b), index)


class TestExistentials:
    def test_bridge_handles_value_invention(self):
        program, database = parse_program("""
            p(c). p(d).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        query = parse_query("q(X) :- r(X,Y).")
        cfg = configuration_graph(query, database, program, width_bound=4)
        index = TwoHopIndex(cfg.graph)
        for constant in (c, d):
            expected = decide_pwl_ward(
                query, (constant,), database, program
            ).accepted
            assert cfg.certain((constant,), index) == expected
