"""Unit tests for query decomposition (Definition 4.4)."""

from repro.core.atoms import Atom
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.lang.parser import parse_query
from repro.prooftree.decomposition import (
    connected_components,
    decompose,
    is_decomposition,
    restrict_output,
)

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


class TestComponents:
    def test_shared_non_output_variable_links(self):
        q = parse_query("q() :- r(X,Y), s(Y,Z).")
        components = connected_components(q.atoms, set())
        assert len(components) == 1

    def test_output_variable_does_not_link(self):
        q = parse_query("q(X) :- r(X,Y), t(X,Z).")
        components = connected_components(q.atoms, {X})
        assert len(components) == 2

    def test_ground_atoms_are_singletons(self):
        a = Constant("a")
        atoms = (Atom("r", (a, a)), Atom("s", (a,)))
        components = connected_components(atoms, set())
        assert len(components) == 2

    def test_transitive_linking(self):
        q = parse_query("q() :- r(X,Y), s(Y,Z), t(Z,W).")
        assert len(connected_components(q.atoms, set())) == 1

    def test_duplicate_atoms_merged(self):
        atoms = (Atom("r", (X,)), Atom("r", (X,)))
        components = connected_components(atoms, set())
        assert len(components) == 1
        assert len(components[0]) == 1


class TestDecompose:
    def test_outputs_restricted_in_order(self):
        q = parse_query("q(X, W) :- r(X,Y), s(W).")
        children = decompose(q)
        by_pred = {c.atoms[0].predicate: c for c in children}
        assert by_pred["r"].output == (X,)
        assert by_pred["s"].output == (W,)

    def test_single_component_decomposes_to_itself(self):
        q = parse_query("q(X) :- r(X,Y), s(Y).")
        children = decompose(q)
        assert len(children) == 1
        assert set(children[0].atoms) == set(q.atoms)


class TestIsDecomposition:
    def test_valid_decomposition_accepted(self):
        q = parse_query("q(X) :- r(X,Y), t(X,Z).")
        assert is_decomposition(q, decompose(q))

    def test_atoms_must_be_covered(self):
        q = parse_query("q(X) :- r(X,Y), t(X,Z).")
        children = decompose(q)
        assert not is_decomposition(q, children[:1])

    def test_split_of_non_output_variable_rejected(self):
        q = parse_query("q() :- r(X,Y), s(Y).")
        bad = [
            ConjunctiveQuery((), (q.atoms[0],)),
            ConjunctiveQuery((), (q.atoms[1],)),
        ]
        assert not is_decomposition(q, bad)

    def test_overlapping_decomposition_accepted(self):
        # Definition 4.4 requires covering, not partitioning.
        q = parse_query("q(X) :- r(X,Y), t(X,Z).")
        children = decompose(q)
        overlapping = children + [children[0]]
        assert is_decomposition(q, overlapping)

    def test_wrong_output_restriction_rejected(self):
        q = parse_query("q(X) :- r(X,Y), t(X,Z).")
        r_atom, t_atom = q.atoms
        bad = [
            ConjunctiveQuery((), (r_atom,)),  # should carry output X
            ConjunctiveQuery((X,), (t_atom,)),
        ]
        assert not is_decomposition(q, bad)

    def test_restrict_output_keeps_order_and_duplicates(self):
        q = parse_query("q(X, Y) :- r(X,Y).")
        assert restrict_output((X, Y, X), q.atoms) == (X, Y, X)
        assert restrict_output((Y,), (Atom("s", (X,)),)) == ()
