"""Unit tests for the Section 5 tiling machinery."""

import pytest

from repro.tiling.reduction import (
    build_reduction,
    reduction_class_profile,
    reduction_holds_within,
    tiling_program,
    tiling_query,
)
from repro.tiling.solver import enumerate_rows, find_tiling, has_tiling_within
from repro.tiling.system import TilingSystem, is_valid_tiling


def simple_solvable() -> TilingSystem:
    return TilingSystem.make(
        tiles={"a", "b", "r"},
        left={"a", "b"},
        right={"r"},
        horizontal={("a", "r"), ("b", "r")},
        vertical={("a", "b"), ("r", "r"), ("a", "a"), ("b", "b")},
        start="a",
        finish="b",
    )


def simple_unsolvable() -> TilingSystem:
    return TilingSystem.make(
        tiles={"a", "b", "r"},
        left={"a", "b"},
        right={"r"},
        horizontal={("a", "r"), ("b", "r")},
        vertical={("a", "a"), ("r", "r")},
        start="a",
        finish="b",
    )


class TestTilingSystem:
    def test_left_right_disjoint(self):
        with pytest.raises(ValueError, match="disjoint"):
            TilingSystem.make(
                tiles={"a"}, left={"a"}, right={"a"},
                horizontal=set(), vertical=set(), start="a", finish="a",
            )

    def test_unknown_tiles_rejected(self):
        with pytest.raises(ValueError, match="not declared"):
            TilingSystem.make(
                tiles={"a"}, left=set(), right={"z"},
                horizontal=set(), vertical=set(), start="a", finish="a",
            )

    def test_is_valid_tiling(self):
        system = simple_solvable()
        assert is_valid_tiling(system, [("a", "r"), ("b", "r")])
        # wrong finish tile
        assert not is_valid_tiling(system, [("a", "r"), ("a", "r")])
        # horizontal violation
        assert not is_valid_tiling(system, [("a", "a")])
        # ragged rows
        assert not is_valid_tiling(system, [("a", "r"), ("b",)])


class TestSolver:
    def test_enumerate_rows(self):
        system = simple_solvable()
        rows = list(enumerate_rows(system, 2, ["a"]))
        assert rows == [("a", "r")]

    def test_find_tiling_solvable(self):
        tiling = find_tiling(simple_solvable(), 3, 3)
        assert tiling is not None
        assert is_valid_tiling(simple_solvable(), tiling)

    def test_find_tiling_unsolvable(self):
        assert find_tiling(simple_unsolvable(), 3, 4) is None

    def test_single_row_tiling_when_start_is_finish(self):
        system = TilingSystem.make(
            tiles={"a", "r"}, left={"a"}, right={"r"},
            horizontal={("a", "r")}, vertical=set(), start="a", finish="a",
        )
        tiling = find_tiling(system, 2, 1)
        assert tiling == [("a", "r")]


class TestReduction:
    def test_class_profile(self):
        # Theorem 5.1: Σ ∈ PWL and Σ ∉ WARD.
        pwl, warded = reduction_class_profile()
        assert pwl and not warded

    def test_program_and_query_fixed(self):
        # Σ and q do not depend on the tiling system.
        assert len(tiling_program()) == 6
        assert tiling_query().is_boolean()

    def test_database_encodes_system(self):
        system = simple_solvable()
        reduction = build_reduction(system)
        predicates = reduction.database.predicates()
        assert predicates == {
            "tile", "le", "right", "h", "v", "start", "finish"
        }

    def test_agreement_on_solvable(self):
        red, direct = reduction_holds_within(simple_solvable(), 3, 3)
        assert red is True and direct is True

    def test_agreement_on_unsolvable(self):
        red, direct = reduction_holds_within(simple_unsolvable(), 3, 4)
        assert red is False and direct is False

    def test_wider_tiling_needs_wider_bound(self):
        # A system whose only tiling is 3 wide: a → m → r rows.
        system = TilingSystem.make(
            tiles={"a", "b", "m", "r"},
            left={"a", "b"},
            right={"r"},
            horizontal={("a", "m"), ("b", "m"), ("m", "r")},
            vertical={("a", "b"), ("m", "m"), ("r", "r")},
            start="a",
            finish="b",
        )
        red, direct = reduction_holds_within(system, 3, 2)
        assert red is True and direct is True
        # with insufficient width budget the solver finds nothing
        assert not has_tiling_within(system, 2, 2)
