"""Unit tests for the WARD AND-OR search (Theorem 4.9 / Prop. 3.2)."""

import pytest

from repro.core.terms import Constant
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.ward import decide_ward

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


def doubling_setup():
    program, database = parse_program("""
        e(a,b). e(b,c). e(c,d).
        t(X,Y) :- e(X,Y).
        t(X,Z) :- t(X,Y), t(Y,Z).
    """)
    query = parse_query("q(X,Y) :- t(X,Y).")
    return program, database, query


class TestDoublingTC:
    def test_positive(self):
        program, database, query = doubling_setup()
        assert decide_ward(query, (a, d), database, program).accepted

    def test_negative(self):
        program, database, query = doubling_setup()
        assert not decide_ward(query, (c, a), database, program).accepted

    def test_matches_pwl_engine_on_pwl_input(self):
        # On a WARD ∩ PWL program both engines must agree.
        from repro.reasoning.pwl_ward import decide_pwl_ward

        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        for answer in [(a, b), (a, c), (c, a)]:
            assert (
                decide_ward(query, answer, database, program).accepted
                == decide_pwl_ward(query, answer, database, program).accepted
            )


class TestExistentialWard:
    def test_boolean_join(self):
        program, database = parse_program("""
            p(c).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        query = parse_query("q() :- r(X,Y), p(Y).")
        assert decide_ward(query, (), database, program).accepted

    def test_example_33_type_inference(self):
        # OWL 2 QL style: restriction + inverse roundtrip infers a type.
        program, database = parse_program("""
            type(alice, student).
            restriction(student, enrolledIn).
            inverse(enrolledIn, enrolls).
            restriction(uni, enrolls).

            subClassStar(X, Y) :- subClass(X, Y).
            subClassStar(X, Z) :- subClassStar(X, Y), subClass(Y, Z).
            type(X, Z)         :- type(X, Y), subClassStar(Y, Z).
            triple(X, Z, W)    :- type(X, Y), restriction(Y, Z).
            triple(Z, W, X)    :- triple(X, Y, Z), inverse(Y, W).
            type(X, W)         :- triple(X, Y, Z), restriction(W, Y).
        """)
        # alice: enrolledIn some w; w enrolls alice... the inverse triple
        # (w, enrolls, alice) does NOT make w of type uni (restriction
        # uni/enrolls needs triple(w, enrolls, _)) — but it does:
        # triple(z, enrolls, alice) with restriction(uni, enrolls) gives
        # type(z, uni) for the invented z.  Over constants, the certain
        # fact is the original one:
        query = parse_query("q() :- type(alice, student).")
        assert decide_ward(query, (), database, program).accepted
        # and the invented object is typed: ∃w type(w, uni)
        query2 = parse_query("q() :- type(W, uni).")
        assert decide_ward(query2, (), database, program).accepted
        # but no constant is of type uni
        query3 = parse_query("q(X) :- type(X, uni).")
        assert not decide_ward(
            query3, (Constant("alice"),), database, program
        ).accepted


class TestDecomposition:
    def test_cross_product_query(self):
        # Two independent components must both be provable (AND move).
        program, database = parse_program("""
            e(a,b). f(c,d).
            t(X,Y) :- e(X,Y).
            u(X,Y) :- f(X,Y).
        """)
        query = parse_query("q() :- t(X,Y), u(Z,W).")
        assert decide_ward(query, (), database, program).accepted

    def test_cross_product_one_side_fails(self):
        program, database = parse_program("""
            e(a,b).
            t(X,Y) :- e(X,Y).
            u(X,Y) :- f(X,Y).
        """)
        query = parse_query("q() :- t(X,Y), u(Z,W).")
        assert not decide_ward(query, (), database, program).accepted


class TestGuards:
    def test_membership_checked(self):
        from repro.tiling.reduction import tiling_program

        program = tiling_program()
        _, database = parse_program("tile(t1).")
        query = parse_query("q(X) :- tile(X).")
        with pytest.raises(ValueError, match="not warded"):
            decide_ward(query, (Constant("t1"),), database, program)

    def test_max_states_cap_reports_not_exhausted(self):
        # Without the oracle the doubling search must be cut by the cap.
        program, database, query = doubling_setup()
        decision = decide_ward(
            query, (d, a), database, program, max_states=5, use_oracle=False
        )
        assert not decision.accepted
        assert not decision.exhausted

    def test_oracle_settles_unreachable_before_cap(self):
        # With the star-abstraction oracle the initial state t(d, a) is
        # provably dead, so the same tiny cap is never reached and the
        # "no" answer is definitive.
        program, database, query = doubling_setup()
        decision = decide_ward(
            query, (d, a), database, program, max_states=5
        )
        assert not decision.accepted
        assert decision.exhausted
