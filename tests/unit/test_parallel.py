"""Unit tests for the parallel execution layer (Section 7, future work (1))."""

import pytest

from repro.core.terms import Constant
from repro.lang.parser import parse_program, parse_query
from repro.parallel import (
    greedy_makespan,
    parallel_certain_answers,
    round_work_span,
    speedup_curve,
)
from repro.reasoning import certain_answers

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


class TestGreedyMakespan:
    def test_single_worker_sums(self):
        assert greedy_makespan([3, 1, 2], 1) == 6

    def test_enough_workers_gives_max(self):
        assert greedy_makespan([3, 1, 2], 3) == 3
        assert greedy_makespan([3, 1, 2], 10) == 3

    def test_two_workers_balance(self):
        # LPT: 5 | 4+2 → makespan 6
        assert greedy_makespan([5, 4, 2], 2) == 6

    def test_empty_costs(self):
        assert greedy_makespan([], 4) == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="positive"):
            greedy_makespan([1], 0)


class TestSpeedupCurve:
    def test_monotone_speedup(self):
        costs = [1] * 16
        points = speedup_curve(costs, (1, 2, 4, 8))
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)
        assert points[0].speedup == 1.0
        assert points[-1].speedup == pytest.approx(8.0)

    def test_saturation_at_span(self):
        # One giant task dominates: speedup caps at work / span = 2.
        costs = [10, 5, 5]
        points = speedup_curve(costs, (1, 2, 100))
        assert points[-1].speedup == pytest.approx(2.0)

    def test_efficiency_at_one_worker(self):
        points = speedup_curve([2, 2], (1,))
        assert points[0].efficiency == 1.0


class TestRoundWorkSpan:
    def test_work_and_span(self):
        work, span = round_work_span([[3, 1], [2, 2, 2]])
        assert work == 10
        assert span == 5  # 3 + 2

    def test_empty_rounds_skipped(self):
        work, span = round_work_span([[], [4]])
        assert (work, span) == (4, 4)


def tc_setup():
    program, database = parse_program("""
        e(a,b). e(b,c). e(c,d).
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    query = parse_query("q(X,Y) :- t(X,Y).")
    return program, database, query


class TestParallelCertainAnswers:
    def test_public_hooks_are_exported(self):
        # The executor must not reach into answers-module internals: the
        # probe/candidate split is a public, stable contract.
        from repro.reasoning.answers import candidate_tuples, probe_instance

        program, database, query = tc_setup()
        probe = probe_instance(database, program)
        assert query.evaluate(probe)  # the probe settles the positives

        from repro.reasoning.abstraction import star_abstraction

        abstraction = star_abstraction(database, program.single_head())
        pool = candidate_tuples(query, abstraction)
        assert certain_answers(query, database, program) <= pool

    def test_equals_certain_answers_across_backends(self):
        # parallel_certain_answers ≡ certain_answers, whatever storage
        # backend the sequential facade materializes with.
        from repro.storage import BACKENDS

        program, database, query = tc_setup()
        parallel = parallel_certain_answers(
            query, database, program, workers=3
        )
        for store in BACKENDS:
            for method in ("auto", "pwl", "ward"):
                assert parallel == certain_answers(
                    query, database, program, method=method, store=store
                ), (store, method)

    def test_equals_sequential_facade(self):
        program, database, query = tc_setup()
        sequential = certain_answers(query, database, program, method="pwl")
        for workers in (1, 2, 4):
            parallel = parallel_certain_answers(
                query, database, program, workers=workers
            )
            assert parallel == sequential

    def test_report_profile(self):
        program, database, query = tc_setup()
        report = parallel_certain_answers(
            query, database, program, workers=2, report=True
        )
        assert report.method == "pwl"
        assert report.workers == 2
        assert report.answers == certain_answers(
            query, database, program, method="pwl"
        )
        assert report.total_work >= report.span >= 0

    def test_ward_method_on_non_pwl(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        parallel = parallel_certain_answers(
            query, database, program, workers=3
        )
        assert parallel == {(a, b), (b, c), (a, c)}

    def test_rejects_unwarded(self):
        from repro.tiling.reduction import tiling_program

        program = tiling_program()
        _, database = parse_program("tile(t1).")
        query = parse_query("q(X) :- tile(X).")
        with pytest.raises(ValueError, match="warded"):
            parallel_certain_answers(query, database, program)

    def test_rejects_bad_worker_count(self):
        program, database, query = tc_setup()
        with pytest.raises(ValueError, match="positive"):
            parallel_certain_answers(query, database, program, workers=0)
