"""Unit tests for the magic-set (demand) rewriting and its plan wiring."""

import pytest

from repro.api import REWRITES, Planner, Session, compile_program
from repro.core.terms import Constant
from repro.datalog.seminaive import datalog_answers, seminaive
from repro.lang.parser import parse_program, parse_query
from repro.rewriting import (
    MagicNotApplicable,
    adorn_program,
    binding_pattern,
    magic_rewrite,
    query_constants,
)

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")

TC_SOURCE = """
    e(a,b). e(b,c). e(c,d). e(x,y).
    t(X,Y) :- e(X,Y).
    t(X,Z) :- e(X,Y), t(Y,Z).
"""

STRATIFIED_SOURCE = TC_SOURCE + """
    m(X,Y) :- t(X,Y), t(Y,X).
    r(X) :- t(X,Y).
"""

EXISTENTIAL_SOURCE = """
    p(a).
    r(X,K) :- p(X).
    p(Y) :- r(X,Y).
"""


def _magic_answers(program, database, query):
    """Ground truth helper: run the demand program directly."""
    rewriting = magic_rewrite(program, query)
    seeded = list(database) + list(rewriting.seed)
    return rewriting, seminaive(seeded, rewriting.program).evaluate(
        rewriting.query
    )


class TestRewriteCore:
    @pytest.mark.parametrize(
        "query_text",
        [
            "q(Y) :- t(a,Y).",
            "q(X) :- t(X,d).",
            "q() :- t(a,d).",
            "q() :- t(a,z).",          # empty answer
            "q(X,Y) :- t(X,Y).",       # no bound argument
            "q(Y) :- e(a,X), t(X,Y).",  # EDB prefix binds the demand
            "q(Y,Z) :- t(a,Y), t(Y,Z).",  # chained IDB atoms
            "q(X) :- r(X).",
            "q(Y) :- m(a,Y).",
        ],
    )
    def test_answers_equal_unrewritten(self, query_text):
        program, database = parse_program(STRATIFIED_SOURCE)
        query = parse_query(query_text)
        _, got = _magic_answers(program, database, query)
        assert got == datalog_answers(query, database, program)

    def test_rewritten_program_is_full_single_head(self):
        program, _ = parse_program(TC_SOURCE)
        rewriting = magic_rewrite(program, parse_query("q(Y) :- t(a,Y)."))
        assert rewriting.program.is_full()
        assert rewriting.program.is_single_head()

    def test_seed_facts_are_ground_magic_atoms(self):
        program, _ = parse_program(TC_SOURCE)
        rewriting = magic_rewrite(program, parse_query("q(Y) :- t(a,Y)."))
        assert len(rewriting.seed) == 1
        seed = rewriting.seed[0]
        assert seed.is_ground()
        assert seed.predicate in rewriting.adorned.magic_predicates
        assert seed.args == (a,)

    def test_demand_skips_irrelevant_facts(self):
        """The headline: a point query derives a fraction of the TC."""
        program, database = parse_program(TC_SOURCE)
        query = parse_query("q(Y) :- t(x,Y).")  # the 2-node component
        rewriting, got = _magic_answers(program, database, query)
        assert got == datalog_answers(query, database, program)
        seeded = list(database) + list(rewriting.seed)
        demand = seminaive(seeded, rewriting.program)
        full = seminaive(database, program)
        assert demand.derived < full.derived

    def test_asserted_idb_facts_flow_through_copy_rules(self):
        program, database = parse_program(
            "e(a,b). t(c,d).\n" + "t(X,Y) :- e(X,Y).\n"
            "t(X,Z) :- e(X,Y), t(Y,Z)."
        )
        query = parse_query("q(Y) :- t(c,Y).")
        _, got = _magic_answers(program, database, query)
        assert got == datalog_answers(query, database, program) == {(d,)}

    def test_constants_in_rule_bodies_and_heads(self):
        program, database = parse_program(
            "e(a,b). e(b,c).\n"
            "t(X,Y) :- e(X,Y).\n"
            "t(a,Y) :- t(b,Y)."
        )
        for query_text in ("q(Y) :- t(a,Y).", "q(Y) :- t(b,Y)."):
            query = parse_query(query_text)
            _, got = _magic_answers(program, database, query)
            assert got == datalog_answers(query, database, program)

    def test_repeated_variable_in_query(self):
        program, database = parse_program(
            "e(a,a). e(a,b).\n" + "t(X,Y) :- e(X,Y)."
        )
        query = parse_query("q(X) :- t(X,X), t(a,X).")
        _, got = _magic_answers(program, database, query)
        assert got == datalog_answers(query, database, program) == {(a,)}

    def test_existential_program_rejected(self):
        program, _ = parse_program(EXISTENTIAL_SOURCE)
        with pytest.raises(MagicNotApplicable, match="full"):
            magic_rewrite(program, parse_query("q(Y) :- r(a,Y)."))

    def test_multi_head_program_normalized_first(self):
        program, database = parse_program("e(a,b).\n")
        from repro.core.atoms import Atom
        from repro.core.program import Program
        from repro.core.tgd import TGD
        from repro.core.terms import Variable

        X, Y = Variable("X"), Variable("Y")
        multi = Program(
            [TGD((Atom("e", (X, Y)),), (Atom("t", (X, Y)), Atom("s", (Y,))))]
        )
        query = parse_query("q(Y) :- t(a,Y).")
        rewriting = magic_rewrite(multi, query)
        seeded = list(database) + list(rewriting.seed)
        got = seminaive(seeded, rewriting.program).evaluate(rewriting.query)
        assert got == {(b,)}


class TestBindingPattern:
    def test_constant_identity_abstracted(self):
        p1 = binding_pattern(parse_query("q(Y) :- t(a,Y)."))
        p2 = binding_pattern(parse_query("q(Y) :- t(b,Y)."))
        assert p1 == p2

    def test_constant_placement_matters(self):
        p1 = binding_pattern(parse_query("q(Y) :- t(a,Y)."))
        p2 = binding_pattern(parse_query("q(Y) :- t(Y,a)."))
        assert p1 != p2

    def test_repeated_constant_shares_placeholder(self):
        p1 = binding_pattern(parse_query("q() :- t(a,a)."))
        p2 = binding_pattern(parse_query("q() :- t(a,b)."))
        assert p1 != p2

    def test_query_constants_first_occurrence_order(self):
        query = parse_query("q(X) :- t(b,X), t(a,b).")
        assert query_constants(query) == (Constant("b"), Constant("a"))

    def test_instantiate_rejects_other_pattern(self):
        program, _ = parse_program(TC_SOURCE)
        adorned = adorn_program(program, parse_query("q(Y) :- t(a,Y)."))
        with pytest.raises(ValueError, match="binding pattern"):
            adorned.instantiate(parse_query("q(Y) :- t(Y,a)."))

    def test_instantiate_shared_across_constants(self):
        program, database = parse_program(TC_SOURCE)
        adorned = adorn_program(program, parse_query("q(Y) :- t(a,Y)."))
        for constant, expected in ((a, {(b,), (c,), (d,)}),
                                   (b, {(c,), (d,)})):
            query = parse_query(f"q(Y) :- t({constant.value},Y).")
            rewriting = adorned.instantiate(query)
            seeded = list(database) + list(rewriting.seed)
            got = seminaive(seeded, rewriting.program).evaluate(
                rewriting.query
            )
            assert got == expected


class TestPlannerRewriteDimension:
    def plan_for(self, source, query_text, **kwargs):
        program, _ = parse_program(source)
        return Planner().plan(
            compile_program(program), parse_query(query_text), **kwargs
        )

    def test_auto_applies_on_bound_full_query(self):
        plan = self.plan_for(TC_SOURCE, "q(Y) :- t(a,Y).")
        assert plan.rewrite == "magic"
        assert plan.rewriting is not None
        assert not plan.maintainable
        assert "demand-specific" in plan.maintenance

    def test_auto_skips_unbound_query(self):
        plan = self.plan_for(TC_SOURCE, "q(X,Y) :- t(X,Y).")
        assert plan.rewrite == "none"
        assert "no bound argument" in plan.rewrite_note

    def test_auto_skips_existential_program(self):
        plan = self.plan_for(EXISTENTIAL_SOURCE, "q(Y) :- r(a,Y).")
        assert plan.rewrite == "none"

    def test_none_disables(self):
        plan = self.plan_for(TC_SOURCE, "q(Y) :- t(a,Y).", rewrite="none")
        assert plan.rewrite == "none"
        assert plan.rewriting is None

    def test_magic_forced_without_bound_argument(self):
        plan = self.plan_for(TC_SOURCE, "q(X,Y) :- t(X,Y).", rewrite="magic")
        assert plan.rewrite == "magic"
        # The plan must not claim a restriction that is not happening.
        assert "(forced)" in plan.rewrite_note
        assert not any("restricts evaluation" in r for r in plan.reasons)
        assert any("does not restrict" in r for r in plan.reasons)

    def test_magic_forced_on_existential_program_rejected(self):
        with pytest.raises(ValueError, match="full"):
            self.plan_for(
                EXISTENTIAL_SOURCE, "q(Y) :- r(a,Y).", rewrite="magic"
            )

    def test_magic_forced_on_non_datalog_engine_rejected(self):
        with pytest.raises(ValueError, match="datalog"):
            self.plan_for(
                TC_SOURCE, "q(Y) :- t(a,Y).", rewrite="magic", method="chase"
            )

    def test_unknown_rewrite_rejected(self):
        with pytest.raises(ValueError, match="unknown rewrite"):
            self.plan_for(TC_SOURCE, "q(Y) :- t(a,Y).", rewrite="bogus")

    def test_explain_has_rewrite_line(self):
        plan = self.plan_for(TC_SOURCE, "q(Y) :- t(a,Y).")
        text = plan.explain()
        assert "rewrite : magic — " in text
        unbound = self.plan_for(TC_SOURCE, "q(X,Y) :- t(X,Y).")
        assert "rewrite : none (" in unbound.explain()

    def test_rewrites_registry(self):
        assert REWRITES == ("auto", "magic", "none")


class TestSessionIntegration:
    def test_answers_equal_across_rewrite_modes(self):
        session = Session()
        session.load(STRATIFIED_SOURCE)
        for query_text in ("q(Y) :- t(a,Y).", "q(Y) :- m(a,Y).",
                           "q() :- t(a,d)."):
            auto = session.query(query_text).to_set()
            off = session.query(query_text, rewrite="none").to_set()
            assert auto == off, query_text

    def test_adorned_program_cached_per_pattern(self):
        session = Session()
        session.load(TC_SOURCE)
        session.query("q(Y) :- t(a,Y).").to_set()
        session.query("q(Y) :- t(b,Y).").to_set()
        assert len(session._adorned) == 1
        session.query("q(X) :- t(X,d).").to_set()
        assert len(session._adorned) == 2

    def test_magic_fixpoint_cached_per_seed(self):
        session = Session()
        session.load(TC_SOURCE)
        first = session.query("q(Y) :- t(a,Y).")
        first.to_set()
        assert not first.stats.from_cache
        again = session.query("q(Y) :- t(a,Y).")
        again.to_set()
        assert again.stats.from_cache
        other = session.query("q(Y) :- t(b,Y).")
        assert other.to_set() == frozenset({(c,), (d,)})
        assert not other.stats.from_cache  # different seed, own entry

    def test_apply_falls_back_for_magic_fixpoints(self):
        session = Session()
        session.load(TC_SOURCE)
        session.query("q(Y) :- t(a,Y).").to_set()
        _, extra = parse_program("e(d,e).")
        report = session.apply(extra)
        assert any(
            "demand-specific" in reason for _, reason in report.fallbacks
        )
        stream = session.query("q(Y) :- t(a,Y).")
        assert stream.to_set() == frozenset(
            {(b,), (c,), (d,), (Constant("e"),)}
        )
        assert not stream.stats.from_cache  # recomputed, not maintained

    def test_apply_keeps_maintaining_unrewritten_fixpoints(self):
        session = Session()
        session.load(TC_SOURCE)
        session.query("q(X,Y) :- t(X,Y).").to_set()
        session.query("q(Y) :- t(a,Y).").to_set()
        _, extra = parse_program("e(d,e).")
        report = session.apply(extra)
        assert report.maintained  # the full fixpoint was upgraded
        assert report.fallbacks   # the magic one fell back, recorded
        stream = session.query("q(X,Y) :- t(X,Y).")
        stream.to_set()
        assert stream.stats.from_cache

    def test_seed_constants_with_equal_str_do_not_collide(self):
        """Regression: the fixpoint-cache token used to stringify seed
        constants, so Constant(1) and Constant("1") collided and one
        query's demand fixpoint answered the other query."""
        from repro.core.atoms import Atom
        from repro.core.program import Program
        from repro.core.query import ConjunctiveQuery
        from repro.core.tgd import TGD
        from repro.core.terms import Variable

        X, Y = Variable("X"), Variable("Y")
        program = Program([TGD((Atom("e", (X, Y)),), (Atom("t", (X, Y)),))])
        session = Session()
        session.compile(program)
        session.add_facts(
            [
                Atom("e", (Constant(1), Constant("one"))),
                Atom("e", (Constant("1"), Constant("uno"))),
            ]
        )
        int_query = ConjunctiveQuery((Y,), (Atom("t", (Constant(1), Y)),))
        str_query = ConjunctiveQuery((Y,), (Atom("t", (Constant("1"), Y)),))
        assert set(session.query(int_query).to_set()) == {
            (Constant("one"),)
        }
        assert set(session.query(str_query).to_set()) == {
            (Constant("uno"),)
        }

    def test_auto_declines_when_constants_bind_no_idb(self):
        """A constant that never reaches an intensional predicate gives
        an all-free demand — strictly more work than no rewriting, so
        ``auto`` declines (and says why); forcing magic still works."""
        session = Session()
        session.load(TC_SOURCE)
        # W is dead: the constant binds only the EDB atom, t stays ff.
        query = "q(X,Y) :- e(a,W), t(X,Y)."
        plan = session.plan(query)
        assert plan.rewrite == "none"
        assert "all-free" in plan.rewrite_note
        auto = session.query(query).to_set()
        forced = session.query(query, rewrite="magic")
        assert forced.to_set() == auto
        assert forced.stats.rewrite == "magic"
        # When the EDB prefix *feeds* the recursion, auto stays on.
        assert session.plan("q(Y) :- e(a,X), t(X,Y).").rewrite == "magic"

    def test_adorned_program_cache_is_bounded(self):
        session = Session()
        session.load("e(a,b).\nt(X,Y) :- e(X,Y).")
        # Binding patterns abstract constant *identity* but keep
        # variable names, so each differently-named output variable is
        # a distinct pattern.
        for i in range(Session._ADORNED_CACHE_LIMIT + 8):
            session.plan(f"q(V{i}) :- t(a,V{i}).")
        assert len(session._adorned) == Session._ADORNED_CACHE_LIMIT

    def test_magic_fixpoint_cache_is_bounded(self):
        session = Session()
        facts = " ".join(f"e(n{i},m{i})." for i in range(40))
        session.load(facts + "\nt(X,Y) :- e(X,Y).")
        for i in range(40):
            session.query(f"q(Y) :- t(n{i},Y).").to_set()
        magic_entries = [
            entry
            for entry in session._fixpoints.values()
            if entry.rewrite == "magic"
        ]
        assert len(magic_entries) == Session._MAGIC_FIXPOINT_LIMIT
        # The most recent point query is still served from cache.
        stream = session.query("q(Y) :- t(n39,Y).")
        stream.to_set()
        assert stream.stats.from_cache

    def test_store_backends_agree(self):
        expected = None
        for backend in ("instance", "columnar", "delta"):
            session = Session(store=backend)
            session.load(STRATIFIED_SOURCE)
            got = set(session.query("q(Y) :- t(a,Y).").to_set())
            if expected is None:
                expected = got
            assert got == expected, backend


class TestCLI:
    def run_cli(self, tmp_path, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def write_program(self, tmp_path):
        path = tmp_path / "tc.vada"
        path.write_text(TC_SOURCE)
        return path

    def test_answer_rewrite_flag(self, tmp_path):
        path = self.write_program(tmp_path)
        code, text = self.run_cli(
            tmp_path, "answer", str(path),
            "--query", "q(Y) :- t(a,Y).", "--explain",
        )
        assert code == 0
        assert "rewrite : magic — " in text
        assert "-- 3 certain answer(s)" in text
        code, text = self.run_cli(
            tmp_path, "answer", str(path),
            "--query", "q(Y) :- t(a,Y).", "--explain", "--rewrite", "none",
        )
        assert code == 0
        assert "rewrite : none (disabled by the caller)" in text
        assert "-- 3 certain answer(s)" in text

    def test_query_rewrite_flag(self, tmp_path):
        path = self.write_program(tmp_path)
        code, text = self.run_cli(
            tmp_path, "query", str(path),
            "--query", "q(Y) :- t(a,Y).", "--rewrite", "magic",
        )
        assert code == 0
        assert "-- 3 certain answer(s)" in text

    def test_update_maintains_bound_query_fixpoints(self, tmp_path):
        """Regression: the ``update`` subcommand's warm queries must
        cache a *maintainable* fixpoint (rewrite defaults to none
        there), so deltas are upgraded in place — not dropped via the
        magic fallback and recomputed."""
        import io

        from repro.cli import main

        path = self.write_program(tmp_path)
        out = io.StringIO()
        code = main(
            ["update", str(path), "--query", "q(Y) :- t(a,Y)."],
            out=out,
            stdin=io.StringIO("+e(d,z).\n"),
        )
        text = out.getvalue()
        assert code == 0
        assert "maintained" in text
        assert "fallback" not in text
        assert "(z)" in text
