"""Unit tests for :mod:`repro.workloads` — the trace replay harness."""

import math

import pytest

from repro.server import ReasoningServer, ReasoningService
from repro.workloads import (
    MIXES,
    OP_KINDS,
    TRACE_SCHEMA,
    ClientTarget,
    LatencyHistogram,
    ServiceTarget,
    SessionTarget,
    Trace,
    TraceError,
    TraceOp,
    ZipfianSampler,
    generate_trace,
    materialize_scenario,
    replay_trace,
)

SMALL = dict(vertices=16, edges=32, clusters=2)


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.p50 == 0.0
        assert hist.summary()["count"] == 0

    def test_single_sample_is_every_percentile(self):
        hist = LatencyHistogram.of([0.25])
        assert hist.p50 == hist.p99 == 0.25
        assert hist.min == hist.max == 0.25

    def test_percentiles_bracket_the_samples(self):
        samples = [i / 1000 for i in range(1, 1001)]  # 1ms .. 1s
        hist = LatencyHistogram.of(samples)
        assert hist.count == 1000
        # Log buckets at 2^(1/8) growth: ≤ ~9% relative error.
        assert hist.p50 == pytest.approx(0.5, rel=0.1)
        assert hist.p99 == pytest.approx(0.99, rel=0.1)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(1.0)
        assert hist.mean == pytest.approx(sum(samples) / 1000, rel=0.1)

    def test_percentiles_clamped_to_observed_range(self):
        hist = LatencyHistogram.of([0.010, 0.011, 0.012])
        assert hist.min <= hist.p50 <= hist.max
        assert hist.min <= hist.p99 <= hist.max

    def test_sub_resolution_and_negative_samples(self):
        hist = LatencyHistogram.of([0.0, -1.0, 1e-9])
        assert hist.count == 3
        assert hist.min == 0.0

    def test_merge(self):
        left = LatencyHistogram.of([0.001] * 50)
        right = LatencyHistogram.of([0.1] * 50)
        left.merge(right)
        assert left.count == 100
        assert left.p50 == pytest.approx(0.001, rel=0.1)
        assert left.p99 == pytest.approx(0.1, rel=0.1)

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(base=1e-3))

    def test_throughput(self):
        hist = LatencyHistogram.of([0.01] * 200)
        assert hist.throughput(4.0) == pytest.approx(50.0)
        assert hist.throughput(0.0) == 0.0


class TestZipfianSampler:
    def test_same_seed_same_stream(self):
        keys = [f"k{i}" for i in range(50)]
        a = ZipfianSampler(keys, s=1.2, seed=7)
        b = ZipfianSampler(keys, s=1.2, seed=7)
        assert [a.sample() for _ in range(200)] == [
            b.sample() for _ in range(200)
        ]

    def test_rank_one_dominates(self):
        keys = [f"k{i}" for i in range(100)]
        sampler = ZipfianSampler(keys, s=1.3, seed=11)
        draws = [sampler.sample() for _ in range(3000)]
        top = draws.count("k0") / len(draws)
        expected = sampler.expected_mass(1)
        # 3000 draws: binomial σ ≈ sqrt(p(1-p)/n) < 0.01; 5σ slack.
        assert abs(top - expected) < 5 * math.sqrt(
            expected * (1 - expected) / 3000
        )

    def test_zero_skew_is_uniform_mass(self):
        sampler = ZipfianSampler(["a", "b", "c", "d"], s=0.0, seed=1)
        assert sampler.expected_mass(1) == pytest.approx(0.25)
        assert sampler.expected_mass(4) == pytest.approx(0.25)

    def test_rejects_empty_keys_and_negative_skew(self):
        with pytest.raises(ValueError):
            ZipfianSampler([], seed=1)
        with pytest.raises(ValueError):
            ZipfianSampler(["a"], s=-1.0, seed=1)


class TestTraceSchema:
    def test_round_trip_identity(self):
        trace = generate_trace(ops=40, seed=3, **SMALL)
        assert Trace.loads(trace.dumps()) == trace

    def test_dump_load_file(self, tmp_path):
        trace = generate_trace(ops=25, seed=3, **SMALL)
        path = tmp_path / "t.ndjson"
        trace.dump(path)
        assert Trace.load(path) == trace

    def test_header_carries_schema(self):
        trace = generate_trace(ops=5, seed=3, **SMALL)
        first_line = trace.dumps().splitlines()[0]
        assert TRACE_SCHEMA in first_line

    def test_rejects_unknown_schema(self):
        trace = generate_trace(ops=5, seed=3, **SMALL)
        lines = trace.dumps().splitlines()
        lines[0] = lines[0].replace("repro/trace/v1", "repro/trace/v999")
        with pytest.raises(TraceError):
            Trace.loads("\n".join(lines))

    def test_rejects_out_of_order_ops(self):
        trace = generate_trace(ops=5, seed=3, **SMALL)
        lines = trace.dumps().splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        with pytest.raises(TraceError):
            Trace.loads("\n".join(lines))

    def test_rejects_unknown_fields_and_kinds(self):
        with pytest.raises(TraceError):
            TraceOp.from_record(
                {"index": 0, "at": 0.0, "kind": "query", "query": "q.",
                 "bogus": 1}
            )
        with pytest.raises(TraceError):
            TraceOp.from_record({"index": 0, "at": 0.0, "kind": "delete"})

    def test_update_requires_changes_query_requires_query(self):
        with pytest.raises(TraceError):
            TraceOp.from_record({"index": 0, "at": 0.0, "kind": "update"})
        with pytest.raises(TraceError):
            TraceOp.from_record({"index": 0, "at": 0.0, "kind": "query"})

    def test_validate_catches_unparseable_ops(self):
        bad = Trace(
            ops=(
                TraceOp(index=0, at=0.0, kind="query", query="not a query"),
            ),
            meta={"schema": TRACE_SCHEMA},
        )
        with pytest.raises(TraceError):
            bad.validate()

    def test_summary(self):
        trace = generate_trace(ops=60, seed=3, **SMALL)
        summary = trace.summary()
        assert summary["ops"] == 60
        assert set(summary["kinds"]) <= set(OP_KINDS)
        assert summary["distinct_keys"] >= 1
        assert summary["top_keys"][0]["count"] >= summary["top_keys"][-1][
            "count"
        ]


class TestGenerate:
    def test_same_seed_byte_identical(self):
        a = generate_trace(ops=120, seed=9, **SMALL)
        b = generate_trace(ops=120, seed=9, **SMALL)
        assert a.dumps() == b.dumps()

    def test_different_seed_differs(self):
        a = generate_trace(ops=120, seed=9, **SMALL)
        b = generate_trace(ops=120, seed=10, **SMALL)
        assert a.dumps() != b.dumps()

    def test_mix_fractions_roughly_honoured(self):
        trace = generate_trace(ops=600, mix="churn", seed=5, **SMALL)
        kinds = trace.summary()["kinds"]
        assert kinds["update"] / 600 == pytest.approx(
            MIXES["churn"]["update"], abs=0.1
        )

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_trace(ops=0, **SMALL)
        with pytest.raises(ValueError):
            generate_trace(ops=5, mix="write-only", **SMALL)
        with pytest.raises(ValueError):
            generate_trace(ops=5, family="dbpedia", **SMALL)

    def test_updates_always_effective(self):
        # Stateful generation: every retract hits a live edge, every
        # insert an absent one — so replay admits every batch and the
        # trace-order → version mapping stays exact.
        from repro.incremental import ChangeSet

        trace = generate_trace(ops=200, mix="churn", seed=13, **SMALL)
        scenario = materialize_scenario(trace)
        state = {
            (str(a.args[0]), str(a.args[1]))
            for a in scenario.database
            if a.predicate == "e"
        }
        updates = 0
        for op in trace.ops:
            if op.kind != "update":
                continue
            updates += 1
            inserts, retracts = ChangeSet.parse(op.changes).net()
            for atom in retracts:
                pair = (str(atom.args[0]), str(atom.args[1]))
                assert pair in state
                state.discard(pair)
            for atom in inserts:
                pair = (str(atom.args[0]), str(atom.args[1]))
                assert pair not in state
                state.add(pair)
        assert updates > 0

    def test_materialize_requires_generator_record(self):
        trace = generate_trace(ops=5, seed=3, **SMALL)
        stripped = Trace(
            ops=trace.ops,
            meta={"schema": TRACE_SCHEMA},
        )
        with pytest.raises(TraceError):
            materialize_scenario(stripped)


class TestReplay:
    def test_session_target_verifies(self):
        trace = generate_trace(ops=60, mix="churn", seed=21, **SMALL)
        scenario = materialize_scenario(trace)
        result = replay_trace(
            trace, SessionTarget.for_scenario(scenario), workers=2
        )
        assert result.ok, (result.mismatches, result.errors)
        assert result.ops_run == 60
        assert result.verified > 0
        assert result.latency["all"].count == 60

    def test_service_target_concurrent(self):
        trace = generate_trace(ops=60, mix="churn", seed=22, **SMALL)
        result = replay_trace(
            trace,
            ServiceTarget.for_scenario(materialize_scenario(trace)),
            workers=4,
        )
        assert result.ok, (result.mismatches, result.errors)
        assert result.mode == "closed"
        assert result.throughput > 0

    def test_open_loop_records_lateness(self):
        trace = generate_trace(ops=30, seed=23, rate=500.0, **SMALL)
        result = replay_trace(
            trace,
            ServiceTarget.for_scenario(materialize_scenario(trace)),
            workers=2,
            rate="trace",
        )
        assert result.ok
        assert result.mode == "open"
        assert result.lateness.count == 30

    def test_open_loop_numeric_rate(self):
        trace = generate_trace(ops=20, seed=24, **SMALL)
        result = replay_trace(
            trace,
            ServiceTarget.for_scenario(materialize_scenario(trace)),
            workers=2,
            rate=1000.0,
        )
        assert result.ok
        assert result.rate == 1000.0

    def test_server_target_over_sockets(self):
        trace = generate_trace(ops=40, mix="churn", seed=25, **SMALL)
        scenario = materialize_scenario(trace)
        service = ReasoningService(
            scenario.program, facts=scenario.database
        )
        server = ReasoningServer(service, port=0)
        host, port = server.address
        server.serve_in_thread()
        target = ClientTarget(host, port)
        try:
            result = replay_trace(trace, target, workers=3)
        finally:
            target.close()
            server.shutdown_async()
            server.close()
        assert result.ok, (result.mismatches, result.errors)
        assert result.target == "server"

    def test_no_verify_skips_ground_truth(self):
        trace = generate_trace(ops=20, seed=26, **SMALL)
        result = replay_trace(
            trace,
            ServiceTarget.for_scenario(materialize_scenario(trace)),
            verify=False,
        )
        assert result.ok
        assert result.verified == 0

    def test_detects_wrong_answers(self):
        # A target that lies about one answer must be caught.
        trace = generate_trace(ops=30, seed=27, **SMALL)
        scenario = materialize_scenario(trace)
        inner = ServiceTarget.for_scenario(scenario)

        class LyingTarget:
            name = "liar"

            def worker(self):
                return self

            def baseline_version(self):
                return inner.baseline_version()

            def query(self, text):
                answers, version = inner.query(text)
                return answers + (("bogus",),), version

            def update(self, changes):
                return inner.update(changes)

            def close(self):
                pass

        result = replay_trace(trace, LyingTarget())
        assert not result.ok
        assert result.mismatches

    def test_rejects_bad_arguments(self):
        trace = generate_trace(ops=5, seed=3, **SMALL)
        target = ServiceTarget.for_scenario(materialize_scenario(trace))
        with pytest.raises(ValueError):
            replay_trace(trace, target, workers=0)
        with pytest.raises(ValueError):
            replay_trace(trace, target, rate=-5)
        with pytest.raises(ValueError):
            replay_trace(trace, target, rate="yesterday")

    def test_result_serializes(self):
        trace = generate_trace(ops=15, seed=28, **SMALL)
        result = replay_trace(
            trace,
            ServiceTarget.for_scenario(materialize_scenario(trace)),
        )
        payload = result.as_dict()
        assert payload["ok"] is True
        assert payload["ops_run"] == 15
        assert "all" in payload["latency"]
        assert "p99_ms" in payload["latency"]["all"]
        assert "ops/s" in result.describe()
