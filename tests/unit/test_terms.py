"""Unit tests for the term model (constants, variables, nulls)."""


from repro.core.terms import (
    Constant,
    Null,
    NullFactory,
    Variable,
    is_constant,
    is_null,
    is_variable,
)


class TestConstant:
    def test_equality_is_structural(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_int_and_string_payloads_differ(self):
        assert Constant(1) != Constant("1")

    def test_hashable_and_usable_in_sets(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_str(self):
        assert str(Constant("abc")) == "abc"
        assert str(Constant(7)) == "7"


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_variable_never_equals_constant(self):
        assert Variable("a") != Constant("a")

    def test_str(self):
        assert str(Variable("X")) == "X"


class TestNull:
    def test_equality_ignores_depth(self):
        assert Null(3, depth=0) == Null(3, depth=5)
        assert hash(Null(3, depth=0)) == hash(Null(3, depth=5))

    def test_distinct_labels_differ(self):
        assert Null(1) != Null(2)

    def test_null_never_equals_constant_or_variable(self):
        assert Null(1) != Constant(1)
        assert Null(1) != Variable("1")


class TestNullFactory:
    def test_fresh_nulls_are_distinct(self):
        factory = NullFactory()
        nulls = [factory.fresh() for _ in range(100)]
        assert len(set(nulls)) == 100

    def test_depth_is_recorded(self):
        factory = NullFactory()
        assert factory.fresh(depth=4).depth == 4

    def test_start_offset(self):
        factory = NullFactory(start=10)
        assert factory.fresh().label == 10


class TestPredicates:
    def test_kind_predicates(self):
        assert is_constant(Constant("a"))
        assert not is_constant(Variable("a"))
        assert is_variable(Variable("X"))
        assert not is_variable(Null(0))
        assert is_null(Null(0))
        assert not is_null(Constant(0))
