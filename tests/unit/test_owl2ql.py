"""Unit tests for the OWL 2 QL application layer (Section 3)."""

import pytest

from repro.analysis import is_piecewise_linear, is_warded
from repro.core.terms import Constant
from repro.owl2ql import (
    BGPQuery,
    Ontology,
    TriplePattern,
    Var,
    answer_bgp,
    encode,
    entailment_rules,
)

alice, bob, carol = Constant("alice"), Constant("bob"), Constant("carol")


def org_ontology() -> Ontology:
    return (
        Ontology("org")
        .subclass("manager", "employee")
        .subclass("employee", "person")
        .subproperty("manages", "worksWith")
        .inverse("manages", "managedBy")
        .domain("manages", "manager")
        .range("manages", "employee")
        .some_values("employee", "hasContract")
        .member("alice", "manager")
        .related("alice", "manages", "bob")
    )


class TestOntologyBuilder:
    def test_fluent_api_accumulates(self):
        onto = org_ontology()
        assert onto.axiom_count() == 7
        assert "person" in onto.classes()
        assert "managedBy" in onto.properties()
        assert onto.individuals() == {"alice", "bob"}

    def test_vocabulary_from_all_axiom_shapes(self):
        onto = Ontology().domain("p", "c").range("q", "d")
        assert onto.classes() == {"c", "d"}
        assert onto.properties() == {"p", "q"}


class TestEncoding:
    def test_rules_are_warded_pwl(self):
        program = entailment_rules()
        assert is_warded(program)
        assert is_piecewise_linear(program)

    def test_rules_are_ontology_independent(self):
        first = encode(org_ontology())
        second = encode(Ontology())
        assert len(first.program) == len(second.program)

    def test_inverse_stored_both_ways(self):
        encoded = encode(Ontology().inverse("p", "q"))
        inv_facts = list(encoded.database.with_predicate("inv"))
        assert len(inv_facts) == 2

    def test_abox_lands_in_type_and_triple(self):
        encoded = encode(
            Ontology().member("a", "c").related("a", "p", "b")
        )
        assert len(list(encoded.database.with_predicate("type"))) == 1
        assert len(list(encoded.database.with_predicate("triple"))) == 1


class TestEntailment:
    def setup_method(self):
        self.encoded = encode(org_ontology())

    def _ask(self, *patterns, select):
        query = BGPQuery.make(select, patterns)
        return answer_bgp(query, self.encoded)

    def test_subclass_chain(self):
        answers = self._ask(
            TriplePattern(Var("x"), "type", "person"), select=[Var("x")]
        )
        assert answers == {(alice,), (bob,)}

    def test_range_inference(self):
        answers = self._ask(
            TriplePattern(Var("x"), "type", "employee"), select=[Var("x")]
        )
        # alice via manager ⊑ employee; bob via range(manages).
        assert answers == {(alice,), (bob,)}

    def test_domain_inference(self):
        answers = self._ask(
            TriplePattern(Var("x"), "type", "manager"), select=[Var("x")]
        )
        assert answers == {(alice,)}

    def test_subproperty_closure(self):
        answers = self._ask(
            TriplePattern(Var("x"), "worksWith", Var("y")),
            select=[Var("x"), Var("y")],
        )
        assert answers == {(alice, bob)}

    def test_inverse_property(self):
        answers = self._ask(
            TriplePattern(Var("x"), "managedBy", "alice"), select=[Var("x")]
        )
        assert answers == {(bob,)}

    def test_value_invention_is_not_an_answer(self):
        # employee ⊑ ∃hasContract invents a contract object; the
        # invented null must never surface as a certain answer.
        answers = self._ask(
            TriplePattern(Var("x"), "hasContract", Var("y")),
            select=[Var("y")],
        )
        assert answers == set()

    def test_value_invention_supports_boolean_patterns(self):
        # ... but its existence is certain (Boolean projection).
        answers = self._ask(
            TriplePattern("bob", "hasContract", Var("y")), select=[]
        )
        assert answers == {()}

    def test_join_across_patterns(self):
        answers = self._ask(
            TriplePattern(Var("x"), "manages", Var("y")),
            TriplePattern(Var("y"), "type", "person"),
            select=[Var("x")],
        )
        assert answers == {(alice,)}


class TestBGPValidation:
    def test_empty_bgp_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BGPQuery.make([Var("x")], []).to_cq()

    def test_unbound_select_rejected(self):
        query = BGPQuery.make(
            [Var("z")], [TriplePattern(Var("x"), "type", "c")]
        )
        with pytest.raises(ValueError, match="not bound"):
            query.to_cq()

    def test_type_patterns_compile_to_type_atoms(self):
        cq = BGPQuery.make(
            [Var("x")], [TriplePattern(Var("x"), "type", "c")]
        ).to_cq()
        assert cq.atoms[0].predicate == "type"

    def test_property_patterns_compile_to_triple_atoms(self):
        cq = BGPQuery.make(
            [Var("x")], [TriplePattern(Var("x"), "p", "b")]
        ).to_cq()
        assert cq.atoms[0].predicate == "triple"
        assert cq.atoms[0].args[1] == Constant("p")


class TestCrossEngine:
    def test_chase_and_pwl_agree_on_bgp(self):
        encoded = encode(org_ontology())
        query = BGPQuery.make(
            [Var("x")], [TriplePattern(Var("x"), "type", "person")]
        )
        via_pwl = answer_bgp(query, encoded, method="pwl")
        via_ward = answer_bgp(query, encoded, method="ward")
        assert via_pwl == via_ward == {(alice,), (bob,)}
