"""Unit tests for substitutions (identity on constants, composition)."""

import pytest

from repro.core.atoms import Atom
from repro.core.substitution import Substitution
from repro.core.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


class TestConstruction:
    def test_identity_on_constants_enforced(self):
        with pytest.raises(ValueError, match="identity on constants"):
            Substitution({a: b})

    def test_constant_mapped_to_itself_allowed(self):
        assert len(Substitution({a: a})) == 0

    def test_trivial_bindings_dropped(self):
        assert len(Substitution({X: X})) == 0


class TestApplication:
    def test_apply_term_outside_domain_is_identity(self):
        subst = Substitution({X: a})
        assert subst.apply_term(Y) == Y
        assert subst.apply_term(b) == b

    def test_apply_atom(self):
        subst = Substitution({X: a, Y: Z})
        assert subst.apply_atom(Atom("r", (X, Y, b))) == Atom("r", (a, Z, b))

    def test_apply_atoms_preserves_order(self):
        subst = Substitution({X: a})
        atoms = (Atom("r", (X,)), Atom("s", (X,)))
        assert subst.apply_atoms(atoms) == (Atom("r", (a,)), Atom("s", (a,)))


class TestAlgebra:
    def test_composition_order(self):
        f = Substitution({X: Y})
        g = Substitution({Y: a})
        assert (g @ f).apply_term(X) == a       # g(f(X)) = g(Y) = a
        assert (f @ g).apply_term(X) == Y       # f(g(X)) = f(X) = Y

    def test_composition_keeps_outer_bindings(self):
        f = Substitution({X: Y})
        g = Substitution({Z: a})
        assert (g @ f).apply_term(Z) == a

    def test_restrict(self):
        subst = Substitution({X: a, Y: b}).restrict([X])
        assert subst.apply_term(X) == a
        assert subst.apply_term(Y) == Y

    def test_extend_conflict_raises(self):
        subst = Substitution({X: a})
        with pytest.raises(ValueError):
            subst.extend(X, b)

    def test_is_identity_on(self):
        subst = Substitution({X: a})
        assert subst.is_identity_on([Y, Z, b])
        assert not subst.is_identity_on([X])

    def test_equality_and_hash(self):
        assert Substitution({X: a}) == Substitution({X: a})
        assert hash(Substitution({X: a})) == hash(Substitution({X: a}))
