"""Unit tests for the Section 6 expressiveness machinery."""

import pytest

from repro.analysis.piecewise import is_piecewise_linear
from repro.core.atoms import Atom
from repro.core.program import Program
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD
from repro.datalog.seminaive import datalog_answers
from repro.expressiveness.separation import (
    refutes_full_program,
    separation_witness,
)
from repro.expressiveness.translation import (
    proof_tree_rewriting,
    pwl_to_datalog,
    set_partitions,
    ward_to_datalog,
)
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.answers import certain_answers

X = Variable("X")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestSetPartitions:
    def test_counts_are_bell_numbers(self):
        vs = [Variable(n) for n in "xyz"]
        assert len(list(set_partitions(vs[:0]))) == 1
        assert len(list(set_partitions(vs[:1]))) == 1
        assert len(list(set_partitions(vs[:2]))) == 2
        assert len(list(set_partitions(vs[:3]))) == 5

    def test_partitions_cover_all_items(self):
        vs = [Variable(n) for n in "xy"]
        for partition in set_partitions(vs):
            flattened = [v for block in partition for v in block]
            assert sorted(flattened, key=str) == sorted(vs, key=str)


class TestPwlRewriting:
    def test_tc_rewriting_equivalent(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = pwl_to_datalog(query, program, width_bound=3)
        assert rewriting.complete
        assert rewriting.program.is_full()
        assert is_piecewise_linear(rewriting.program)
        rewritten_answers = datalog_answers(
            rewriting.query, database, rewriting.program
        )
        direct = certain_answers(query, database, program, method="pwl")
        assert rewritten_answers == direct

    def test_rewriting_handles_merged_outputs(self):
        # q(x, y) with x = y realized through the root partition π.
        program, database = parse_program("""
            e(a,a). e(a,b).
            t(X,Y) :- e(X,Y).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = pwl_to_datalog(query, program, width_bound=3)
        answers = datalog_answers(rewriting.query, database, rewriting.program)
        assert (a, a) in answers and (a, b) in answers

    def test_existential_program_rewriting_full_db(self):
        program, database = parse_program("""
            p(c). p(d).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        query = parse_query("q(X) :- r(X,Y).")
        rewriting = pwl_to_datalog(
            query, program, width_bound=4, database_schema="full"
        )
        answers = datalog_answers(rewriting.query, database, rewriting.program)
        assert answers == certain_answers(query, database, program, method="pwl")

    def test_membership_enforced(self):
        program, _ = parse_program("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        with pytest.raises(ValueError, match="piece-wise linear"):
            pwl_to_datalog(query, program)

    def test_max_states_reports_incomplete(self):
        program, _ = parse_program("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = pwl_to_datalog(query, program, max_states=2)
        assert not rewriting.complete


class TestWardRewriting:
    def test_doubling_tc_rewriting(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = ward_to_datalog(query, program, width_bound=3)
        assert rewriting.program.is_full()
        answers = datalog_answers(rewriting.query, database, rewriting.program)
        assert answers == {(a, b), (b, c), (a, c)}


class TestSeparation:
    def test_witness_classes(self):
        witness = separation_witness()
        assert witness.program.is_warded()
        assert witness.program.is_piecewise_linear()
        assert not witness.program.is_full()

    def test_witness_semantics(self):
        # Q1(D) ≠ ∅ and Q2(D) = ∅ under the existential program.
        witness = separation_witness()
        assert certain_answers(
            witness.q1, witness.database, witness.program, method="pwl"
        ) == {()}
        assert certain_answers(
            witness.q2, witness.database, witness.program, method="pwl"
        ) == set()

    def test_every_full_candidate_refuted(self):
        x, y = Variable("x"), Variable("y")
        candidates = [
            # P(x) → R(x,x): agrees on q1, wrongly answers q2.
            Program([TGD((Atom("P", (x,)),), (Atom("R", (x, x)),))]),
            # no rules deriving R: fails q1.
            Program([TGD((Atom("P", (x,)),), (Atom("S", (x,)),))]),
            # copy through an intermediate: still forced to reuse c.
            Program([
                TGD((Atom("P", (x,)),), (Atom("S", (x,)),)),
                TGD((Atom("S", (x,)),), (Atom("R", (x, x)),)),
            ]),
        ]
        for candidate in candidates:
            assert refutes_full_program(candidate)

    def test_non_datalog_candidate_rejected(self):
        x, k = Variable("x"), Variable("k")
        existential = Program([TGD((Atom("P", (x,)),), (Atom("R", (x, k)),))])
        with pytest.raises(ValueError, match="full"):
            refutes_full_program(existential)


class TestNonLinearRewritingFlag:
    def test_linear_flag_controls_decomposition_shape(self):
        program, database = parse_program("""
            e(a,b). f(a,c).
            t(X,Y) :- e(X,Y).
            u(X,Y) :- f(X,Y).
        """)
        query = parse_query("q(X) :- t(X,Y), u(X,Z).")
        linear = proof_tree_rewriting(query, program, linear=True, width_bound=3)
        nonlinear = proof_tree_rewriting(query, program, linear=False, width_bound=3)
        for rewriting in (linear, nonlinear):
            answers = datalog_answers(rewriting.query, database, rewriting.program)
            assert answers == {(a,)}
