"""Unit tests for query specialization (Definition 4.5)."""

import pytest

from repro.core.terms import Variable
from repro.lang.parser import parse_query
from repro.prooftree.specialization import (
    enumerate_specializations,
    is_specialization,
    specialize,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestSpecialize:
    def test_promote_appends_outputs(self):
        q = parse_query("q(X) :- r(X,Y), s(Y,Z).")
        special = specialize(q, promote=(Y,))
        assert special.output == (X, Y)
        assert set(special.atoms) == set(q.atoms)

    def test_collapse_onto_output(self):
        q = parse_query("q(X) :- r(X,Y).")
        special = specialize(q, collapse={Y: X})
        assert special.output == (X,)
        assert special.atoms[0].args == (X, X)

    def test_collapse_onto_promoted(self):
        q = parse_query("q(X) :- r(X,Y), s(Y,Z).")
        special = specialize(q, promote=(Y,), collapse={Z: Y})
        assert special.output == (X, Y)
        assert special.atoms[1].args == (Y, Y)

    def test_promote_must_be_non_output(self):
        q = parse_query("q(X) :- r(X,Y).")
        with pytest.raises(ValueError, match="non-output"):
            specialize(q, promote=(X,))

    def test_collapse_source_disjoint_from_promote(self):
        q = parse_query("q(X) :- r(X,Y), s(Y,Z).")
        with pytest.raises(ValueError, match="disjoint"):
            specialize(q, promote=(Y,), collapse={Y: X})

    def test_collapse_target_must_be_output(self):
        q = parse_query("q(X) :- r(X,Y), s(Y,Z).")
        with pytest.raises(ValueError, match="target"):
            specialize(q, collapse={Y: Z})

    def test_identity_specialization(self):
        q = parse_query("q(X) :- r(X,Y).")
        assert specialize(q).output == q.output


class TestEnumerate:
    def test_single_steps(self):
        q = parse_query("q(X) :- r(X,Y).")
        steps = list(enumerate_specializations(q))
        # promote Y, collapse Y→X
        assert len(steps) == 2

    def test_no_non_output_variables(self):
        q = parse_query("q(X,Y) :- r(X,Y).")
        assert list(enumerate_specializations(q)) == []


class TestIsSpecialization:
    def test_promote_detected(self):
        q = parse_query("q(X) :- r(X,Y).")
        assert is_specialization(q, specialize(q, promote=(Y,)))

    def test_collapse_detected(self):
        q = parse_query("q(X) :- r(X,Y).")
        assert is_specialization(q, specialize(q, collapse={Y: X}))

    def test_unrelated_query_rejected(self):
        q = parse_query("q(X) :- r(X,Y).")
        other = parse_query("q(X) :- s(X,Y).")
        assert not is_specialization(q, other)

    def test_changed_outputs_rejected(self):
        q = parse_query("q(X) :- r(X,Y).")
        reordered = parse_query("q(Y) :- r(X,Y).")
        assert not is_specialization(q, reordered)

    def test_composed_specialization_detected(self):
        q = parse_query("q(X) :- r(X,Y), s(Y,Z).")
        special = specialize(q, promote=(Y,), collapse={Z: X})
        assert is_specialization(q, special)
