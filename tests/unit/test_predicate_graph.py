"""Unit tests for the predicate graph and mutual recursion (Section 4)."""


from repro.analysis.predicate_graph import PredicateGraph
from repro.lang.parser import parse_program


def graph_of(text: str) -> PredicateGraph:
    program, _ = parse_program(text)
    return PredicateGraph(program)


class TestEdges:
    def test_edges_from_body_to_head(self):
        g = graph_of("t(X,Y) :- e(X,Y).")
        assert ("e", "t") in g.edges()
        assert ("t", "e") not in g.edges()

    def test_multi_head_edges(self):
        g = graph_of("r(X,K), s(K) :- p(X).")
        assert {("p", "r"), ("p", "s")} <= g.edges()


class TestMutualRecursion:
    def test_self_loop(self):
        g = graph_of("t(X,Z) :- t(X,Y), e(Y,Z).")
        assert g.mutually_recursive("t", "t")
        assert not g.mutually_recursive("e", "t")
        assert not g.mutually_recursive("e", "e")

    def test_no_cycle_no_recursion(self):
        g = graph_of("t(X,Y) :- e(X,Y). u(X) :- t(X,Y).")
        assert not g.mutually_recursive("t", "t")
        assert not g.mutually_recursive("t", "u")
        assert g.rec("t") == frozenset()

    def test_two_predicate_cycle(self):
        g = graph_of("""
            p(Y) :- r(X, Y).
            r(X, Z) :- p(X).
        """)
        assert g.mutually_recursive("p", "r")
        assert g.mutually_recursive("p", "p")
        assert g.rec("p") == frozenset({"p", "r"})

    def test_separate_sccs_not_mutually_recursive(self):
        # Two independent cycles: p/q and s/t.
        g = graph_of("""
            p(X) :- q(X).
            q(X) :- p(X).
            s(X) :- t(X).
            t(X) :- s(X).
        """)
        assert g.mutually_recursive("p", "q")
        assert g.mutually_recursive("s", "t")
        assert not g.mutually_recursive("p", "s")

    def test_example_33_sccs(self):
        # In Example 3.3, Type and Triple are mutually recursive;
        # SubClassStar cycles alone; SubClass is extensional.
        from repro.benchsuite.dbpedia import example_33_program

        g = PredicateGraph(example_33_program())
        assert g.mutually_recursive("type", "triple")
        assert g.mutually_recursive("subClassStar", "subClassStar")
        assert not g.mutually_recursive("subClassStar", "type")
        assert not g.mutually_recursive("subClass", "subClassStar")


class TestStructure:
    def test_has_cycle(self):
        assert graph_of("t(X,Z) :- t(X,Y), e(Y,Z).").has_cycle()
        assert not graph_of("t(X,Y) :- e(X,Y).").has_cycle()

    def test_condensation_order_is_topological(self):
        g = graph_of("""
            t(X,Y) :- e(X,Y).
            u(X)   :- t(X,Y).
            v(X)   :- u(X).
        """)
        order = g.condensation_order()
        position = {next(iter(c)): i for i, c in enumerate(order)}
        assert position["e"] < position["t"] < position["u"] < position["v"]

    def test_successors(self):
        g = graph_of("t(X,Y) :- e(X,Y). u(X) :- e(X,X).")
        assert g.successors("e") == frozenset({"t", "u"})
