"""Unit tests for the pluggable fact-storage subsystem."""

import pytest

from repro.core.atoms import Atom
from repro.core.instance import Database, Instance
from repro.core.terms import Constant, Null, Variable
from repro.chase.runner import chase
from repro.datalog.seminaive import seminaive
from repro.engine.operators import OperatorNetwork
from repro.lang.parser import parse_program, parse_query
from repro.storage import (
    BACKENDS,
    ColumnarStore,
    DeltaOverlay,
    FactStore,
    TermTable,
    deep_sizeof,
    make_store,
)

X, Y = Variable("X"), Variable("Y")
a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


class TestTermTable:
    def test_dense_ids_and_roundtrip(self):
        table = TermTable()
        assert table.intern(a) == 0
        assert table.intern(b) == 1
        assert table.intern(a) == 0  # idempotent
        assert table.term(0) == a and table.term(1) == b
        assert len(table) == 2
        assert a in table and c not in table
        assert table.id_of(c) is None

    def test_null_keeps_depth_bookkeeping(self):
        table = TermTable()
        deep = Null(7, depth=3)
        table.intern(deep)
        assert table.term(table.id_of(Null(7))).depth == 3


class TestColumnarStore:
    def test_add_contains_len_iter(self):
        store = ColumnarStore()
        assert store.add(Atom("r", (a, b)))
        assert not store.add(Atom("r", (a, b)))
        assert Atom("r", (a, b)) in store
        assert Atom("r", (b, a)) not in store
        assert len(store) == 1
        assert set(store) == {Atom("r", (a, b))}

    def test_rejects_non_ground(self):
        with pytest.raises(ValueError, match="ground"):
            ColumnarStore().add(Atom("r", (X,)))

    def test_accepts_nulls(self):
        store = ColumnarStore()
        store.add(Atom("r", (a, Null(0))))
        assert Atom("r", (a, Null(0))) in store
        assert store.nulls() == {Null(0)}

    def test_matching_mirrors_instance(self):
        atoms = [Atom("r", (a, b)), Atom("r", (a, c)), Atom("r", (b, c))]
        store = ColumnarStore(atoms)
        assert len(list(store.matching(Atom("r", (a, X))))) == 2
        assert len(list(store.matching(Atom("r", (X, Y))))) == 3
        assert len(list(store.matching(Atom("r", (X, X))))) == 0
        assert list(store.matching(Atom("missing", (X,)))) == []

    def test_matching_repeated_variable(self):
        store = ColumnarStore([Atom("r", (a, a)), Atom("r", (a, b))])
        assert list(store.matching(Atom("r", (X, X)))) == [Atom("r", (a, a))]

    def test_matching_unknown_constant_is_empty(self):
        store = ColumnarStore([Atom("r", (a, b))])
        assert list(store.matching(Atom("r", (d, X)))) == []

    def test_matching_bound_positions_are_one_based(self):
        store = ColumnarStore([Atom("r", (a, b)), Atom("r", (b, a))])
        assert set(store.matching_bound("r", {1: a})) == {Atom("r", (a, b))}
        assert set(store.matching_bound("r", {2: a})) == {Atom("r", (b, a))}
        assert len(set(store.matching_bound("r", {}))) == 2

    def test_indexes_built_lazily(self):
        store = ColumnarStore([Atom("r", (a, b)), Atom("r", (a, c))])
        assert store.stats["indexes_built"] == 0
        list(store.matching(Atom("r", (a, X))))
        assert store.stats["indexes_built"] == 1
        list(store.matching(Atom("r", (X, c))))
        assert store.stats["indexes_built"] == 2

    def test_probe_cache_hits_and_invalidation(self):
        store = ColumnarStore([Atom("r", (a, b)), Atom("r", (a, c))])
        first = list(store.matching(Atom("r", (a, X))))
        assert store.stats["cache_hits"] == 0
        second = list(store.matching(Atom("r", (a, X))))
        assert store.stats["cache_hits"] == 1
        assert first == second
        # A write changes the relation version: stale entries miss.
        store.add(Atom("r", (a, d)))
        third = set(store.matching(Atom("r", (a, X))))
        assert Atom("r", (a, d)) in third and len(third) == 3

    def test_index_maintained_incrementally_after_build(self):
        store = ColumnarStore([Atom("r", (a, b))])
        list(store.matching(Atom("r", (a, X))))  # builds index on pos 1
        store.add(Atom("r", (a, c)))
        assert set(store.matching(Atom("r", (a, X)))) == {
            Atom("r", (a, b)), Atom("r", (a, c))
        }

    def test_count_and_predicates(self):
        store = ColumnarStore([Atom("r", (a, b)), Atom("r", (b, c)),
                               Atom("s", (a,))])
        assert store.count() == 3
        assert store.count("r") == 2
        assert store.count("missing") == 0
        assert store.predicates() == {"r", "s"}

    def test_mixed_arity_predicate(self):
        store = ColumnarStore([Atom("r", (a,)), Atom("r", (a, b))])
        assert len(store) == 2
        assert set(store.matching(Atom("r", (X,)))) == {Atom("r", (a,))}

    def test_memory_report_components(self):
        store = ColumnarStore([Atom("r", (a, b)), Atom("r", (b, c))])
        report = store.memory_report()
        assert report.backend == "columnar"
        assert report.atom_count == 2
        assert report.term_count == 3
        assert set(report.components) == {
            "columns", "dedup", "indexes", "terms", "probe_cache"
        }
        assert report.total_bytes > 0
        assert report.as_dict()["total_bytes"] == report.total_bytes

    def test_columnar_is_smaller_than_instance_in_bulk(self):
        atoms = [
            Atom("e", (Constant(f"n{i}"), Constant(f"n{i + 1}")))
            for i in range(500)
        ]
        columnar = ColumnarStore(atoms).memory_report().total_bytes
        instance = Instance(atoms).memory_report().total_bytes
        assert columnar < instance

    def test_copy_is_independent(self):
        store = ColumnarStore([Atom("r", (a,))])
        clone = store.copy()
        clone.add(Atom("r", (b,)))
        assert len(store) == 1 and len(clone) == 2


class TestDeltaOverlay:
    def test_layering_and_promote(self):
        overlay = DeltaOverlay(ColumnarStore([Atom("e", (a, b))]))
        assert len(overlay.base) == 1 and len(overlay.delta) == 0
        assert not overlay.add(Atom("e", (a, b)))  # already in base
        assert overlay.add(Atom("t", (a, b)))
        assert len(overlay.delta) == 1 and len(overlay) == 2
        assert overlay.promote() == 1
        assert len(overlay.base) == 2 and len(overlay.delta) == 0
        assert Atom("t", (a, b)) in overlay

    def test_reads_span_both_layers(self):
        overlay = DeltaOverlay(ColumnarStore([Atom("r", (a, b))]))
        overlay.add(Atom("r", (a, c)))
        assert set(overlay.matching(Atom("r", (a, X)))) == {
            Atom("r", (a, b)), Atom("r", (a, c))
        }
        assert set(overlay.by_predicate("r")) == {
            Atom("r", (a, b)), Atom("r", (a, c))
        }
        assert overlay.count("r") == 2
        assert overlay.predicates() == {"r"}

    def test_composes_with_instance_base(self):
        overlay = DeltaOverlay(Instance([Atom("r", (a, b))]))
        overlay.add(Atom("r", (b, c)))
        assert len(overlay) == 2
        assert isinstance(overlay.delta, Instance)

    def test_atom_in_both_layers_counted_once(self):
        # Regression: an atom added to the delta first and to the
        # (mutable) base afterwards used to be reported twice by every
        # read path — the insert-time guard in add() only dedupes while
        # the base stays frozen.
        overlay = DeltaOverlay(ColumnarStore([Atom("r", (a, b))]))
        overlay.add(Atom("r", (b, c)))          # lands in the delta
        overlay.base.add(Atom("r", (b, c)))     # later lands in the base too
        assert len(overlay) == 2
        assert overlay.count() == 2
        assert overlay.count("r") == 2
        assert list(overlay).count(Atom("r", (b, c))) == 1
        assert list(overlay.by_predicate("r")).count(Atom("r", (b, c))) == 1
        assert list(overlay.matching(Atom("r", (X, Y)))).count(
            Atom("r", (b, c))
        ) == 1
        assert list(
            overlay.matching_bound("r", {1: b}, arity=2)
        ).count(Atom("r", (b, c))) == 1
        assert overlay.memory_report().atom_count == 2

    def test_delta_side_backdoor_mutation_recounted(self):
        # Regression: a shadowed atom slipped in through the public
        # .delta property (not overlay.add) must not let a later add()
        # re-validate the stale overlap count — len()/count() would
        # disagree with iteration forever after.
        overlay = DeltaOverlay(ColumnarStore([Atom("r", (a, b))]))
        overlay.delta.add(Atom("r", (a, b)))    # bypasses the add() guard
        overlay.add(Atom("r", (b, c)))
        assert len(overlay) == 2
        assert overlay.count("r") == 2
        assert sorted(map(str, overlay)) == sorted(
            map(str, {Atom("r", (a, b)), Atom("r", (b, c))})
        )

    def test_shadowed_delta_atom_not_double_promoted(self):
        overlay = DeltaOverlay(ColumnarStore())
        overlay.add(Atom("r", (a, b)))
        overlay.base.add(Atom("r", (a, b)))
        assert overlay.promote() == 0           # nothing actually moved
        assert len(overlay) == 1

    def test_memory_report_merges_layers(self):
        overlay = DeltaOverlay(ColumnarStore([Atom("r", (a, b))]))
        overlay.add(Atom("s", (c,)))
        report = overlay.memory_report()
        assert report.backend == "delta"
        assert report.atom_count == 2
        assert any(name.startswith("base.") for name in report.components)
        assert any(name.startswith("delta.") for name in report.components)


class TestMakeStore:
    def test_backend_names(self):
        assert isinstance(make_store("instance"), Instance)
        assert isinstance(make_store("columnar"), ColumnarStore)
        assert isinstance(make_store("delta"), DeltaOverlay)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown storage backend"):
            make_store("bogus")

    def test_factory_and_instance_choices(self):
        made = make_store(ColumnarStore, [Atom("r", (a,))])
        assert isinstance(made, ColumnarStore) and len(made) == 1
        existing = Instance()
        assert make_store(existing, [Atom("r", (a,))]) is existing
        assert len(existing) == 1

    def test_delta_seed_goes_to_base(self):
        made = make_store("delta", [Atom("r", (a,))])
        assert len(made.base) == 1 and len(made.delta) == 0

    def test_instance_is_a_fact_store(self):
        assert isinstance(Instance(), FactStore)
        assert isinstance(Database(), FactStore)


PROGRAM = """
    e(a,b). e(b,c). e(c,d).
    t(X,Y) :- e(X,Y).
    t(X,Z) :- e(X,Y), t(Y,Z).
"""

EXISTENTIAL_PROGRAM = """
    person(a). person(b).
    parent(X,K) :- person(X).
    person(K) :- parent(X,K).
"""


class TestEnginesAcrossBackends:
    def test_chase_identical_across_backends(self):
        program, database = parse_program(PROGRAM)
        results = {
            backend: chase(database, program, store=backend)
            for backend in BACKENDS
        }
        reference = results["instance"]
        assert reference.saturated
        for backend, result in results.items():
            assert result.saturated, backend
            assert result.fired == reference.fired, backend
            assert set(result.instance) == set(reference.instance), backend

    def test_chase_with_nulls_across_backends(self):
        program, database = parse_program(EXISTENTIAL_PROGRAM)
        for backend in BACKENDS:
            result = chase(
                database, program, store=backend, max_atoms=50
            )
            assert any(atom.nulls() for atom in result.instance), backend

    def test_seminaive_identical_across_backends(self):
        program, database = parse_program(PROGRAM)
        query = parse_query("q(X,Y) :- t(X,Y).")
        reference = seminaive(database, program)
        for backend in BACKENDS:
            result = seminaive(database, program, store=backend)
            assert result.rounds == reference.rounds, backend
            assert result.derived == reference.derived, backend
            assert result.considered == reference.considered, backend
            assert result.evaluate(query) == reference.evaluate(query), backend

    def test_seminaive_delta_promotes_per_round(self):
        program, database = parse_program(PROGRAM)
        result = seminaive(database, program, store="delta")
        assert isinstance(result.instance, DeltaOverlay)
        assert result.instance.promotions == result.rounds
        assert len(result.instance.delta) == 0  # fixpoint: empty delta

    def test_operator_network_across_backends(self):
        program, database = parse_program(PROGRAM)
        network = OperatorNetwork(program)
        reference = network.run(database)
        for backend in BACKENDS:
            result = OperatorNetwork(program).run(database, store=backend)
            assert set(result.instance) == set(reference.instance), backend
            assert result.derived == reference.derived, backend


class TestDeepSizeof:
    def test_shared_seen_prevents_double_counting(self):
        shared = [1, 2, 3]
        seen: set[int] = set()
        first = deep_sizeof({"x": shared}, seen)
        second = deep_sizeof({"y": shared}, seen)
        assert first > second  # shared list charged only once

    def test_counts_slotted_objects(self):
        assert deep_sizeof(Atom("r", (a, b))) > 0


class TestDiscard:
    """Retraction support: observational equivalence across backends."""

    ATOMS = [
        Atom("r", (a, b)), Atom("r", (a, c)), Atom("r", (b, c)),
        Atom("s", (a,)), Atom("s", (b,)),
    ]

    def observe(self, store):
        return {
            "atoms": set(store),
            "len": len(store),
            "predicates": store.predicates(),
            "counts": {p: store.count(p) for p in ("r", "s", "missing")},
            "r_a_probe": set(store.matching(Atom("r", (a, X)))),
            "contains": [atom in store for atom in self.ATOMS],
            "domain": store.active_domain(),
        }

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_discard_mirrors_instance_semantics(self, backend):
        reference = Instance(self.ATOMS)
        store = make_store(backend, self.ATOMS)
        for atom in (Atom("r", (a, b)), Atom("s", (b,)),
                     Atom("missing", (a,)), Atom("r", (a, b))):
            assert store.discard(atom) == reference.discard(atom)
        assert self.observe(store) == self.observe(reference)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_discard_then_readd_roundtrips(self, backend):
        store = make_store(backend, self.ATOMS)
        assert store.discard(Atom("r", (a, b)))
        assert Atom("r", (a, b)) not in store
        assert store.add(Atom("r", (a, b)))
        assert self.observe(store) == self.observe(Instance(self.ATOMS))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_discard_all_counts_present_only(self, backend):
        store = make_store(backend, self.ATOMS)
        removed = store.discard_all(
            [Atom("r", (a, b)), Atom("missing", (a,)), Atom("r", (a, c))]
        )
        assert removed == 2
        assert len(store) == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interleaved_mutation_keeps_indexes_coherent(self, backend):
        """Probe (building lazy indexes), mutate, probe again."""
        store = make_store(backend, self.ATOMS)
        assert len(set(store.matching(Atom("r", (a, X))))) == 2  # build
        store.discard(Atom("r", (a, c)))
        store.add(Atom("r", (a, d)))
        store.discard(Atom("r", (b, c)))
        expected = {Atom("r", (a, b)), Atom("r", (a, d))}
        assert set(store.matching(Atom("r", (a, X)))) == {
            Atom("r", (a, b)), Atom("r", (a, d))
        }
        assert set(store.by_predicate("r")) == expected
        assert store.count("r") == 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_probe_iteration_interleaved_with_discard(self, backend):
        """Regression: a suspended ``matching_bound`` generator must
        survive ``discard`` (columnar swap-remove) without yielding a
        wrong atom, a duplicate, or raising IndexError.  Backends may
        differ on whether a concurrently discarded atom still appears
        (snapshot vs lazy tombstone filtering), but every yielded atom
        must genuinely match the probe and every never-discarded match
        must be yielded."""
        matching = [Atom("r", (a, Constant(f"y{i}"))) for i in range(6)]
        atoms = matching + [Atom("r", (b, c))]
        store = make_store(backend, atoms)
        # No warm-up probe: an identical earlier probe would park the
        # result in the columnar cache and mask the lazy-row-read bug.
        probe = store.matching_bound("r", {1: a})
        got = [next(probe)]
        # Shrink the row list by three mid-iteration (stale high row
        # numbers go out of bounds; swap-remove moves survivors and the
        # non-matching last row under snapshotted numbers).
        discarded = {Atom("r", (b, c)), matching[4], matching[2]}
        for atom in discarded:
            assert store.discard(atom)
        got.extend(probe)
        assert len(got) == len(set(got))  # no duplicates
        for atom in got:
            assert atom.args[0] == a, f"probe yielded non-matching {atom}"
        assert set(matching) - discarded <= set(got) <= set(matching)

    def test_columnar_probe_no_wrong_atom_after_swap_remove(self):
        """Regression: swap-remove used to move the *last* row under a
        snapshotted row number, making the suspended probe yield an
        atom that does not match the probe position."""
        wrong = Atom("r", (b, c))
        store = ColumnarStore([Atom("r", (a, b)), Atom("r", (a, c)), wrong])
        probe = store.matching_bound("r", {1: a})
        first = next(probe)
        # Remove the still-pending matching row: (b, c) swaps into its
        # slot, where the old lazy reader picked it up.
        pending = ({Atom("r", (a, b)), Atom("r", (a, c))} - {first}).pop()
        store.discard(pending)
        rest = list(probe)
        assert wrong not in rest
        assert set([first] + rest) == {Atom("r", (a, b)), Atom("r", (a, c))}

    def test_partial_probe_drain_populates_cache(self):
        """Counter semantics, pinned: every probe is exactly one hit or
        one miss, and even an undrained probe fills the cache — the
        existence-check access pattern (probe one witness, abandon,
        repeat) must not re-scan and re-count a miss forever."""
        store = ColumnarStore(
            [Atom("r", (a, Constant(f"y{i}"))) for i in range(8)]
        )
        probe = store.matching_bound("r", {1: a})
        next(probe)
        probe.close()  # abandoned after one witness
        assert store.stats["cache_misses"] == 1
        assert store.stats["cache_hits"] == 0
        assert store.stats["cache_entries"] == 1
        for _ in range(3):  # repeated existence checks: all cache hits
            again = store.matching_bound("r", {1: a})
            next(again)
            again.close()
        assert store.stats["cache_misses"] == 1
        assert store.stats["cache_hits"] == 3
        # A full drain of the cached probe returns the complete result.
        assert len(list(store.matching_bound("r", {1: a}))) == 8
        assert store.stats["cache_misses"] == 1

    def test_probe_cache_disabled_never_caches(self):
        store = ColumnarStore(
            [Atom("r", (a, b)), Atom("r", (a, c))], probe_cache_size=0
        )
        assert len(list(store.matching_bound("r", {1: a}))) == 2
        assert len(list(store.matching_bound("r", {1: a}))) == 2
        assert store.stats["cache_entries"] == 0
        assert store.stats["cache_misses"] == 2
        assert store.stats["cache_hits"] == 0

    def test_columnar_probe_cache_invalidated_by_discard(self):
        store = ColumnarStore(self.ATOMS)
        first = set(store.matching(Atom("r", (a, X))))
        assert set(store.matching(Atom("r", (a, X)))) == first
        assert store.cache_hits >= 1
        store.discard(Atom("r", (a, c)))
        assert set(store.matching(Atom("r", (a, X)))) == {Atom("r", (a, b))}

    def test_columnar_swap_remove_keeps_last_row_reachable(self):
        store = ColumnarStore()
        atoms = [Atom("r", (Constant(f"x{i}"), Constant(f"y{i}")))
                 for i in range(10)]
        store.add_all(atoms)
        # build both position indexes, then delete from the middle
        assert set(store.matching(Atom("r", (Constant("x3"), Y))))
        assert set(store.matching(Atom("r", (X, Constant("y7")))))
        store.discard(atoms[3])
        store.discard(atoms[0])
        survivors = set(atoms) - {atoms[3], atoms[0]}
        assert set(store) == survivors
        for atom in survivors:
            assert set(store.matching(atom)) == {atom}

    def test_delta_overlay_tombstones_base_atoms(self):
        base = ColumnarStore([Atom("r", (a, b)), Atom("r", (b, c))])
        overlay = DeltaOverlay(base)
        overlay.add(Atom("r", (c, d)))
        assert overlay.discard(Atom("r", (a, b)))      # base → tombstone
        assert overlay.discard(Atom("r", (c, d)))      # delta → gone
        assert not overlay.discard(Atom("r", (a, b)))  # already dead
        assert Atom("r", (a, b)) not in overlay
        assert len(overlay) == 1
        assert len(base) == 2  # base untouched until promote
        assert set(overlay.by_predicate("r")) == {Atom("r", (b, c))}

    def test_delta_overlay_readd_resurrects_base_atom(self):
        overlay = DeltaOverlay(ColumnarStore([Atom("r", (a, b))]))
        overlay.discard(Atom("r", (a, b)))
        assert overlay.add(Atom("r", (a, b)))
        assert Atom("r", (a, b)) in overlay
        assert len(overlay) == 1
        assert len(overlay.delta) == 0  # the base copy shows through

    def test_delta_overlay_promote_applies_tombstones(self):
        base = ColumnarStore([Atom("r", (a, b)), Atom("r", (b, c))])
        overlay = DeltaOverlay(base)
        overlay.add(Atom("r", (c, d)))
        overlay.discard(Atom("r", (a, b)))
        overlay.promote()
        assert set(base) == {Atom("r", (b, c)), Atom("r", (c, d))}
        assert set(overlay) == set(base)
        assert overlay.memory_report().atom_count == 2

    def test_delta_overlay_memory_report_counts_tombstones(self):
        overlay = DeltaOverlay(ColumnarStore([Atom("r", (a, b))]))
        overlay.discard(Atom("r", (a, b)))
        assert "tombstones" in overlay.memory_report().components
