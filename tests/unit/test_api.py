"""Unit tests for the ``repro.api`` session layer."""

import pytest

import repro.api.program as program_module
from repro.api import (
    AnswerStream,
    CompiledProgram,
    Planner,
    Session,
    compile_program,
    execute_plan,
)
from repro.core.terms import Constant
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.answers import UnsupportedProgramError, certain_answers

a, b, c = Constant("a"), Constant("b"), Constant("c")

TC_SOURCE = """
    e(a,b). e(b,c).
    t(X,Y) :- e(X,Y).
    t(X,Z) :- e(X,Y), t(Y,Z).
"""

EXISTENTIAL_SOURCE = """
    p(c).
    r(X,Z) :- p(X).
    p(Y) :- r(X,Y).
"""

TC_ANSWERS = {(a, b), (b, c), (a, c)}


class TestCompiledProgram:
    def test_analysis_runs_exactly_once(self):
        program, _ = parse_program(TC_SOURCE)
        compiled = CompiledProgram(program)
        assert compiled.analysis_runs == 0
        for _ in range(5):
            _ = compiled.analysis
        assert compiled.analysis_runs == 1

    def test_analysis_matches_direct_calls(self):
        program, _ = parse_program(EXISTENTIAL_SOURCE)
        analysis = CompiledProgram(program).analysis
        assert analysis.warded
        assert analysis.piecewise_linear
        assert not analysis.full
        assert analysis.program_class == "WARD ∩ PWL"

    def test_compile_once_across_ten_queries(self, monkeypatch):
        """≥10 session queries classify/stratify exactly once (the
        acceptance criterion of the api_redesign issue)."""
        calls = {"warded": 0, "strata": 0}
        real_warded = program_module.is_warded
        real_strata = program_module.compute_strata

        def counting_warded(program):
            calls["warded"] += 1
            return real_warded(program)

        def counting_strata(program):
            calls["strata"] += 1
            return real_strata(program)

        monkeypatch.setattr(program_module, "is_warded", counting_warded)
        monkeypatch.setattr(program_module, "compute_strata", counting_strata)

        session = Session()
        compiled = session.load(TC_SOURCE)
        queries = [
            "q(X,Y) :- t(X,Y).",
            "q(X) :- t(a,X).",
            "q(X) :- t(X,c).",
            "q() :- t(a,c).",
            "q(X,Y) :- e(X,Y).",
            "q(X) :- e(X,Y), t(Y,Z).",
            "q(X,Z) :- t(X,Y), t(Y,Z).",
            "q(Y) :- t(a,Y), e(Y,Z).",
            "q() :- e(a,b).",
            "q(X) :- t(X,X).",
            "q(X,Y) :- t(X,Y), e(X,Y).",
        ]
        assert len(queries) >= 10
        for text in queries:
            session.query(text).to_set()
        assert compiled.analysis_runs == 1
        assert calls["warded"] == 1
        assert calls["strata"] == 1

    def test_join_plans_memoized(self):
        program, _ = parse_program(TC_SOURCE)
        compiled = compile_program(program)
        tgd = compiled.analysis.normalized.tgds[1]
        assert compiled.join_plan(tgd) is compiled.join_plan(tgd)

    def test_default_network_cached(self):
        program, _ = parse_program(TC_SOURCE)
        compiled = compile_program(program)
        assert compiled.network() is compiled.network()

    def test_compile_program_idempotent(self):
        program, _ = parse_program(TC_SOURCE)
        compiled = compile_program(program)
        assert compile_program(compiled) is compiled


class TestPlanner:
    def test_auto_dispatch_matches_legacy_routes(self):
        planner = Planner()
        for source, expected in (
            (TC_SOURCE, "datalog"),
            (EXISTENTIAL_SOURCE, "pwl"),
        ):
            program, _ = parse_program(source)
            method, _ = planner.resolve(compile_program(program))
            assert method == expected

    def test_unknown_method_rejected(self):
        program, _ = parse_program(TC_SOURCE)
        with pytest.raises(ValueError, match="unknown method"):
            Planner().plan(
                compile_program(program),
                parse_query("q(X,Y) :- t(X,Y)."),
                method="bogus",
            )

    def test_unknown_store_rejected_with_choices(self):
        program, _ = parse_program(TC_SOURCE)
        with pytest.raises(ValueError, match="instance, columnar, delta"):
            Planner().plan(
                compile_program(program),
                parse_query("q(X,Y) :- t(X,Y)."),
                store="bogus",
            )

    def test_explain_is_stable(self):
        """Same inputs → byte-identical explain(), across planner and
        session instances."""
        query_text = "q(X,Y) :- t(X,Y)."
        renderings = set()
        for _ in range(3):
            session = Session(store="columnar")
            session.load(TC_SOURCE, name="tc")
            renderings.add(session.explain(query_text))
        assert len(renderings) == 1
        text = renderings.pop()
        assert "engine  : datalog" in text
        assert "store   : columnar" in text
        assert "class Datalog" in text
        assert "why:" in text and "pipeline:" in text

    def test_explain_repeated_on_same_plan(self):
        session = Session()
        session.load(TC_SOURCE)
        plan = session.plan("q(X,Y) :- t(X,Y).")
        assert plan.explain() == plan.explain()
        assert str(plan) == plan.explain()


class TestAnswerStream:
    def test_lazy_until_pulled(self):
        session = Session()
        session.load(TC_SOURCE)
        stream = session.query("q(X,Y) :- t(X,Y).")
        assert not stream.started
        assert not stream.exhausted

    def test_first_does_not_exhaust(self):
        session = Session()
        session.load(TC_SOURCE)
        stream = session.query("q(X,Y) :- t(X,Y).")
        first = stream.first(1)
        assert len(first) == 1
        assert first[0] in TC_ANSWERS
        assert stream.started and not stream.exhausted

    def test_replayable_iteration(self):
        session = Session()
        session.load(TC_SOURCE)
        stream = session.query("q(X,Y) :- t(X,Y).")
        assert list(stream) == list(stream)
        assert set(stream.to_set()) == TC_ANSWERS

    def test_partial_then_full_agree(self):
        session = Session()
        session.load(TC_SOURCE)
        stream = session.query("q(X,Y) :- t(X,Y).")
        head = stream.first(2)
        full = stream.to_sorted()
        assert full[: len(head)] != [] and set(head) <= set(full)
        assert stream.exhausted

    def test_strict_chase_raises_at_stream_end(self):
        program, database = parse_program("""
            p(a).
            r(X,K) :- p(X).
            s(Y,X) :- r(X,Y).
            t(Y,W) :- s(Y,X), r(X,W).
            p(W) :- t(Y,W), t(W,Y).
        """)
        # not warded and (with tiny limits) non-terminating: the stream
        # must raise on exhaustion, not silently truncate.
        session = Session()
        compiled = session.compile(program)
        session.add_facts(database)
        stream = session.query(
            "q() :- t(X,W).", program=compiled,
            method="chase", max_atoms=3,
        )
        with pytest.raises(UnsupportedProgramError):
            stream.to_set()


class TestSession:
    def test_query_equals_legacy_certain_answers(self):
        session = Session()
        session.load(TC_SOURCE)
        program, database = parse_program(TC_SOURCE)
        query = parse_query("q(X,Y) :- t(X,Y).")
        assert set(session.query(query).to_set()) == certain_answers(
            query, database, program
        )

    def test_fixpoint_reused_across_queries(self):
        session = Session()
        session.load(TC_SOURCE)
        first = session.query("q(X,Y) :- t(X,Y).")
        first.to_set()
        assert not first.stats.from_cache
        # With the demand rewrite disabled, the bound query reuses the
        # unbound query's saturated materialization.
        second = session.query("q(X) :- t(a,X).", rewrite="none")
        assert second.to_set() == frozenset({(b,), (c,)})
        assert second.stats.from_cache
        # Under rewrite=auto the same bound query takes a magic plan
        # instead: a demand-specific fixpoint, cached under its own key.
        third = session.query("q(X) :- t(a,X).")
        assert third.to_set() == frozenset({(b,), (c,)})
        assert third.stats.rewrite == "magic"
        assert not third.stats.from_cache
        repeat = session.query("q(X) :- t(a,X).")
        assert repeat.to_set() == frozenset({(b,), (c,)})
        assert repeat.stats.from_cache

    def test_add_facts_upgrades_cached_fixpoint(self):
        """EDB updates no longer destroy saturated materializations:
        the cached fixpoint is maintained in place (repro.incremental)
        and the next query is a cache hit with the *new* answers."""
        session = Session()
        session.load(TC_SOURCE)
        session.query("q(X,Y) :- t(X,Y).").to_set()
        _, extra = parse_program("e(c,d).")
        session.add_facts(extra)
        stream = session.query("q(X,Y) :- t(X,Y).")
        answers = stream.to_set()
        assert stream.stats.from_cache  # upgraded, not recomputed
        d = Constant("d")
        assert (c, d) in answers and (a, d) in answers

    def test_retraction_maintains_cached_fixpoint(self):
        session = Session()
        session.load(TC_SOURCE)
        assert session.answers("q(X,Y) :- t(X,Y).") == TC_ANSWERS
        _, gone = parse_program("e(b,c).")
        report = session.apply(retracts=list(gone))
        assert report.dropped == 1
        assert report.maintained and not report.fallbacks
        stream = session.query("q(X,Y) :- t(X,Y).")
        assert stream.to_set() == frozenset({(a, b)})
        assert stream.stats.from_cache

    def test_existential_program_falls_back_on_update(self):
        session = Session()
        # Existential but terminating: the chase saturates and caches
        # its materialization, which is outside the maintainable
        # fragment (nulls have no recorded provenance).
        session.load("""
            p(a). p(b).
            r(X,K) :- p(X).
        """)
        session.query("q(X) :- r(X,Y).", method="chase").to_set()
        _, extra = parse_program("p(zz).")
        report = session.apply(inserts=list(extra))
        assert report.fallbacks and not report.maintained
        assert "existential" in report.fallbacks[0][1]
        stream = session.query("q(X) :- r(X,Y).", method="chase")
        answers = stream.to_set()
        assert not stream.stats.from_cache  # recomputed, by design
        assert (Constant("zz"),) in answers

    def test_abstraction_cached_for_proof_tree_engines(self):
        session = Session()
        compiled = session.load(EXISTENTIAL_SOURCE)
        before = session.abstraction_for(compiled)
        session.query("q(X) :- r(X,Y).", method="pwl").to_set()
        assert session.abstraction_for(compiled) is before

    def test_requires_a_program(self):
        with pytest.raises(ValueError, match="no program loaded"):
            Session().query("q(X) :- t(X,Y).")

    def test_store_validated(self):
        with pytest.raises(ValueError, match="instance, columnar, delta"):
            Session(store="bogus")

    def test_answers_convenience(self):
        session = Session(store="delta")
        session.load(TC_SOURCE)
        assert session.answers("q(X,Y) :- t(X,Y).") == TC_ANSWERS

    def test_rejects_shared_factstore_instance(self):
        from repro.storage import ColumnarStore

        with pytest.raises(ValueError, match="backend name or a factory"):
            Session(store=ColumnarStore())

    def test_policy_suppressed_chase_does_not_poison_cache(self):
        """A run altered by a live collaborator (termination policy)
        must neither be served from nor stored into the fixpoint cache
        (regression: it used to be cached as saturated, making a later
        plain query return the EDB-only answers)."""
        from repro.chase.termination import TerminationPolicy

        class SuppressAll(TerminationPolicy):
            def should_fire(self, trigger, produced, instance):
                return False

        session = Session()
        session.load(TC_SOURCE)
        suppressed = session.query(
            "q(X,Y) :- t(X,Y).",
            method="chase", policy=SuppressAll(), strict=False,
        )
        assert suppressed.to_set() == frozenset()
        plain = session.query("q(X,Y) :- t(X,Y).", method="chase")
        assert set(plain.to_set()) == TC_ANSWERS
        assert not plain.stats.from_cache

    def test_strict_network_raises_on_truncation(self):
        session = Session()
        session.load(EXISTENTIAL_SOURCE)
        stream = session.query(
            "q(X) :- r(X,Y).", method="network", max_atoms=20
        )
        with pytest.raises(UnsupportedProgramError):
            stream.to_set()

    def test_network_method_on_full_program(self):
        session = Session()
        session.load(TC_SOURCE)
        stream = session.query("q(X,Y) :- t(X,Y).", method="network")
        assert set(stream.to_set()) == TC_ANSWERS


class TestExecutePlan:
    def test_execute_without_session(self):
        program, database = parse_program(TC_SOURCE)
        plan = Planner().plan(
            compile_program(program), parse_query("q(X,Y) :- t(X,Y).")
        )
        stream = execute_plan(plan, database)
        assert isinstance(stream, AnswerStream)
        assert set(stream.to_set()) == TC_ANSWERS

    def test_proof_tree_stats_populated(self):
        program, database = parse_program(TC_SOURCE)
        plan = Planner().plan(
            compile_program(program),
            parse_query("q(X,Y) :- t(X,Y)."),
            method="pwl",
            probe_depth=5,
        )
        stream = execute_plan(plan, database)
        assert set(stream.to_set()) == TC_ANSWERS
        assert stream.stats.probe_answers == 3

    def test_rounds_and_events_populated(self):
        program, database = parse_program(TC_SOURCE)
        compiled = compile_program(program)

        datalog = execute_plan(
            Planner().plan(
                compiled, parse_query("q(X,Y) :- t(X,Y)."), method="datalog"
            ),
            database,
        )
        assert set(datalog.to_set()) == TC_ANSWERS
        # Chain a→b→c closes in 2 staging rounds plus the empty round
        # that witnesses the fixpoint.
        assert datalog.stats.rounds == 3

        chase_stream = execute_plan(
            Planner().plan(
                compiled, parse_query("q(X,Y) :- t(X,Y)."), method="chase"
            ),
            database,
        )
        assert set(chase_stream.to_set()) == TC_ANSWERS
        assert chase_stream.stats.events == 3  # one firing per t-fact

        network = execute_plan(
            Planner().plan(
                compiled, parse_query("q(X,Y) :- t(X,Y)."), method="network"
            ),
            database,
        )
        assert set(network.to_set()) == TC_ANSWERS
        assert network.stats.events > 0


class TestTopLevelExports:
    """The public surface is reachable from the package root."""

    def test_session_layer_surfaces_at_root(self):
        import repro

        assert repro.Session is Session
        from repro.api import AnswerStream
        assert repro.AnswerStream is AnswerStream

    def test_incremental_layer_surfaces_at_root(self):
        import repro
        from repro.incremental import ChangeSet, MutationLog

        assert repro.ChangeSet is ChangeSet
        assert repro.MutationLog is MutationLog

    def test_dir_lists_lazy_names(self):
        import repro

        listed = dir(repro)
        for name in ("Session", "AnswerStream", "ChangeSet", "api",
                     "incremental"):
            assert name in listed, name

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError, match="frobnicate"):
            repro.frobnicate
