"""Unit tests for conjunctive queries."""

import pytest

from repro.core.atoms import Atom
from repro.core.instance import Instance
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Null, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestConstruction:
    def test_output_must_occur_in_body(self):
        with pytest.raises(ValueError, match="does not occur"):
            ConjunctiveQuery((Z,), (Atom("r", (X, Y)),))

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((), ())

    def test_boolean_query(self):
        q = ConjunctiveQuery((), (Atom("r", (X,)),))
        assert q.is_boolean()

    def test_repeated_outputs_allowed(self):
        q = ConjunctiveQuery((X, X), (Atom("r", (X,)),))
        assert q.output == (X, X)


class TestEvaluation:
    def test_evaluate_returns_constant_tuples(self):
        inst = Instance([Atom("r", (a, b)), Atom("r", (b, c))])
        q = ConjunctiveQuery((X, Y), (Atom("r", (X, Y)),))
        assert q.evaluate(inst) == {(a, b), (b, c)}

    def test_null_tuples_excluded(self):
        # q(I) only contains tuples of constants (Section 2).
        inst = Instance([Atom("r", (a, Null(0)))])
        q = ConjunctiveQuery((X, Y), (Atom("r", (X, Y)),))
        assert q.evaluate(inst) == set()
        # but the Boolean version holds: the homomorphism exists
        assert q.holds_in(inst)

    def test_join_evaluation(self):
        inst = Instance([Atom("r", (a, b)), Atom("s", (b,))])
        q = ConjunctiveQuery((X,), (Atom("r", (X, Y)), Atom("s", (Y,))))
        assert q.evaluate(inst) == {(a,)}

    def test_boolean_empty_tuple_answer(self):
        inst = Instance([Atom("r", (a,))])
        q = ConjunctiveQuery((), (Atom("r", (X,)),))
        assert q.evaluate(inst) == {()}


class TestInstantiate:
    def test_instantiate_substitutes_outputs(self):
        q = ConjunctiveQuery((X,), (Atom("r", (X, Y)),))
        atoms = q.instantiate((a,))
        assert atoms == (Atom("r", (a, Y)),)

    def test_instantiate_wrong_arity(self):
        q = ConjunctiveQuery((X,), (Atom("r", (X, Y)),))
        with pytest.raises(ValueError, match="expected 1"):
            q.instantiate((a, b))

    def test_instantiate_repeated_output_consistent(self):
        q = ConjunctiveQuery((X, X), (Atom("r", (X,)),))
        assert q.instantiate((a, a)) == (Atom("r", (a,)),)
        with pytest.raises(ValueError, match="bound to both"):
            q.instantiate((a, b))


class TestStructure:
    def test_width(self):
        q = ConjunctiveQuery((X,), (Atom("r", (X, Y)), Atom("s", (Y,))))
        assert q.width() == 2

    def test_existential_variables(self):
        q = ConjunctiveQuery((X,), (Atom("r", (X, Y)),))
        assert q.existential_variables() == {Y}

    def test_rename(self):
        q = ConjunctiveQuery((X,), (Atom("r", (X, Y)),))
        renamed = q.rename("z")
        assert renamed.output == (Variable("X@z"),)
        assert renamed.atoms[0].args == (Variable("X@z"), Variable("Y@z"))
