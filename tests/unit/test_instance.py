"""Unit tests for instances, databases, and homomorphism search."""

import pytest

from repro.core.atoms import Atom
from repro.core.homomorphism import find_homomorphism, homomorphisms
from repro.core.instance import Database, Instance
from repro.core.terms import Constant, Null, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestInstance:
    def test_add_and_contains(self):
        inst = Instance()
        assert inst.add(Atom("r", (a, b)))
        assert not inst.add(Atom("r", (a, b)))  # duplicate
        assert Atom("r", (a, b)) in inst
        assert len(inst) == 1

    def test_rejects_non_ground(self):
        with pytest.raises(ValueError, match="ground"):
            Instance().add(Atom("r", (X,)))

    def test_accepts_nulls(self):
        inst = Instance()
        inst.add(Atom("r", (a, Null(0))))
        assert len(inst) == 1

    def test_matching_uses_pattern(self):
        inst = Instance([Atom("r", (a, b)), Atom("r", (a, c)), Atom("r", (b, c))])
        assert len(list(inst.matching(Atom("r", (a, X))))) == 2
        assert len(list(inst.matching(Atom("r", (X, Y))))) == 3
        assert len(list(inst.matching(Atom("r", (X, X))))) == 0

    def test_matching_repeated_variable(self):
        inst = Instance([Atom("r", (a, a)), Atom("r", (a, b))])
        assert list(inst.matching(Atom("r", (X, X)))) == [Atom("r", (a, a))]

    def test_active_domain(self):
        inst = Instance([Atom("r", (a, Null(0)))])
        assert inst.active_domain() == {a, Null(0)}
        assert inst.constants() == {a}
        assert inst.nulls() == {Null(0)}

    def test_with_predicate(self):
        inst = Instance([Atom("r", (a,)), Atom("s", (b,))])
        assert inst.with_predicate("r") == {Atom("r", (a,))}
        assert inst.with_predicate("missing") == set()

    def test_copy_is_independent(self):
        inst = Instance([Atom("r", (a,))])
        clone = inst.copy()
        clone.add(Atom("r", (b,)))
        assert len(inst) == 1 and len(clone) == 2


class TestDatabase:
    def test_rejects_nulls(self):
        with pytest.raises(ValueError, match="facts"):
            Database().add(Atom("r", (Null(0),)))

    def test_to_instance(self):
        db = Database([Atom("r", (a,))])
        inst = db.to_instance()
        inst.add(Atom("r", (Null(0),)))  # instances may hold nulls
        assert len(db) == 1


class TestHomomorphisms:
    def test_simple_match(self):
        inst = Instance([Atom("r", (a, b))])
        hom = find_homomorphism([Atom("r", (X, Y))], inst)
        assert hom is not None
        assert hom.apply_term(X) == a and hom.apply_term(Y) == b

    def test_join_through_shared_variable(self):
        inst = Instance([Atom("r", (a, b)), Atom("s", (b, c))])
        hom = find_homomorphism([Atom("r", (X, Y)), Atom("s", (Y, Z))], inst)
        assert hom is not None
        assert hom.apply_term(Y) == b

    def test_no_match(self):
        inst = Instance([Atom("r", (a, b)), Atom("s", (c, c))])
        assert find_homomorphism([Atom("r", (X, Y)), Atom("s", (Y, Z))], inst) is None

    def test_constants_rigid(self):
        inst = Instance([Atom("r", (a, b))])
        assert find_homomorphism([Atom("r", (b, X))], inst) is None

    def test_all_homomorphisms_enumerated(self):
        inst = Instance([Atom("e", (a, b)), Atom("e", (b, c)), Atom("e", (a, c))])
        homs = list(homomorphisms([Atom("e", (X, Y))], inst))
        assert len(homs) == 3

    def test_seed_restricts_search(self):
        inst = Instance([Atom("e", (a, b)), Atom("e", (b, c))])
        homs = list(homomorphisms([Atom("e", (X, Y))], inst, seed={X: b}))
        assert len(homs) == 1
        assert homs[0].apply_term(Y) == c

    def test_non_injective_homomorphism_allowed(self):
        inst = Instance([Atom("e", (a, a))])
        hom = find_homomorphism([Atom("e", (X, Y))], inst)
        assert hom is not None
        assert hom.apply_term(X) == hom.apply_term(Y) == a
