"""Unit tests for the synthetic benchmark suites and the E1 statistics."""

import pytest

from repro.analysis.linearization import linearize
from repro.analysis.piecewise import is_piecewise_linear
from repro.analysis.wardedness import is_warded
from repro.benchsuite import (
    RECURSION_FLAVOURS,
    classify_corpus,
    default_corpus,
    generate_chasebench,
    generate_dbpedia,
    generate_ibench,
    generate_industrial,
    generate_iwarded,
)


class TestIWarded:
    @pytest.mark.parametrize("flavour", RECURSION_FLAVOURS)
    def test_all_flavours_warded(self, flavour):
        scenario = generate_iwarded(seed=1, flavour=flavour)
        assert is_warded(scenario.program), flavour

    def test_planted_pwl_flavours(self):
        for flavour, expect_pwl in [
            ("none", True), ("linear", True), ("pwl", True),
            ("linearizable", False), ("nonpwl", False),
        ]:
            scenario = generate_iwarded(seed=2, flavour=flavour)
            assert is_piecewise_linear(scenario.program) == expect_pwl, flavour

    def test_linearizable_flavour_linearizes(self):
        scenario = generate_iwarded(seed=3, flavour="linearizable")
        assert linearize(scenario.program).piecewise_linear

    def test_nonpwl_flavour_does_not_linearize(self):
        scenario = generate_iwarded(seed=4, flavour="nonpwl")
        assert not linearize(scenario.program).piecewise_linear

    def test_deterministic_given_seed(self):
        s1 = generate_iwarded(seed=7, flavour="linear")
        s2 = generate_iwarded(seed=7, flavour="linear")
        assert s1.program == s2.program
        assert s1.database.atoms() == s2.database.atoms()

    def test_pwl_flavour_not_intensionally_linear(self):
        from repro.analysis.piecewise import is_intensionally_linear
        scenario = generate_iwarded(seed=5, flavour="pwl")
        assert not is_intensionally_linear(scenario.program)


class TestOtherSuites:
    def test_ibench_is_pwl(self):
        for seed in range(3):
            scenario = generate_ibench(seed=seed)
            assert is_warded(scenario.program)
            assert is_piecewise_linear(scenario.program)

    def test_ibench_target_recursion_stays_pwl(self):
        scenario = generate_ibench(seed=1, add_target_recursion=True)
        assert is_piecewise_linear(scenario.program)
        assert scenario.planted_recursion == "linear"

    def test_chasebench_flavours(self):
        for recursion, expect_pwl in [
            ("none", True), ("linear", True), ("linearizable", False)
        ]:
            scenario = generate_chasebench(seed=1, recursion=recursion)
            assert is_warded(scenario.program)
            assert is_piecewise_linear(scenario.program) == expect_pwl

    def test_dbpedia_is_example_33(self):
        scenario = generate_dbpedia(seed=1)
        assert is_warded(scenario.program)
        assert is_piecewise_linear(scenario.program)
        assert len(scenario.program) == 6

    def test_industrial_flavours(self):
        psc = generate_industrial(seed=1, flavour="psc")
        assert is_warded(psc.program) and is_piecewise_linear(psc.program)
        nonpwl = generate_industrial(seed=1, flavour="nonpwl")
        assert is_warded(nonpwl.program)
        assert not is_piecewise_linear(nonpwl.program)


class TestCorpusStatistics:
    def test_buckets_partition_corpus(self):
        corpus = default_corpus(scale=1)
        stats = classify_corpus(corpus)
        assert stats.direct_pwl + stats.linearizable + stats.beyond == stats.total

    def test_all_scenarios_warded(self):
        corpus = default_corpus(scale=1)
        stats = classify_corpus(corpus)
        assert stats.warded == stats.total

    def test_fractions_near_paper_bands(self):
        # Paper: ~55% direct, ~15% after elimination, ~70% combined.
        stats = classify_corpus(default_corpus(scale=2))
        assert 0.40 <= stats.direct_fraction <= 0.70
        assert 0.05 <= stats.linearizable_fraction <= 0.30
        assert 0.60 <= stats.pwl_fraction <= 0.85

    def test_measured_matches_planted(self):
        # The analyzers must agree with the planted ground truth.
        corpus = default_corpus(scale=1)
        for scenario in corpus:
            direct = is_piecewise_linear(scenario.program)
            if scenario.planted_recursion in ("none", "linear", "pwl"):
                assert direct, scenario.describe()
            elif scenario.planted_recursion == "linearizable":
                assert not direct and linearize(scenario.program).piecewise_linear
            elif scenario.planted_recursion == "nonpwl":
                assert not direct
                assert not linearize(scenario.program).piecewise_linear

    def test_rows_format(self):
        stats = classify_corpus(default_corpus(scale=1))
        rows = stats.rows()
        assert len(rows) == 3
        assert abs(sum(fraction for _, _, fraction in rows) - 1.0) < 1e-9


class TestChurnFamily:
    def test_deterministic_in_seed(self):
        from repro.benchsuite import generate_churn

        first = generate_churn(vertices=32, edges=64, clusters=4,
                               steps=5, seed=7)
        second = generate_churn(vertices=32, edges=64, clusters=4,
                                steps=5, seed=7)
        assert set(first.scenario.database) == set(second.scenario.database)
        assert [s.ops for s in first.steps] == [s.ops for s in second.steps]

    def test_batches_bounded_and_mixed(self):
        from repro.benchsuite import generate_churn

        churn = generate_churn(vertices=32, edges=64, clusters=4,
                               steps=8, churn=0.1, seed=11)
        bound = int(0.1 * 64)
        for step in churn.steps:
            assert len(step.inserts) + len(step.retracts) <= bound
            assert step.retracts, "every batch must exercise retraction"
            assert step.inserts, "every batch must exercise insertion"

    def test_program_is_maintainable_fragment(self):
        from repro.api.program import compile_program
        from repro.benchsuite import generate_churn
        from repro.incremental import unmaintainable_reason

        churn = generate_churn(vertices=16, edges=24, clusters=2,
                               steps=2, seed=3)
        compiled = compile_program(churn.scenario.program)
        assert unmaintainable_reason(compiled.analysis) is None
        assert len(churn.scenario.queries) == 3

    def test_rejects_bad_parameters(self):
        from repro.benchsuite import generate_churn

        with pytest.raises(ValueError, match="churn"):
            generate_churn(churn=0.0, steps=1)
        with pytest.raises(ValueError, match="divisible"):
            generate_churn(vertices=10, clusters=3, steps=1)
