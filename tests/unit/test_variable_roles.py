"""Unit tests for harmless/harmful/dangerous classification (Section 3)."""

import pytest

from repro.analysis.affected import affected_positions
from repro.analysis.variable_roles import classify_program, classify_variables
from repro.core.terms import Variable
from repro.lang.parser import parse_program

X, Y = Variable("X"), Variable("Y")


def roles_for(text: str, rule_index: int):
    program, _ = parse_program(text)
    affected = affected_positions(program)
    return classify_variables(program[rule_index], affected)


class TestClassification:
    def test_paper_dangerous_example(self):
        # P(x) → ∃z R(x,z) and R(x,y) → P(y): y in the second rule is
        # dangerous (the paper's introductory example of wardedness).
        roles = roles_for(
            """
            r(X, Z) :- p(X).
            p(Y) :- r(X, Y).
            """,
            1,
        )
        assert Y in roles.dangerous
        assert Y in roles.harmful
        # x occurs at the affected position r[1] only → harmful, but it
        # does not reach the head → not dangerous.
        assert X in roles.harmful
        assert X not in roles.dangerous

    def test_harmless_via_nonaffected_occurrence(self):
        roles = roles_for(
            """
            r(X, Z) :- p(X).
            p(Y) :- r(X, Y), s(Y).
            """,
            1,
        )
        # y also occurs at s[1] (non-affected) → harmless.
        assert Y in roles.harmless
        assert Y not in roles.harmful

    def test_full_rules_have_no_harmful_variables(self):
        roles = roles_for("t(X, Y) :- e(X, Y).", 0)
        assert roles.harmful == frozenset()
        assert roles.harmless == {X, Y}

    def test_dangerous_subset_of_harmful(self):
        program, _ = parse_program(
            """
            r(X, Z) :- p(X).
            p(Y) :- r(X, Y).
            """
        )
        for roles in classify_program(program).values():
            assert roles.dangerous <= roles.harmful
            assert not (roles.harmless & roles.harmful)

    def test_role_of(self):
        roles = roles_for(
            """
            r(X, Z) :- p(X).
            p(Y) :- r(X, Y).
            """,
            1,
        )
        assert roles.role_of(Y) == "dangerous"
        assert roles.role_of(X) == "harmful"
        with pytest.raises(KeyError):
            roles.role_of(Variable("nope"))
