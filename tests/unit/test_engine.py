"""Unit tests for the Section 7 engine: optimizer, guides, network."""


from repro.core.terms import Constant
from repro.engine.guides import LinearForestGuide, NoGuide
from repro.engine.operators import OperatorNetwork
from repro.engine.optimizer import JoinOptimizer
from repro.lang.parser import parse_program, parse_query

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


class TestOptimizer:
    def test_recursive_atom_pinned_first(self):
        program, _ = parse_program("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        optimizer = JoinOptimizer(program, pwl_bias=True)
        plan = optimizer.plan(program[1])
        # body index 1 is the recursive t-atom
        assert plan.order[0] == 1

    def test_no_bias_keeps_written_order(self):
        program, _ = parse_program("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        optimizer = JoinOptimizer(program, pwl_bias=False)
        assert optimizer.plan(program[1]).order == (0, 1)

    def test_connectivity_ordering(self):
        # After pinning t, the next atom should share a variable with it
        # (e2), not the disconnected one (e1).
        program, _ = parse_program("""
            t(X,Z) :- e1(U,V), e2(Y,Z), t(X,Y).
            t(X,Y) :- e2(X,Y).
        """)
        optimizer = JoinOptimizer(program, pwl_bias=True)
        plan = optimizer.plan(program[0])
        assert plan.order[0] == 2          # the recursive atom
        assert plan.order[1] == 1          # shares Y with it

    def test_plans_cover_program(self):
        program, _ = parse_program("""
            t(X,Y) :- e(X,Y).
            u(X) :- t(X,Y).
        """)
        assert len(JoinOptimizer(program).plans()) == 2


class TestGuides:
    def test_no_guide_never_cuts(self):
        guide = NoGuide()
        assert guide.allows(0, [])
        guide.register(0, [], [])

    def test_linear_forest_terminates_recursion(self):
        program, database = parse_program("""
            p(c).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        network = OperatorNetwork(program, guide=LinearForestGuide())
        result = network.run(database, max_atoms=10000)
        assert result.saturated
        assert result.guide_cuts >= 1
        assert len(result.instance) < 20

    def test_guide_preserves_ground_atoms(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        guided = OperatorNetwork(program, guide=LinearForestGuide()).run(database)
        unguided = OperatorNetwork(program).run(database)
        query = parse_query("q(X,Y) :- t(X,Y).")
        assert query.evaluate(guided.instance) == query.evaluate(unguided.instance)


class TestNetwork:
    def test_tc_fixpoint(self):
        program, database = parse_program("""
            e(a,b). e(b,c). e(c,d).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        result = OperatorNetwork(program).run(database)
        assert result.saturated
        query = parse_query("q(X,Y) :- t(X,Y).")
        assert len(query.evaluate(result.instance)) == 6

    def test_matches_seminaive(self):
        from repro.datalog.seminaive import seminaive

        program, database = parse_program("""
            e(a,b). e(b,c). e(c,a).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        network_result = OperatorNetwork(program).run(database)
        seminaive_result = seminaive(database, program)
        assert network_result.instance.atoms() == seminaive_result.instance.atoms()

    def test_multi_head_normalized_internally(self):
        program, database = parse_program("""
            p(a).
            r(X,K), s(K) :- p(X).
        """)
        result = OperatorNetwork(program).run(database, max_atoms=100)
        query = parse_query("q(X) :- r(X,W), s(W).")
        assert query.evaluate(result.instance) == {(a,)}

    def test_event_cap(self):
        program, database = parse_program("""
            p(c).
            r(X,Z) :- p(X).
            p(Y) :- r(X,Y).
        """)
        result = OperatorNetwork(program).run(database, max_events=5)
        assert not result.saturated

    def test_intermediate_bindings_counted(self):
        program, database = parse_program("""
            e(a,b). e(b,c).
            t(X,Z) :- e(X,Y), e(Y,Z).
        """)
        result = OperatorNetwork(program).run(database)
        assert result.intermediate_bindings > 0
