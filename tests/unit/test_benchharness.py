"""Unit tests for the scenario-matrix benchmark harness and its report."""

import json

import pytest

from repro.benchsuite import (
    SCALES,
    SUITES,
    CellResult,
    answer_digest,
    applicable_engines,
    check_agreement,
    generate_chasebench,
    generate_industrial,
    generate_iwarded,
    run_cell,
    run_matrix,
    suite_corpus,
)
from repro.api.program import compile_program
from repro.core.terms import Constant

a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestAnswerDigest:
    def test_order_independent(self):
        assert answer_digest([(a, b), (b, c)]) == answer_digest([(b, c), (a, b)])

    def test_content_sensitive(self):
        assert answer_digest([(a, b)]) != answer_digest([(a, c)])
        assert answer_digest([]) != answer_digest([(a,)])

    def test_injective_under_separator_characters(self):
        # Length-prefixed encoding: constants containing the join
        # separators must not collide distinct answer sets.
        assert answer_digest({(Constant("a,b"),)}) != answer_digest(
            {(Constant("a"), Constant("b"))}
        )
        assert answer_digest({(Constant("a\nx"),)}) != answer_digest(
            {(Constant("a"),), (Constant("x"),)}
        )


class TestSuiteCorpus:
    def test_covers_all_families(self):
        corpus = suite_corpus("smoke")
        assert {s.suite for s in corpus} == set(SUITES)

    def test_deterministic(self):
        first = suite_corpus("smoke", base_seed=7)
        second = suite_corpus("smoke", base_seed=7)
        assert [str(s.program) for s in first] == [
            str(s.program) for s in second
        ]
        assert [sorted(map(str, s.database)) for s in first] == [
            sorted(map(str, s.database)) for s in second
        ]

    def test_scales_grow_the_corpus(self):
        smoke = suite_corpus("smoke")
        small = suite_corpus("small")
        assert sum(len(s.database) for s in smoke) < sum(
            len(s.database) for s in small
        )

    def test_suite_filter(self):
        corpus = suite_corpus("smoke", suites=("dbpedia",))
        assert {s.suite for s in corpus} == {"dbpedia"}

    def test_unknown_scale_and_suite_raise(self):
        with pytest.raises(ValueError, match="unknown scale"):
            suite_corpus("galactic")
        with pytest.raises(ValueError, match="unknown suite"):
            suite_corpus("smoke", suites=("tpch",))


class TestApplicableEngines:
    def test_full_program_gets_every_engine(self):
        scenario = generate_industrial(
            seed=1, flavour="control", **SCALES["smoke"]["industrial"]
        )
        analysis = compile_program(scenario.program).analysis
        engines = applicable_engines(
            analysis, ("datalog", "pwl", "ward", "chase", "network")
        )
        assert engines == ["datalog", "pwl", "ward", "chase", "network"]

    def test_existential_pwl_drops_datalog(self):
        scenario = generate_chasebench(seed=1, recursion="linear", entities=6)
        analysis = compile_program(scenario.program).analysis
        engines = applicable_engines(
            analysis, ("datalog", "pwl", "ward", "chase", "network")
        )
        assert "datalog" not in engines
        assert "pwl" in engines and "ward" in engines

    def test_nonpwl_drops_pwl_keeps_ward(self):
        scenario = generate_iwarded(
            seed=1, flavour="nonpwl", **SCALES["smoke"]["iwarded"]
        )
        analysis = compile_program(scenario.program).analysis
        engines = applicable_engines(analysis, ("pwl", "ward"))
        assert engines == ["ward"]


class TestRunCell:
    def test_ok_cell_measurements(self):
        scenario = generate_industrial(
            seed=3, flavour="control", **SCALES["smoke"]["industrial"]
        )
        cell = run_cell(
            scenario, scenario.queries[0], "datalog", "columnar",
            scale="smoke",
        )
        assert cell.status == "ok"
        assert cell.engine == "datalog" and cell.store == "columnar"
        assert cell.answers > 0 and cell.answer_digest
        assert cell.rounds > 0
        assert cell.resident_bytes > 0 and cell.memory
        assert cell.seconds >= 0

    def test_non_saturating_chase_is_recorded_not_raised(self):
        # The iWarded existential core P(x) → ∃z R(x,z); R(x,y) → P(y)
        # never saturates: the strict chase must land as a
        # `not-saturated` cell, not an exception.
        scenario = generate_iwarded(
            seed=4, flavour="linear", **SCALES["smoke"]["iwarded"]
        )
        cell = run_cell(
            scenario, scenario.queries[0], "chase", "instance",
            scale="smoke", budget={"max_atoms": 200},
        )
        assert cell.status == "not-saturated"
        assert "saturat" in cell.detail or "terminate" in cell.detail

    def test_partial_budget_dicts_accepted(self):
        # Regression: a budget naming only the steps/events key used to
        # crash computing the `2 * max_atoms` fallback eagerly.
        scenario = generate_industrial(
            seed=3, flavour="control", **SCALES["smoke"]["industrial"]
        )
        for engine, key in (("chase", "max_steps"), ("network", "max_events")):
            cell = run_cell(
                scenario, scenario.queries[0], engine, "instance",
                scale="smoke", budget={key: 100000},
            )
            assert cell.status == "ok", (engine, cell.detail)

    def test_unknown_scale_label_with_explicit_budget_or_fallback(self):
        # Regression: custom corpora carry whatever scale label the
        # caller chose; chase cells used to KeyError on SCALES lookup.
        scenario = generate_industrial(
            seed=3, flavour="control", **SCALES["smoke"]["industrial"]
        )
        cell = run_cell(
            scenario, scenario.queries[0], "chase", "instance",
            scale="custom",
        )
        assert cell.status == "ok"

    def test_proof_tree_cell_charges_edb_and_abstraction(self):
        scenario = generate_chasebench(seed=5, recursion="linear", entities=6)
        cell = run_cell(
            scenario, scenario.queries[0], "pwl", "instance", scale="smoke"
        )
        assert cell.status == "ok"
        assert any(name.startswith("edb.") for name in cell.memory)
        assert any(name.startswith("abstraction.") for name in cell.memory)


class TestAgreement:
    def _cell(self, engine, store, digest, answers=2, status="ok"):
        return CellResult(
            suite="iwarded", scenario="s", query="q", engine=engine,
            store=store, scale="smoke", status=status, answers=answers,
            answer_digest=digest,
        )

    def test_agreeing_cells_pass(self):
        cells = [self._cell("pwl", "instance", "d1"),
                 self._cell("ward", "columnar", "d1")]
        assert check_agreement(cells) == []

    def test_disagreeing_cells_reported(self):
        cells = [self._cell("pwl", "instance", "d1"),
                 self._cell("ward", "instance", "d2")]
        records = check_agreement(cells)
        assert len(records) == 1
        assert {c["engine"] for c in records[0]["cells"]} == {"pwl", "ward"}

    def test_failed_cells_excluded(self):
        cells = [self._cell("pwl", "instance", "d1"),
                 self._cell("chase", "instance", "", 0, "not-saturated")]
        assert check_agreement(cells) == []


class TestRunMatrixAndReport:
    def test_matrix_on_one_family(self, tmp_path):
        report = run_matrix(
            scale="smoke",
            suites=("chasebench",),
            engines=("pwl", "ward", "chase"),
            stores=("instance", "columnar"),
        )
        assert report.disagreements == [] and report.error_cells == []
        assert {c.engine for c in report.ok_cells} >= {"pwl", "ward"}
        assert {c.store for c in report.ok_cells} == {"instance", "columnar"}

        path = report.write(tmp_path / "nested" / "BENCH_suite.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro/bench-suite/v1"
        assert payload["scale"] == "smoke"
        assert payload["agreement"]["disagreements"] == []
        assert len(payload["cells"]) == len(report.cells)
        cell = payload["cells"][0]
        for key in ("suite", "scenario", "query", "engine", "store",
                    "status", "seconds", "answers", "resident_bytes",
                    "rounds", "events"):
            assert key in cell

    def test_proof_tree_measurement_shared_across_stores(self):
        report = run_matrix(
            scale="smoke", suites=("chasebench",), engines=("pwl",),
            stores=("instance", "columnar", "delta"),
        )
        cells = [c for c in report.cells if c.engine == "pwl"]
        assert len(cells) == 3 and all(c.status == "ok" for c in cells)
        # One measured run, shared: identical numbers, labelled reuse.
        assert len({c.seconds for c in cells}) == 1
        assert len({c.answer_digest for c in cells}) == 1
        assert sum("shared from" in c.detail for c in cells) == 2

    def test_skipped_cells_keep_matrix_rectangular(self):
        report = run_matrix(
            scale="smoke", suites=("iwarded",), engines=("datalog", "ward"),
            stores=("instance",), queries_per_scenario=1,
        )
        statuses = {(c.engine, c.status) for c in report.cells}
        assert ("datalog", "skipped") in statuses
        assert ("ward", "ok") in statuses

    def test_validates_engines_and_stores(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_matrix(scale="smoke", engines=("warp",))
        with pytest.raises(ValueError, match="unknown storage backend"):
            run_matrix(scale="smoke", stores=("ram",))
        with pytest.raises(ValueError, match="queries_per_scenario"):
            run_matrix(scale="smoke", queries_per_scenario=0)
