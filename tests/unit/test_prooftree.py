"""Unit tests for proof trees (Definition 4.6)."""

import pytest

from repro.core.program import Program
from repro.core.terms import Variable
from repro.lang.parser import parse_program, parse_query
from repro.prooftree.decomposition import decompose
from repro.prooftree.resolution import ido_resolvents
from repro.prooftree.specialization import specialize
from repro.prooftree.tree import ProofNode, ProofTree, eq_partition_substitution

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def tc_program() -> Program:
    program, _ = parse_program("""
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    return program


class TestEqPartition:
    def test_identity_partition(self):
        eq = eq_partition_substitution([[X], [Y]])
        assert eq.apply_term(X) == X and eq.apply_term(Y) == Y

    def test_merging_partition(self):
        eq = eq_partition_substitution([[X, Y]])
        assert eq.apply_term(Y) == X

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            eq_partition_substitution([[]])


class TestProofTreeStructure:
    def build_linear_tree(self):
        """Root t(X,Y) → resolve to e(X,Y) (a leaf)."""
        q = parse_query("q(X,Y) :- t(X,Y).")
        tree = ProofTree.trivial(q)
        (resolvent,) = ido_resolvents(tree.root.label, tc_program()[0])
        child = ProofNode(resolvent.query)
        tree.root.children = [child]
        tree.root.operation = "resolution"
        return q, tree

    def test_trivial_tree_valid(self):
        q = parse_query("q(X,Y) :- t(X,Y).")
        tree = ProofTree.trivial(q)
        tree.validate(tc_program())
        assert tree.node_width() == 1
        assert tree.is_linear()

    def test_resolution_edge_validates(self):
        _, tree = self.build_linear_tree()
        tree.validate(tc_program())

    def test_induced_cq_collects_leaves(self):
        q, tree = self.build_linear_tree()
        induced = tree.induced_cq()
        assert induced.output == q.output
        assert induced.atoms[0].predicate == "e"

    def test_bad_root_rejected(self):
        q = parse_query("q(X,Y) :- t(X,Y).")
        wrong_root = ProofNode(parse_query("q(X,Y) :- e(X,Y)."))
        tree = ProofTree(q, [[X], [Y]], wrong_root)
        with pytest.raises(ValueError, match="root"):
            tree.validate(tc_program())

    def test_bogus_child_rejected(self):
        q = parse_query("q(X,Y) :- t(X,Y).")
        tree = ProofTree.trivial(q)
        tree.root.children = [ProofNode(parse_query("q(X,Y) :- u(X,Y)."))]
        with pytest.raises(ValueError, match="neither"):
            tree.validate(tc_program())

    def test_specialization_edge_validates(self):
        q = parse_query("q(X) :- t(X,Y).")
        tree = ProofTree.trivial(q)
        child = ProofNode(specialize(tree.root.label, promote=(Y,)))
        tree.root.children = [child]
        tree.validate(tc_program())

    def test_decomposition_edge_validates(self):
        q = parse_query("q(X) :- t(X,Y), t(X,Z).")
        tree = ProofTree.trivial(q)
        children = [ProofNode(c) for c in decompose(tree.root.label)]
        assert len(children) == 2
        tree.root.children = children
        tree.validate(tc_program())
        assert tree.is_linear()  # both children are leaves

    def test_partition_merges_outputs_in_root(self):
        q = parse_query("q(X,Y) :- t(X,Y).")
        tree = ProofTree.trivial(q, partition=[[X, Y]])
        assert tree.root.label.atoms[0].args == (X, X)
        tree.validate(tc_program())

    def test_non_linear_tree_detected(self):
        q = parse_query("q(X) :- t(X,Y), t(X,Z).")
        tree = ProofTree.trivial(q)
        children = [ProofNode(c) for c in decompose(tree.root.label)]
        tree.root.children = children
        # expand both children → two non-leaf children → not linear
        for child in children:
            resolved = next(iter(ido_resolvents(child.label, tc_program()[1])))
            child.children = [ProofNode(resolved.query)]
        assert not tree.is_linear()

    def test_node_width(self):
        q = parse_query("q(X,Y) :- t(X,Y).")
        tree = ProofTree.trivial(q)
        (step,) = ido_resolvents(tree.root.label, tc_program()[1])
        tree.root.children = [ProofNode(step.query)]
        assert tree.node_width() == 2
