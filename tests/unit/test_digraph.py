"""Unit tests for the dependency-free directed graph."""

import pytest

from repro.reachability.digraph import DiGraph


def diamond() -> DiGraph:
    return DiGraph.from_pairs([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestBasics:
    def test_nodes_and_edges(self):
        g = diamond()
        assert len(g) == 4
        assert g.edge_count == 4
        assert set(g.nodes()) == {"a", "b", "c", "d"}
        assert ("a", "b") in set(g.edges())

    def test_duplicate_edges_ignored(self):
        g = DiGraph.from_pairs([("a", "b"), ("a", "b")])
        assert g.edge_count == 1

    def test_adjacency(self):
        g = diamond()
        assert g.successors("a") == {"b", "c"}
        assert g.predecessors("d") == {"b", "c"}
        assert g.out_degree("a") == 2
        assert g.in_degree("a") == 0

    def test_isolated_node(self):
        g = diamond()
        g.add_node("z")
        assert "z" in g
        assert g.successors("z") == set()

    def test_reverse(self):
        g = diamond().reverse()
        assert g.successors("d") == {"b", "c"}
        assert g.successors("a") == set()


class TestTraversal:
    def test_reachable_from(self):
        g = diamond()
        assert g.reachable_from("a") == {"a", "b", "c", "d"}
        assert g.reachable_from("b") == {"b", "d"}
        assert g.reachable_from("missing") == set()

    def test_reachable_handles_cycles(self):
        g = DiGraph.from_pairs([("a", "b"), ("b", "a"), ("b", "c")])
        assert g.reachable_from("a") == {"a", "b", "c"}


class TestSCC:
    def test_dag_gives_singletons(self):
        components = diamond().sccs()
        assert sorted(len(c) for c in components) == [1, 1, 1, 1]

    def test_cycle_is_one_component(self):
        g = DiGraph.from_pairs(
            [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
        )
        components = {frozenset(c) for c in g.sccs()}
        assert frozenset({"a", "b", "c"}) in components
        assert frozenset({"d"}) in components

    def test_condensation_is_topological(self):
        g = DiGraph.from_pairs(
            [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")]
        )
        dag, component_of = g.condensation()
        assert len(dag) == 2
        assert component_of["a"] == component_of["b"]
        assert component_of["c"] == component_of["d"]
        # Edges go from lower to higher component id.
        for u, v in dag.edges():
            assert u < v

    def test_condensation_of_dag_preserves_edges(self):
        dag, component_of = diamond().condensation()
        assert len(dag) == 4
        assert dag.edge_count == 4


class TestTopologicalOrder:
    def test_diamond_order(self):
        order = diamond().topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_raises(self):
        g = DiGraph.from_pairs([("a", "b"), ("b", "a")])
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()
