"""Unit tests for the incremental view-maintenance subsystem."""

import pytest

from repro.api import Session
from repro.api.program import compile_program
from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant, Variable
from repro.datalog.seminaive import seminaive, seminaive_delta_rounds
from repro.incremental import (
    ChangeSet,
    FixpointMaintainer,
    MutationLog,
    SupportIndex,
    compose_changes,
    unmaintainable_reason,
)
from repro.lang.parser import parse_program
from repro.storage import BACKENDS

X, Y = Variable("X"), Variable("Y")
a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


def f(predicate, *names):
    return Atom(predicate, tuple(Constant(n) for n in names))


TC_SOURCE = """
    e(a,b). e(b,c).
    t(X,Y) :- e(X,Y).
    t(X,Z) :- e(X,Y), t(Y,Z).
"""

#: Adds a counting stratum on top of the DRed one.
LAYERED_SOURCE = TC_SOURCE + """
    reach(X) :- t(X,Y).
"""


class TestChangeSet:
    def test_net_last_wins(self):
        changes = ChangeSet.of(inserts=[f("e", "a", "b")]) \
            .ops + ChangeSet.retracting([f("e", "a", "b")]).ops
        net_in, net_out = ChangeSet(changes).net()
        assert net_in == ()
        assert net_out == (f("e", "a", "b"),)

    def test_parse_signs_comments_and_bare_atoms(self):
        changes = ChangeSet.parse(
            "# comment\n+e(a,b).\n- e(b,c).\ne(c,d)\n\n"
        )
        assert changes.inserts == (f("e", "a", "b"), f("e", "c", "d"))
        assert changes.retracts == (f("e", "b", "c"),)

    def test_parse_rejects_non_ground(self):
        with pytest.raises(ValueError, match="line 1.*ground"):
            ChangeSet.parse("+e(X,b).")

    def test_parse_error_carries_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            ChangeSet.parse("+e(a,b).\n+e(a,.\n")

    def test_bool_and_describe(self):
        assert not ChangeSet()
        changes = ChangeSet.of(
            inserts=[f("e", "a", "b")], retracts=[f("e", "b", "c")]
        )
        assert changes and len(changes) == 2
        assert changes.describe() == "ChangeSet(+1, -1)"


class TestComposeChanges:
    def test_insert_then_retract_cancels(self):
        merged = compose_changes(
            [((f("e", "a", "b"),), ()), ((), (f("e", "a", "b"),))]
        )
        assert merged == ((), ())

    def test_retract_then_insert_cancels(self):
        merged = compose_changes(
            [((), (f("e", "a", "b"),)), ((f("e", "a", "b"),), ())]
        )
        assert merged == ((), ())

    def test_independent_batches_union(self):
        merged = compose_changes(
            [((f("e", "a", "b"),), ()), ((), (f("e", "b", "c"),))]
        )
        assert merged == ((f("e", "a", "b"),), (f("e", "b", "c"),))


class TestMutationLog:
    def test_watermark_and_since(self):
        log = MutationLog()
        log.record(1, (f("e", "a", "b"),), ())
        log.record(2, (), (f("e", "a", "b"),))
        assert log.watermark == 2
        assert log.since(2, 2) == []
        pending = log.since(0, 2)
        assert [r.version for r in pending] == [1, 2]

    def test_since_detects_gaps(self):
        log = MutationLog(max_entries=1)
        log.record(1, (f("e", "a", "b"),), ())
        log.record(2, (f("e", "b", "c"),), ())  # evicts version 1
        assert log.since(0, 2) is None
        assert log.since(1, 2) is not None


class TestSeminaiveDeltaRounds:
    def test_resume_equals_from_scratch(self):
        program, database = parse_program(TC_SOURCE)
        fixpoint = seminaive(database, program).instance
        new = [f("e", "c", "d")]
        for _ in seminaive_delta_rounds(fixpoint, program, new):
            pass
        database.add_all(new)
        assert set(fixpoint) == set(seminaive(database, program).instance)

    def test_rounds_carry_only_new_work(self):
        program, database = parse_program(TC_SOURCE)
        fixpoint = seminaive(database, program).instance
        events = list(
            seminaive_delta_rounds(fixpoint, program, [f("e", "c", "d")])
        )
        assert events[0].staged == (f("e", "c", "d"),)
        staged = {atom for event in events[1:] for atom in event.staged}
        # every staged fact mentions d — nothing old is re-derived
        assert staged and all(d in atom.args for atom in staged)


class TestSupportIndex:
    def test_gain_lose_and_zero(self):
        index = SupportIndex()
        assert index.gain(f("r", "a")) == 1
        assert index.gain(f("r", "a"), 2) == 3
        assert index.lose(f("r", "a")) == 2
        assert index.lose(f("r", "a"), 2) == 0
        assert f("r", "a") not in index


class TestFixpointMaintainer:
    def _maintainer(self, source, store="instance"):
        program, database = parse_program(source)
        compiled = compile_program(program)
        fixpoint = seminaive(
            database, compiled.analysis.normalized, store=store
        ).instance
        return compiled, database, fixpoint, FixpointMaintainer(
            compiled, fixpoint
        )

    def test_rejects_existential_programs(self):
        program, _ = parse_program("p(a). r(X,Z) :- p(X).")
        compiled = compile_program(program)
        assert unmaintainable_reason(compiled.analysis) is not None
        with pytest.raises(ValueError, match="not maintainable"):
            FixpointMaintainer(compiled, Database())

    @pytest.mark.parametrize("store", BACKENDS)
    def test_insert_fast_path(self, store):
        compiled, edb, fixpoint, maintainer = self._maintainer(
            TC_SOURCE, store
        )
        edb.add(f("e", "c", "d"))
        stats = maintainer.apply([f("e", "c", "d")], [], edb=edb)
        assert f("t", "a", "d") in fixpoint
        assert stats.derived_added == 3  # t(c,d), t(b,d), t(a,d)
        assert stats.removed == 0

    @pytest.mark.parametrize("store", BACKENDS)
    def test_retract_dred(self, store):
        compiled, edb, fixpoint, maintainer = self._maintainer(
            TC_SOURCE, store
        )
        edb.discard(f("e", "b", "c"))
        stats = maintainer.apply([], [f("e", "b", "c")], edb=edb)
        assert set(fixpoint) == {f("e", "a", "b"), f("t", "a", "b")}
        assert stats.overdeleted == 2  # t(b,c), t(a,c)
        assert stats.removed == 3      # plus the EDB fact itself
        assert stats.dred_strata >= 1

    def test_rederivation_keeps_alternative_proofs(self):
        compiled, edb, fixpoint, maintainer = self._maintainer("""
            e(a,b). g(a,b).
            t(X,Y) :- e(X,Y).
            t(X,Y) :- g(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        edb.discard(f("e", "a", "b"))
        stats = maintainer.apply([], [f("e", "a", "b")], edb=edb)
        assert f("t", "a", "b") in fixpoint
        assert stats.rederived >= 1

    def test_counting_stratum_deletes_without_rederive(self):
        compiled, edb, fixpoint, maintainer = self._maintainer(
            LAYERED_SOURCE
        )
        edb.discard(f("e", "b", "c"))
        stats = maintainer.apply([], [f("e", "b", "c")], edb=edb)
        assert f("reach", "b") not in fixpoint
        assert f("reach", "a") in fixpoint
        assert stats.counting_strata == 1

    def test_counting_survives_multi_support(self):
        compiled, edb, fixpoint, maintainer = self._maintainer(
            LAYERED_SOURCE
        )
        # reach(a) is supported by t(a,b) and t(a,c); killing one
        # support must not delete it (counting, not set-diff).
        edb.add(f("e", "a", "c"))
        maintainer.apply([f("e", "a", "c")], [], edb=edb)
        edb.discard(f("e", "a", "b"))
        maintainer.apply([], [f("e", "a", "b")], edb=edb)
        assert f("reach", "a") in fixpoint
        assert f("t", "a", "c") in fixpoint

    def test_edb_assertion_of_derived_predicate(self):
        compiled, edb, fixpoint, maintainer = self._maintainer(TC_SOURCE)
        # assert t(c,a) directly, then retract it again
        edb.add(f("t", "c", "a"))
        maintainer.apply([f("t", "c", "a")], [], edb=edb)
        assert f("t", "a", "a") in fixpoint  # derived through the cycle
        edb.discard(f("t", "c", "a"))
        maintainer.apply([], [f("t", "c", "a")], edb=edb)
        program, database = parse_program(TC_SOURCE)
        assert set(fixpoint) == set(seminaive(database, program).instance)

    def test_mixed_batch_is_one_pass(self):
        compiled, edb, fixpoint, maintainer = self._maintainer(
            LAYERED_SOURCE
        )
        edb.discard(f("e", "a", "b"))
        edb.add(f("e", "a", "c"))
        stats = maintainer.apply(
            [f("e", "a", "c")], [f("e", "a", "b")], edb=edb
        )
        expected, _ = parse_program(
            "e(a,c). e(b,c)." + TC_SOURCE.split(".", 2)[2]
        )
        assert stats.edb_inserted == 1 and stats.edb_retracted == 1
        assert f("t", "a", "c") in fixpoint
        assert f("t", "a", "b") not in fixpoint
        assert f("reach", "a") in fixpoint


class TestSessionApply:
    def test_watermark_bumps_once_per_effective_batch(self):
        session = Session()
        session.load(TC_SOURCE)
        version = session.edb_version
        report = session.apply(
            ChangeSet.of(inserts=[f("e", "c", "d")],
                         retracts=[f("e", "a", "b")])
        )
        assert session.edb_version == version + 1
        assert report.version == session.edb_version
        assert session.mutations.watermark == session.edb_version

    def test_noop_batch_does_not_bump(self):
        session = Session()
        session.load(TC_SOURCE)
        version = session.edb_version
        report = session.apply(
            ChangeSet.of(inserts=[f("e", "a", "b")],   # already present
                         retracts=[f("e", "z", "z")])  # never present
        )
        assert session.edb_version == version
        assert not report.maintained and not report.fallbacks

    def test_cancelling_ops_are_noop(self):
        session = Session()
        session.load(TC_SOURCE)
        version = session.edb_version
        session.apply(ChangeSet((("+", f("e", "c", "d")),
                                 ("-", f("e", "c", "d")))))
        assert session.edb_version == version

    def test_retract_facts_convenience(self):
        session = Session()
        session.load(TC_SOURCE)
        assert session.retract_facts([f("e", "b", "c")]) == 1
        assert session.answers("q(X,Y) :- t(X,Y).") == {(a, b)}

    def test_lagging_entry_caught_up_through_log(self):
        """Direct EDB writes (recorded late by a subsequent apply) are
        healed: the entry replays the composed missed batches."""
        session = Session()
        session.load(TC_SOURCE)
        session.query("q(X,Y) :- t(X,Y).").to_set()
        report = session.apply(inserts=[f("e", "c", "d")])
        assert report.maintained
        second = session.apply(retracts=[f("e", "a", "b")])
        assert second.maintained
        stream = session.query("q(X,Y) :- t(X,Y).")
        assert stream.to_set() == frozenset(
            {(b, c), (c, d), (b, d)}
        )
        assert stream.stats.from_cache

    def test_per_store_and_method_entries_all_maintained(self):
        session = Session()
        session.load(TC_SOURCE)
        session.query("q(X,Y) :- t(X,Y).", method="datalog").to_set()
        session.query("q(X,Y) :- t(X,Y).", method="network").to_set()
        report = session.apply(inserts=[f("e", "c", "d")])
        assert len(report.maintained) == 2
        for method in ("datalog", "network"):
            stream = session.query("q(X,Y) :- t(X,Y).", method=method)
            assert (a, d) in stream.to_set()
            assert stream.stats.from_cache

    def test_plan_reports_maintainability(self):
        session = Session()
        session.load(TC_SOURCE)
        plan = session.plan("q(X,Y) :- t(X,Y).")
        assert plan.maintainable
        assert "incremental" in plan.explain()
        existential = Session()
        existential.load("p(a). r(X,Z) :- p(X).")
        plan = existential.plan("q(X) :- r(X,Y).", method="chase")
        assert not plan.maintainable
        assert "recompute on EDB change" in plan.explain()

    def test_report_describe_mentions_strata(self):
        session = Session()
        session.load(LAYERED_SOURCE)
        session.query("q(X) :- reach(X).").to_set()
        report = session.apply(retracts=[f("e", "b", "c")])
        text = report.describe()
        assert "maintained datalog×instance fixpoint" in text
        assert "DRed" in text and "counting" in text


class TestLazyCatchupReporting:
    def test_lazy_fallback_reason_is_recorded(self):
        """A lagging cache healed (or dropped) on the read path leaves
        its report in session.catchup_reports instead of vanishing."""
        session = Session()
        session.load(TC_SOURCE)
        plan = session.plan("q(X,Y) :- t(X,Y).")
        session.query("q(X,Y) :- t(X,Y).").to_set()
        session.apply(inserts=[f("e", "c", "d")])
        # Simulate a direct-EDB mutation recorded late: rewind the
        # entry's watermark past the retained log window.
        entry = session._fixpoints[session._fixpoint_key(plan)]
        entry.version -= 1
        session.mutations.entries.clear()
        assert session.get_fixpoint(plan) is None  # dropped: log gap
        assert session.catchup_reports
        assert "mutation log" in session.catchup_reports[-1].fallbacks[0][1]
