"""Unit tests for wardedness (Definition 3.1)."""

from repro.analysis.wardedness import is_warded, wardedness_report
from repro.benchsuite.dbpedia import example_33_program
from repro.lang.parser import parse_program
from repro.tiling.reduction import tiling_program


def program_of(text: str):
    program, _ = parse_program(text)
    return program


class TestWarded:
    def test_datalog_is_warded(self):
        # Full TGDs have no harmful variables at all.
        assert is_warded(program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """))

    def test_paper_core_example_is_warded(self):
        assert is_warded(program_of("""
            r(X, Z) :- p(X).
            p(Y) :- r(X, Y).
        """))

    def test_example_33_is_warded_with_expected_wards(self):
        report = wardedness_report(example_33_program())
        assert report.warded
        # The rules that need wards are exactly those with a dangerous
        # frontier variable at type[1]/triple[1]/triple[3]; the ward is
        # the type/triple body atom (the underlined atoms in the paper).
        needing = [info for info in report.per_tgd if info.needs_ward]
        assert len(needing) == 4
        for info in needing:
            assert info.ward is not None
            assert info.ward.predicate in {"type", "triple"}

    def test_single_rule_with_existential_is_warded(self):
        assert is_warded(program_of("r(X, Z) :- p(X)."))


class TestNotWarded:
    def test_dangerous_variables_in_two_atoms(self):
        # Both x and x' are dangerous but never co-occur in one atom.
        program = program_of("""
            r(X, Z) :- p(X).
            s(X, Y) :- r(W, X), r(V, Y).
        """)
        assert not is_warded(program)
        report = wardedness_report(program)
        violations = report.violations()
        assert len(violations) == 1
        assert "single body atom" in violations[0].failure

    def test_harmful_join_with_ward(self):
        # X is dangerous and r(X,Y) would be the ward, but it shares Y
        # with p(Y), and Y is harmful (it occurs only at affected
        # positions r[2] and p[1]) — a harmful join, hence not warded.
        program = program_of("""
            r(X, Z) :- p(X).
            p(Y) :- r(X, Y).
            s(X) :- r(X, Y), p(Y).
        """)
        assert not is_warded(program)
        report = wardedness_report(program)
        assert any(
            "harmful join" in info.failure for info in report.violations()
        )

    def test_tiling_program_is_not_warded(self):
        # Theorem 5.1 relies on the reduction program being outside WARD.
        assert not is_warded(tiling_program())


class TestReport:
    def test_report_covers_every_tgd(self):
        program = example_33_program()
        report = wardedness_report(program)
        assert len(report.per_tgd) == len(program)

    def test_rules_without_dangerous_variables_need_no_ward(self):
        report = wardedness_report(program_of("t(X,Y) :- e(X,Y)."))
        assert not report.per_tgd[0].needs_ward
        assert report.per_tgd[0].warded
