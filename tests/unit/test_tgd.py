"""Unit tests for TGDs and the single-head normal form."""

import pytest

from repro.core.atoms import Atom
from repro.core.program import Program
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD, single_head_program_atoms

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


def tgd(body, head, label=""):
    return TGD(tuple(body), tuple(head), label=label)


class TestTGDStructure:
    def test_frontier_and_existentials(self):
        t = tgd([Atom("p", (X, Y))], [Atom("r", (X, Z))])
        assert t.frontier() == {X}
        assert t.existential_variables() == {Z}
        assert t.body_variables() == {X, Y}

    def test_is_full(self):
        assert tgd([Atom("p", (X,))], [Atom("r", (X,))]).is_full()
        assert not tgd([Atom("p", (X,))], [Atom("r", (X, Z))]).is_full()

    def test_empty_body_or_head_rejected(self):
        with pytest.raises(ValueError):
            TGD((), (Atom("r", (X,)),))
        with pytest.raises(ValueError):
            TGD((Atom("r", (X,)),), ())

    def test_rename_is_uniform(self):
        t = tgd([Atom("p", (X, Y))], [Atom("r", (X, Z))])
        renamed = t.rename("7")
        assert renamed.body[0].args[0] == Variable("X@7")
        # frontier structure preserved
        assert len(renamed.frontier()) == 1
        assert len(renamed.existential_variables()) == 1

    def test_validate_rejects_constants_by_default(self):
        t = tgd([Atom("p", (Constant("a"),))], [Atom("r", (X,))])
        with pytest.raises(ValueError, match="constant"):
            t.validate()
        t.validate(allow_constants=True)  # no raise

    def test_label_not_part_of_identity(self):
        t1 = tgd([Atom("p", (X,))], [Atom("r", (X,))], label="one")
        t2 = tgd([Atom("p", (X,))], [Atom("r", (X,))], label="two")
        assert t1 == t2


class TestSingleHead:
    def test_single_head_passthrough(self):
        t = tgd([Atom("p", (X,))], [Atom("r", (X,))])
        assert single_head_program_atoms([t]) == [t]

    def test_multi_head_split(self):
        t = tgd([Atom("p", (X, Y))], [Atom("r", (X, Z)), Atom("s", (Z, Y))])
        result = single_head_program_atoms([t])
        assert len(result) == 3
        aux_rule = result[0]
        assert aux_rule.head[0].predicate.startswith("Aux")
        # the auxiliary atom carries frontier + existential variables
        assert set(aux_rule.head[0].args) == {X, Y, Z}
        # each projection reproduces one original head atom
        projected = {r.head[0].predicate for r in result[1:]}
        assert projected == {"r", "s"}

    def test_single_head_preserves_certain_answers(self):
        from repro.chase.runner import chase
        from repro.core.instance import Database
        from repro.lang.parser import parse_query

        a = Constant("a")
        t = tgd([Atom("p", (X,))], [Atom("r", (X, Z)), Atom("s", (Z,))])
        program = Program([t])
        database = Database([Atom("p", (a,))])
        query = parse_query("q(X) :- r(X, W), s(W).")
        direct = chase(database, program).evaluate(query)
        normalized = chase(database, program.single_head()).evaluate(query)
        assert direct == normalized == {(a,)}

    def test_program_single_head_idempotent(self):
        t = tgd([Atom("p", (X,))], [Atom("r", (X,))])
        program = Program([t])
        assert program.single_head() is program


class TestProgram:
    def test_schema(self):
        program = Program([tgd([Atom("p", (X,))], [Atom("r", (X, Z))])])
        assert program.schema() == {"p": 1, "r": 2}

    def test_edb_idb_split(self):
        program = Program(
            [
                tgd([Atom("e", (X, Y))], [Atom("t", (X, Y))]),
                tgd([Atom("t", (X, Y))], [Atom("u", (X,))]),
            ]
        )
        assert program.extensional_predicates() == {"e"}
        assert program.intensional_predicates() == {"t", "u"}

    def test_max_body_size(self):
        program = Program(
            [
                tgd([Atom("e", (X, Y))], [Atom("t", (X, Y))]),
                tgd([Atom("e", (X, Y)), Atom("t", (Y, Z))], [Atom("t", (X, Z))]),
            ]
        )
        assert program.max_body_size() == 2

    def test_arity_conflict_rejected(self):
        program = Program(
            [
                tgd([Atom("e", (X,))], [Atom("t", (X,))]),
                tgd([Atom("e", (X, Y))], [Atom("t", (X,))]),
            ]
        )
        with pytest.raises(ValueError, match="arities"):
            program.schema()
