"""Unit tests for predicate levels and node-width bounds (Section 4.2)."""

from repro.analysis.levels import (
    max_level,
    node_width_bound_pwl,
    node_width_bound_ward,
    predicate_levels,
)
from repro.lang.parser import parse_program, parse_query


def program_of(text: str):
    program, _ = parse_program(text)
    return program


class TestLevels:
    def test_source_predicates_have_level_one(self):
        levels = predicate_levels(program_of("t(X,Y) :- e(X,Y)."))
        assert levels["e"] == 1
        assert levels["t"] == 2

    def test_chain_levels_increase(self):
        levels = predicate_levels(program_of("""
            t(X,Y) :- e(X,Y).
            u(X) :- t(X,Y).
            v(X) :- u(X).
        """))
        assert levels == {"e": 1, "t": 2, "u": 3, "v": 4}

    def test_recursive_scc_shares_external_level(self):
        # Mutually recursive edges are excluded from the recurrence.
        levels = predicate_levels(program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """))
        assert levels["e"] == 1
        assert levels["t"] == 2  # the t→t edge does not raise the level

    def test_two_predicate_cycle(self):
        levels = predicate_levels(program_of("""
            r(X, Z) :- p(X).
            p(Y) :- r(X, Y).
        """))
        # p and r are mutually recursive; neither has an external
        # predecessor, so both sit at level 1.
        assert levels == {"p": 1, "r": 1}

    def test_level_after_recursive_block(self):
        levels = predicate_levels(program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
            u(X) :- t(X,Y).
        """))
        assert levels["u"] == 3

    def test_max_level(self):
        assert max_level(program_of("u(X) :- t(X,Y). t(X,Y) :- e(X,Y).")) == 3


class TestBounds:
    def test_pwl_bound_formula(self):
        # f = (|q|+1) · max-level · max-body.
        program = program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        assert node_width_bound_pwl(query, program) == (1 + 1) * 2 * 2

    def test_ward_bound_formula(self):
        # f = 2 · max(|q|, max-body).
        program = program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y), t(Y,X), t(X,X).")
        assert node_width_bound_ward(query, program) == 2 * 3

    def test_bounds_grow_with_query(self):
        program = program_of("t(X,Y) :- e(X,Y).")
        q1 = parse_query("q(X) :- t(X,Y).")
        q2 = parse_query("q(X) :- t(X,Y), t(Y,Z), t(Z,W).")
        assert node_width_bound_pwl(q2, program) > node_width_bound_pwl(q1, program)
