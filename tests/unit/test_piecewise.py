"""Unit tests for piece-wise linearity and related classes (Section 4/5)."""

from repro.analysis.piecewise import (
    is_intensionally_linear,
    is_linear_datalog,
    is_piecewise_linear,
    piecewise_report,
)
from repro.benchsuite.dbpedia import example_33_program
from repro.lang.parser import parse_program
from repro.tiling.reduction import tiling_program


def program_of(text: str):
    program, _ = parse_program(text)
    return program


class TestPWL:
    def test_linear_tc_is_pwl(self):
        assert is_piecewise_linear(program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """))

    def test_doubling_tc_is_not_pwl(self):
        program = program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        assert not is_piecewise_linear(program)
        report = piecewise_report(program)
        assert len(report.violations()) == 1
        _, atoms = report.violations()[0]
        assert len(atoms) == 2

    def test_example_33_is_pwl_but_not_linear(self):
        program = example_33_program()
        assert is_piecewise_linear(program)
        # The Type rule joins two intensional predicates, so the set is
        # not intensionally linear — the paper's motivation for PWL.
        assert not is_intensionally_linear(program)

    def test_nonrecursive_program_is_pwl(self):
        assert is_piecewise_linear(program_of("""
            t(X,Y) :- e(X,Y).
            u(X) :- t(X,Y), t(Y,Z).
        """))

    def test_tiling_program_is_pwl(self):
        # Theorem 5.1: the reduction lives inside PWL.
        assert is_piecewise_linear(tiling_program())

    def test_mutual_recursion_through_two_predicates(self):
        # Each rule has one mutually recursive body atom: PWL.
        assert is_piecewise_linear(program_of("""
            t(X,Y) :- e(X,Y).
            s(X,Z) :- t(X,Y), e(Y,Z).
            t(X,Z) :- s(X,Y), e(Y,Z).
        """))
        # Two mutually recursive atoms in one body: not PWL.
        assert not is_piecewise_linear(program_of("""
            t(X,Y) :- e(X,Y).
            s(X,Z) :- t(X,Y), t(Y,Z).
            t(X,Z) :- s(X,Y), e(Y,Z).
        """))


class TestIL:
    def test_il_counts_intensional_atoms(self):
        # t and u are intensional; the last rule joins both.
        program = program_of("""
            t(X,Y) :- e(X,Y).
            u(X,Y) :- e(Y,X).
            v(X,Z) :- t(X,Y), u(Y,Z).
        """)
        assert not is_intensionally_linear(program)
        assert is_piecewise_linear(program)  # no recursion at all

    def test_linear_datalog(self):
        linear = program_of("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        assert is_linear_datalog(linear)
        with_existential = program_of("r(X,Z) :- p(X).")
        assert not is_linear_datalog(with_existential)

    def test_il_subset_of_pwl(self):
        # IL programs are PWL: sample a few shapes.
        texts = [
            "t(X,Y) :- e(X,Y). t(X,Z) :- e(X,Y), t(Y,Z).",
            "r(X,Z) :- p(X). p(Y) :- r(X,Y).",
            "a(X) :- b(X). b(X) :- e(X, Y).",
        ]
        for text in texts:
            program = program_of(text)
            if is_intensionally_linear(program):
                assert is_piecewise_linear(program)
