"""Unit tests for the Section 4.1 UCQ unfolding."""

import pytest

from repro.core.terms import Constant
from repro.lang.parser import parse_program, parse_query
from repro.reasoning import certain_answers
from repro.rewriting import unfold
from repro.storage import BACKENDS, ColumnarStore

a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestNonRecursive:
    def test_single_rule_unfolds_once(self):
        program, database = parse_program("""
            e(a,b).
            t(X,Y) :- e(X,Y).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = unfold(query, program)
        assert rewriting.complete
        # q itself plus the one resolvent over e.
        assert len(rewriting) == 2
        assert rewriting.evaluate(database) == {(a, b)}

    def test_chain_of_rules(self):
        program, database = parse_program("""
            base(a).
            mid(X) :- base(X).
            top(X) :- mid(X).
        """)
        query = parse_query("q(X) :- top(X).")
        rewriting = unfold(query, program)
        assert rewriting.complete
        assert rewriting.evaluate(database) == {(a,)}

    def test_existential_rule_unfolds(self):
        program, database = parse_program("""
            p(a).
            r(X,K) :- p(X).
        """)
        query = parse_query("q(X) :- r(X,Y).")
        rewriting = unfold(query, program)
        assert rewriting.complete
        assert rewriting.evaluate(database) == {(a,)}

    def test_existential_blocks_shared_variable(self):
        # q(X) :- r(X,Y), s(Y): Y is shared, so the invented value of
        # r cannot discharge the pattern — no unfolding answer.
        program, database = parse_program("""
            p(a).
            r(X,K) :- p(X).
        """)
        query = parse_query("q(X) :- r(X,Y), s(Y).")
        rewriting = unfold(query, program)
        assert rewriting.complete
        assert rewriting.evaluate(database) == set()

    def test_matches_certain_answers_nonrecursive(self):
        program, database = parse_program("""
            visit(a,b). visit(b,c). special(b).
            hop(X,Y)  :- visit(X,Y).
            mark(X)   :- hop(X,Y), special(Y).
        """)
        query = parse_query("q(X) :- mark(X).")
        rewriting = unfold(query, program)
        assert rewriting.complete
        assert rewriting.evaluate(database) == certain_answers(
            query, database, program
        )


class TestRecursive:
    def tc_setup(self):
        return parse_program("""
            e(a,b). e(b,c).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)

    def test_truncation_reported(self):
        program, _ = self.tc_setup()
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = unfold(query, program, max_depth=2)
        assert not rewriting.complete

    def test_truncated_is_sound(self):
        program, database = self.tc_setup()
        query = parse_query("q(X,Y) :- t(X,Y).")
        exact = certain_answers(query, database, program)
        for depth in (0, 1, 2, 4):
            rewriting = unfold(query, program, max_depth=depth)
            assert rewriting.evaluate(database) <= exact

    def test_deep_enough_budget_finds_all_on_fixed_db(self):
        program, database = self.tc_setup()
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = unfold(query, program, max_depth=8)
        # qΣ is infinite (complete=False) but the database only needs
        # paths of length ≤ 2, which depth 8 covers.
        assert rewriting.evaluate(database) == certain_answers(
            query, database, program
        )

    def test_max_cqs_budget(self):
        program, _ = self.tc_setup()
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = unfold(query, program, max_depth=10, max_cqs=3)
        assert len(rewriting) <= 3
        assert not rewriting.complete

    def test_max_atoms_budget(self):
        program, database = self.tc_setup()
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = unfold(query, program, max_depth=10, max_atoms=2)
        assert all(d.width() <= 2 for d in rewriting.disjuncts)
        assert rewriting.evaluate(database) <= certain_answers(
            query, database, program
        )


class TestEvaluateStores:
    """Regression: ``UCQRewriting.evaluate`` used to rebuild
    ``database.to_instance()`` on every call and ignore the store
    backend entirely; it now reuses any FactStore in place and honours
    an explicit backend choice, with identical answers everywhere."""

    def setup_case(self):
        program, database = parse_program("""
            visit(a,b). visit(b,c). special(b). special(c).
            hop(X,Y)  :- visit(X,Y).
            mark(X)   :- hop(X,Y), special(Y).
        """)
        query = parse_query("q(X) :- mark(X).")
        return unfold(query, program), database

    def test_equivalent_across_backends(self):
        rewriting, database = self.setup_case()
        reference = rewriting.evaluate(database)
        assert reference == {(a,), (b,)}
        for backend in BACKENDS:
            assert rewriting.evaluate(database, store=backend) == reference

    def test_reuses_fact_store_without_copy(self):
        rewriting, database = self.setup_case()
        store = ColumnarStore(database)
        before = store.stats["cache_misses"] + store.stats["cache_hits"]
        assert rewriting.evaluate(store) == rewriting.evaluate(database)
        # The probes ran against the store we passed — no hidden
        # Instance rebuild (the old behaviour never touched it).
        after = store.stats["cache_misses"] + store.stats["cache_hits"]
        assert after > before

    def test_repeated_evaluation_does_not_copy(self):
        rewriting, database = self.setup_case()
        first = rewriting.evaluate(database)
        assert rewriting.evaluate(database) == first

    def test_unknown_backend_rejected(self):
        rewriting, database = self.setup_case()
        with pytest.raises(ValueError, match="unknown storage backend"):
            rewriting.evaluate(database, store="bogus")


class TestValidation:
    def test_negative_depth_rejected(self):
        program, _ = parse_program("t(X,Y) :- e(X,Y).")
        query = parse_query("q(X,Y) :- t(X,Y).")
        with pytest.raises(ValueError, match="non-negative"):
            unfold(query, program, max_depth=-1)

    def test_zero_depth_keeps_only_query(self):
        program, database = parse_program("""
            e(a,b).
            t(X,Y) :- e(X,Y).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = unfold(query, program, max_depth=0)
        assert len(rewriting) == 1
        assert not rewriting.complete
        assert rewriting.evaluate(database) == set()
