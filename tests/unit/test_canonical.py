"""Unit tests for canonical renaming of CQ bodies."""

import itertools

from repro.core.atoms import Atom
from repro.core.terms import Constant, Variable
from repro.lang.parser import parse_query
from repro.prooftree.canonical import (
    canonical_form,
    canonical_variable,
    is_canonical_variable,
)

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
a, b = Constant("a"), Constant("b")


class TestCanonicalForm:
    def test_renaming_invariance(self):
        q1 = parse_query("q() :- r(X,Y), t(Y,Z), t(Z,W).")
        q2 = parse_query("q() :- t(B,C), r(A,B), t(C,D).")
        assert canonical_form(q1.atoms) == canonical_form(q2.atoms)

    def test_structure_distinguished(self):
        chain = parse_query("q() :- t(X,Y), t(Y,Z).")
        fork = parse_query("q() :- t(X,Y), t(X,Z).")
        assert canonical_form(chain.atoms) != canonical_form(fork.atoms)

    def test_atom_order_irrelevant(self):
        atoms = (Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("u", (Z,)))
        base = canonical_form(atoms)
        for perm in itertools.permutations(atoms):
            assert canonical_form(perm) == base

    def test_constants_frozen(self):
        q1 = parse_query("q() :- r(a, X).")
        q2 = parse_query("q() :- r(b, X).")
        assert canonical_form(q1.atoms) != canonical_form(q2.atoms)

    def test_frozen_variables_not_renamed(self):
        atoms = (Atom("r", (X, Y)),)
        form = canonical_form(atoms, frozen={X})
        assert form[0].args[0] == X
        assert is_canonical_variable(form[0].args[1])  # Y renamed

    def test_frozen_variables_distinguish(self):
        # With X frozen, r(X,Y) and r(Z,Y) differ (Z is renameable).
        f1 = canonical_form((Atom("r", (X, Y)),), frozen={X})
        f2 = canonical_form((Atom("r", (Z, Y)),), frozen={X})
        assert f1 != f2

    def test_duplicates_merge(self):
        assert len(canonical_form((Atom("r", (X,)), Atom("r", (X,))))) == 1

    def test_repeated_variable_pattern_kept(self):
        f1 = canonical_form((Atom("r", (X, X)),))
        f2 = canonical_form((Atom("r", (X, Y)),))
        assert f1 != f2

    def test_hard_tie_case(self):
        # Two identical-signature atoms whose resolution order matters:
        # the canonical form must still be order-invariant.
        atoms1 = (Atom("e", (X, Y)), Atom("e", (Y, Z)), Atom("e", (Z, X)))
        atoms2 = (Atom("e", (Z, X)), Atom("e", (X, Y)), Atom("e", (Y, Z)))
        assert canonical_form(atoms1) == canonical_form(atoms2)

    def test_canonical_of_canonical_is_identity(self):
        q = parse_query("q() :- r(X,Y), t(Y,Z), r(Z,X).")
        once = canonical_form(q.atoms)
        twice = canonical_form(once)
        assert once == twice


class TestHelpers:
    def test_canonical_variable_roundtrip(self):
        v = canonical_variable(7)
        assert is_canonical_variable(v)
        assert not is_canonical_variable(Variable("X"))
