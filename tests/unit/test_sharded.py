"""Unit tests for the out-of-core sharded storage subsystem."""

import pickle
import threading

import pytest

from repro.core.atoms import Atom
from repro.core.instance import Instance
from repro.core.terms import Constant, Variable
from repro.lang.parser import parse_program
from repro.parallel import ShardScanReport, shard_parallel_evaluate
from repro.lang.parser import parse_query
from repro.storage import (
    BACKENDS,
    ColumnarStore,
    DeltaOverlay,
    FrozenStoreError,
    ShardedStore,
    SpillPager,
    StateDirectory,
    make_store,
    sharded_store_factory,
)
from repro.storage.sharded.spill import pack_rows, unpack_rows
from repro.storage.sharded.state import (
    FixpointRecord,
    SavedState,
    program_fingerprint,
)

X, Y = Variable("X"), Variable("Y")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def edge_atoms(n):
    return [
        Atom("edge", (Constant(f"n{i}"), Constant(f"n{i + 1}")))
        for i in range(n)
    ]


class TestSpillPager:
    def test_pack_unpack_roundtrip(self):
        rows = [(1, 2), (3, 4), (5, 6)]
        assert unpack_rows(pack_rows(rows), 2, 3) == rows

    def test_zero_arity_roundtrip(self):
        payload = pack_rows([()])
        assert payload == b""
        assert unpack_rows(payload, 0, 1) == [()]
        assert unpack_rows(b"", 0, 0) == []

    def test_write_read_delete(self, tmp_path):
        pager = SpillPager(tmp_path / "spill.sqlite")
        assert pager.read("p", 2, 0) is None  # unmaterialized
        pager.write("p", 2, 0, [(1, 2), (3, 4)])
        assert sorted(pager.read("p", 2, 0)) == [(1, 2), (3, 4)]
        assert pager.pages == 1
        assert pager.bytes == 2 * 2 * 8
        pager.write("p", 2, 0, [(9, 9)])  # replace
        assert pager.read("p", 2, 0) == [(9, 9)]
        assert pager.bytes == 2 * 8
        pager.delete("p", 2, 0)
        assert pager.read("p", 2, 0) is None
        assert pager.pages == 0 and pager.bytes == 0
        pager.close()

    def test_lazy_until_first_write(self, tmp_path):
        path = tmp_path / "sub" / "spill.sqlite"
        pager = SpillPager(path)
        assert not path.exists()
        pager.write("q", 1, 3, [(7,)])
        assert path.exists()
        pager.close()

    def test_zero_arity_page(self, tmp_path):
        pager = SpillPager(tmp_path / "s.sqlite")
        pager.write("flag", 0, 0, [()])
        assert pager.read("flag", 0, 0) == [()]
        pager.close()


class TestShardedStore:
    def test_registered_backend(self):
        assert BACKENDS[-1] == "sharded"  # appended last: tests pin the
        # historical "instance, columnar, delta" prefix in messages
        store = make_store("sharded")
        assert isinstance(store, ShardedStore)
        assert store.backend_name == "sharded"

    def test_set_semantics_and_iteration(self):
        store = ShardedStore(num_shards=3)
        atoms = edge_atoms(10)
        assert store.add_all(atoms) == 10
        assert store.add_all(atoms) == 0
        assert len(store) == 10
        assert set(store) == set(atoms)
        assert store.count("edge") == 10
        assert store.predicates() == {"edge"}
        assert store.discard(atoms[0])
        assert not store.discard(atoms[0])
        assert len(store) == 9

    def test_budget_forces_spill_and_answers_survive(self):
        atoms = edge_atoms(300)
        store = ShardedStore(memory_budget=4096, num_shards=8)
        store.add_all(atoms)
        stats = store.stats
        assert stats["spilled_shards"] > 0
        assert stats["evictions"] > 0
        assert stats["spill_bytes"] > 0
        # Content is unaffected by residency.
        assert set(store) == set(atoms)
        assert atoms[271] in store
        got = set(store.matching_bound("edge", {1: Constant("n42")}))
        assert got == {atoms[42]}

    def test_resident_estimate_tracks_budget(self):
        store = ShardedStore(memory_budget=8192, num_shards=8)
        store.add_all(edge_atoms(500))
        # The enforcement invariant: at most one shard (the touched
        # one) may push the estimate over budget.
        resident = store.stats["resident_estimate"]
        per_shard = max(
            (s.estimate
             for by_arity in store._relations.values()
             for rel in by_arity.values()
             for s in rel.shards if s.resident),
            default=0,
        )
        assert resident <= 8192 + per_shard

    def test_unbounded_never_spills(self):
        store = ShardedStore()
        store.add_all(edge_atoms(200))
        assert store.stats["spilled_shards"] == 0
        assert store.stats["spill_pages"] == 0

    def test_probe_matches_instance(self):
        atoms = edge_atoms(50) + [Atom("edge", (a, a)), Atom("p", (a,))]
        instance = Instance(atoms)
        store = ShardedStore(atoms, memory_budget=2048, num_shards=4)
        for pattern in (
            Atom("edge", (X, Y)),
            Atom("edge", (Constant("n3"), X)),
            Atom("edge", (X, Constant("n3"))),
            Atom("edge", (X, X)),
            Atom("p", (X,)),
            Atom("missing", (X,)),
        ):
            assert sorted(map(str, store.matching(pattern))) == sorted(
                map(str, instance.matching(pattern))
            ), pattern

    def test_probe_snapshot_survives_discard(self):
        atoms = edge_atoms(30)
        store = ShardedStore(atoms, num_shards=2)
        probe = store.matching_bound("edge", {})
        first = next(probe)
        store.discard_all(atoms)
        rest = list(probe)
        assert {first, *rest} == set(atoms)

    def test_freeze_blocks_writes_allows_paging(self):
        store = ShardedStore(edge_atoms(100), memory_budget=2048)
        store.freeze()
        with pytest.raises(FrozenStoreError):
            store.add(Atom("edge", (a, b)))
        with pytest.raises(FrozenStoreError):
            store.discard(edge_atoms(1)[0])
        # Reads still page evicted shards in and out.
        assert set(store) == set(edge_atoms(100))
        assert edge_atoms(60)[59] in store

    def test_fresh_shares_interning_table(self):
        store = ShardedStore(edge_atoms(5), memory_budget=10**6)
        clone = store.fresh()
        assert clone.table is store.table
        assert clone.memory_budget == store.memory_budget
        assert len(clone) == 0

    def test_copy_is_independent(self):
        store = ShardedStore(edge_atoms(10))
        dup = store.copy()
        dup.add(Atom("edge", (a, b)))
        assert len(dup) == 11 and len(store) == 10

    def test_zero_arity_and_key_position(self):
        store = ShardedStore(key_position=2, num_shards=4)
        store.add(Atom("flag", ()))
        store.add_all(edge_atoms(20))
        assert Atom("flag", ()) in store
        got = set(store.matching_bound("edge", {2: Constant("n5")}))
        assert got == {edge_atoms(5)[4]}

    def test_memory_report_shape(self):
        store = ShardedStore(edge_atoms(200), memory_budget=4096)
        report = store.memory_report()
        assert report.backend == "sharded"
        assert report.atom_count == 200
        assert report.spilled_bytes > 0
        assert report.resident_bytes == report.total_bytes
        payload = report.as_dict()
        assert payload["spilled_bytes"] == report.spilled_bytes
        assert "spilled" in payload and "pages" in payload["spilled"]
        assert "spilled" in str(report)

    def test_delta_overlay_composes_over_sharded(self):
        base = ShardedStore(edge_atoms(50), memory_budget=2048)
        base.freeze()
        overlay = DeltaOverlay(base)
        extra = Atom("edge", (a, b))
        overlay.add(extra)
        overlay.discard(edge_atoms(1)[0])
        assert extra in overlay
        assert edge_atoms(1)[0] not in overlay
        assert len(overlay) == 50
        report = overlay.memory_report()
        assert report.spilled_bytes > 0  # base pages surface through

    def test_spill_dir_used(self, tmp_path):
        store = ShardedStore(
            edge_atoms(200), memory_budget=2048, spill_dir=tmp_path
        )
        assert store.stats["spill_pages"] > 0
        files = list(tmp_path.glob("spill-*.sqlite"))
        assert len(files) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedStore(memory_budget=0)
        with pytest.raises(ValueError):
            ShardedStore(num_shards=0)
        with pytest.raises(ValueError):
            ShardedStore(key_position=0)
        with pytest.raises(ValueError):
            ShardedStore().add(Atom("p", (X,)))  # non-ground

    def test_concurrent_adds_and_probes(self):
        store = ShardedStore(memory_budget=8192, num_shards=8)
        errors = []

        def writer(offset):
            try:
                for i in range(100):
                    store.add(
                        Atom("edge", (Constant(f"w{offset}-{i}"),
                                      Constant(f"w{offset}-{i + 1}")))
                    )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        def reader():
            try:
                for _ in range(50):
                    list(store.matching_bound("edge", {}))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(k,)) for k in range(3)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store) == 300


class TestSharedInterningAccounting:
    """memory_report() with a shared visited-set must charge a shared
    interning table to exactly one holder (the PR-7 audit)."""

    def test_columnar_fresh_shares_table(self):
        base = ColumnarStore(edge_atoms(50))
        delta = base.fresh()
        assert delta._table is base._table

    def test_shared_table_counted_once(self):
        atoms = edge_atoms(200)
        base = ColumnarStore(atoms)
        delta = base.fresh()
        delta.add_all(atoms[:50])  # same terms, re-interned
        seen: set = set()
        base_report = base.memory_report(seen)
        delta_report = delta.memory_report(seen)
        # The table was charged to the base; the delta's share must be
        # (near) zero, not a second full copy.
        assert delta_report.components["terms"] < (
            base_report.components["terms"] / 10
        )

    def test_overlay_total_not_inflated(self):
        atoms = edge_atoms(200)
        base = ColumnarStore(atoms)
        solo = base.memory_report().total_bytes
        overlay = DeltaOverlay(base)
        overlay.add_all(edge_atoms(210)[200:])
        combined = overlay.memory_report().total_bytes
        # Well under double: base facts + table are shared, the delta
        # adds only its few rows.
        assert combined < 1.5 * solo

    def test_sharded_family_counted_once(self):
        atoms = edge_atoms(200)
        base = ShardedStore(atoms)
        delta = base.fresh()
        delta.add_all(atoms[:50])
        seen: set = set()
        base_report = base.memory_report(seen)
        delta_report = delta.memory_report(seen)
        assert delta_report.components["terms"] < (
            base_report.components["terms"] / 10
        )


class TestShardParallelEvaluate:
    PROGRAM = """
    edge(n0, n1). edge(n1, n2). edge(n2, n3). edge(n3, n4). edge(n4, n0).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- edge(X, Y), path(Y, Z).
    """

    def _saturated_store(self, budget=None):
        from repro.chase.runner import chase

        program, database = parse_program(self.PROGRAM)
        result = chase(
            database, program,
            store=sharded_store_factory(budget, None),
            max_atoms=10000,
        )
        assert result.saturated
        return result.instance

    @pytest.mark.parametrize("budget", [None, 2048])
    def test_agrees_with_sequential(self, budget):
        store = self._saturated_store(budget)
        for text in (
            "q(X, Y) :- path(X, Y).",
            "q(X) :- path(n0, X).",
            "q(X) :- edge(X, Y), path(Y, n0).",
            "q() :- path(n0, n0).",
        ):
            query = parse_query(text)
            expected = query.evaluate(store)
            for workers in (1, 4):
                got = shard_parallel_evaluate(query, store, workers=workers)
                assert got == expected, text

    def test_report_shape(self):
        store = self._saturated_store()
        query = parse_query("q(X, Y) :- path(X, Y).")
        report = shard_parallel_evaluate(query, store, report=True)
        assert isinstance(report, ShardScanReport)
        assert report.answers == query.evaluate(store)
        assert report.shards == len(report.per_shard_matches) > 1
        assert 0.0 < report.skew <= 1.0
        assert report.total_matches == sum(report.per_shard_matches)

    def test_falls_back_for_unsharded_store(self):
        program, database = parse_program(self.PROGRAM)
        query = parse_query("q(X, Y) :- edge(X, Y).")
        got = shard_parallel_evaluate(query, Instance(database))
        assert got == query.evaluate(Instance(database))

    def test_workers_validated(self):
        store = self._saturated_store()
        with pytest.raises(ValueError):
            shard_parallel_evaluate(
                parse_query("q(X, Y) :- edge(X, Y)."), store, workers=0
            )


class TestShardedFactory:
    def test_name_is_stable(self):
        factory = sharded_store_factory(4096, None)
        assert factory.__name__ == "sharded"
        store = factory()
        assert store.memory_budget == 4096

    def test_session_accepts_factory(self):
        from repro.api import Session

        session = Session(store=sharded_store_factory(None, None))
        session.load("e(a, b). t(X, Y) :- e(X, Y).")
        answers = session.answers("q(X, Y) :- t(X, Y).", method="datalog",
                                  rewrite="none")
        assert answers == {(a, b)}

    def test_make_store_seeds(self):
        atoms = edge_atoms(5)
        store = make_store(sharded_store_factory(None, None), atoms)
        assert set(store) == set(atoms)


class TestStateDirectory:
    def _state(self, key="k"):
        return SavedState(
            program_key=key,
            store_name="sharded",
            version=3,
            edb=tuple(edge_atoms(5)),
            fixpoints=(
                FixpointRecord(
                    method="datalog",
                    store_name="sharded",
                    kwargs=(),
                    atoms=tuple(edge_atoms(8)),
                ),
            ),
        )

    def test_save_load_roundtrip(self, tmp_path):
        directory = StateDirectory(tmp_path)
        saved = self._state()
        path = directory.save(saved)
        assert path.exists()
        loaded = directory.load("k")
        assert loaded == saved
        assert loaded.fixpoints[0].atoms == tuple(edge_atoms(8))

    def test_foreign_program_treated_as_absent(self, tmp_path):
        directory = StateDirectory(tmp_path)
        directory.save(self._state(key="other"))
        assert directory.load("k") is None
        assert directory.load() is not None  # keyless load still works

    def test_missing_and_corrupt(self, tmp_path):
        directory = StateDirectory(tmp_path)
        assert directory.load("k") is None
        directory.path.mkdir(exist_ok=True)
        directory.state_file.write_bytes(b"not a pickle")
        assert directory.load("k") is None
        directory.state_file.write_bytes(
            pickle.dumps({"format": 999, "state": None})
        )
        assert directory.load("k") is None

    def test_clear(self, tmp_path):
        directory = StateDirectory(tmp_path)
        directory.save(self._state())
        directory.clear()
        assert directory.load("k") is None
        directory.clear()  # idempotent

    def test_fingerprint_sensitivity(self):
        from repro.api import compile_program

        program, _ = parse_program("t(X, Y) :- e(X, Y).")
        other, _ = parse_program("t(X, Y) :- e(Y, X).")
        first = compile_program(program, source="t(X, Y) :- e(X, Y).")
        second = compile_program(other, source="t(X, Y) :- e(Y, X).")
        assert program_fingerprint(first) != program_fingerprint(second)
        again = compile_program(program, source="t(X, Y) :- e(X, Y).")
        assert program_fingerprint(first) == program_fingerprint(again)

    def test_fingerprint_of_in_memory_program(self):
        # No source text (the embeddable path: benchmarks and the
        # workload harness hand over generated Program objects) — the
        # fallback digests the rules themselves.
        from repro.api import compile_program

        program, _ = parse_program("t(X, Y) :- e(X, Y).")
        other, _ = parse_program("t(X, Y) :- e(Y, X).")
        first = compile_program(program)
        second = compile_program(other)
        assert program_fingerprint(first) != program_fingerprint(second)
        assert program_fingerprint(first) == program_fingerprint(
            compile_program(program)
        )
