"""Unit tests for the reachability indexes (Section 7, future work (2))."""

import random

import pytest

from repro.reachability.digraph import DiGraph
from repro.reachability.index import (
    DFSReachability,
    IntervalIndex,
    TwoHopIndex,
)

INDEX_CLASSES = (DFSReachability, IntervalIndex, TwoHopIndex)


def chain(n: int) -> DiGraph:
    return DiGraph.from_pairs([(i, i + 1) for i in range(n - 1)])


def random_graph(nodes: int, edges: int, seed: int) -> DiGraph:
    rng = random.Random(seed)
    pairs = set()
    while len(pairs) < edges:
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a != b:
            pairs.add((a, b))
    g = DiGraph.from_pairs(pairs)
    for i in range(nodes):
        g.add_node(i)
    return g


def brute_force(g: DiGraph, u, v) -> bool:
    return v in g.reachable_from(u)


@pytest.mark.parametrize("index_class", INDEX_CLASSES)
class TestAllIndexes:
    def test_chain(self, index_class):
        g = chain(6)
        index = index_class(g)
        assert index.reaches(0, 5)
        assert index.reaches(2, 4)
        assert not index.reaches(5, 0)
        assert index.reaches(3, 3)  # reflexive

    def test_missing_nodes(self, index_class):
        index = index_class(chain(3))
        assert not index.reaches(0, "missing")
        assert not index.reaches("missing", 0)

    def test_cycle(self, index_class):
        g = DiGraph.from_pairs([("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
        index = index_class(g)
        assert index.reaches("a", "a")
        assert index.reaches("b", "a")
        assert index.reaches("a", "d")
        assert not index.reaches("d", "a")

    def test_exhaustive_agreement_random(self, index_class):
        g = random_graph(14, 30, seed=7)
        index = index_class(g)
        for u in range(14):
            for v in range(14):
                assert index.reaches(u, v) == brute_force(g, u, v), (u, v)

    def test_disconnected_components(self, index_class):
        g = DiGraph.from_pairs([(0, 1), (2, 3)])
        index = index_class(g)
        assert index.reaches(0, 1)
        assert not index.reaches(0, 3)
        assert not index.reaches(1, 2)


class TestGrailSpecifics:
    def test_negative_cut_counter(self):
        # A long chain: most non-reachable pairs should be cut by the
        # interval labels without any DFS.
        g = chain(20)
        index = IntervalIndex(g, k=3)
        for u in range(19, 0, -1):
            assert not index.reaches(u, u - 1)
        assert index.stats.negative_cuts > 0

    def test_more_labelings_reduce_fallbacks(self):
        g = random_graph(25, 60, seed=3)
        weak = IntervalIndex(g, k=1, seed=1)
        strong = IntervalIndex(g, k=5, seed=1)
        pairs = [(u, v) for u in range(0, 25, 2) for v in range(1, 25, 3)]
        for index in (weak, strong):
            for u, v in pairs:
                index.reaches(u, v)
        assert strong.stats.query_visits <= weak.stats.query_visits


class TestTwoHopSpecifics:
    def test_labels_are_populated(self):
        index = TwoHopIndex(chain(6))
        assert index.stats.label_entries > 0

    def test_query_uses_no_traversal(self):
        index = TwoHopIndex(chain(10))
        index.reaches(0, 9)
        index.reaches(9, 0)
        assert index.stats.query_visits == 0

    def test_hub_pruning_keeps_labels_small(self):
        # A star through a hub: labels should stay near-linear, far
        # below the quadratic all-pairs closure.
        pairs = [(f"in{i}", "hub") for i in range(10)]
        pairs += [("hub", f"out{i}") for i in range(10)]
        g = DiGraph.from_pairs(pairs)
        index = TwoHopIndex(g)
        assert index.reaches("in3", "out7")
        assert not index.reaches("out7", "in3")
        assert index.stats.label_entries <= 3 * len(g)
