"""Cross-engine validation on generated scenarios.

Every engine in the package implements the same semantics (certain
answers); these tests run them against each other on seeded scenarios
from the benchmark suites — the strongest correctness signal the
reproduction has.
"""

import random

import pytest

from repro.benchsuite import (
    generate_chasebench,
    generate_dbpedia,
    generate_ibench,
    generate_industrial,
    generate_iwarded,
)
from repro.chase.runner import chase
from repro.datalog.seminaive import seminaive
from repro.engine.operators import OperatorNetwork
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.answers import certain_answers
from repro.reasoning.pwl_ward import decide_pwl_ward
from repro.reasoning.ward import decide_ward


class TestDatalogEnginesAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seminaive_vs_chase_vs_network(self, seed):
        rng = random.Random(seed)
        n = 8
        facts = "\n".join(
            f"e(n{rng.randrange(n)}, n{rng.randrange(n)})." for _ in range(12)
        )
        program, database = parse_program(facts + """
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        via_seminaive = seminaive(database, program).evaluate(query)
        via_chase = chase(database, program).evaluate(query)
        via_network = query.evaluate(
            OperatorNetwork(program).run(database).instance
        )
        assert via_seminaive == via_chase == via_network


class TestProofTreeVsChase:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_pwl_engine_matches_chase_on_datalog(self, seed):
        scenario = generate_iwarded(seed=seed, flavour="linear", vertices=7,
                                    edges=10)
        # Restrict to the full (Datalog) sub-program for a terminating
        # chase baseline: drop the existential core.
        from repro.core.program import Program

        full_rules = [t for t in scenario.program if t.is_full()]
        program = Program(full_rules)
        database = scenario.database
        query = parse_query("q(X,Y) :- iw_t(X,Y).")
        baseline = chase(database, program).evaluate(query)
        via_engine = certain_answers(query, database, program, method="pwl")
        assert via_engine == baseline

    def test_decisions_match_chase_with_existentials(self):
        program, database = parse_program("""
            p(a). p(b). e(a,b).
            r(X,K) :- p(X).
            s(Y) :- r(X,Y), e(X,Z).
        """)
        assert program.is_warded() and program.is_piecewise_linear()
        # Boolean probes answered by both the chase (terminating here)
        # and the proof-tree engines must agree.
        for text, expected in [
            ("q() :- r(a, W).", True),
            ("q() :- s(W).", True),
            ("q(X) :- r(X, W).", None),
        ]:
            query = parse_query(text)
            result = chase(database, program, max_atoms=5000)
            assert result.saturated
            chase_answers_set = result.evaluate(query)
            engine_answers = certain_answers(
                query, database, program, method="pwl"
            )
            assert engine_answers == chase_answers_set


class TestWardVsPwl:
    @pytest.mark.parametrize("seed", [5, 6])
    def test_engines_agree_on_pwl_scenarios(self, seed):
        scenario = generate_industrial(
            seed=seed, flavour="control", companies=8, ownerships=12
        )
        query = scenario.queries[0]
        database = scenario.database
        domain = sorted(database.constants(), key=str)[:4]
        rng = random.Random(seed)
        for _ in range(4):
            answer = (rng.choice(domain), rng.choice(domain))
            via_pwl = decide_pwl_ward(
                query, answer, database, scenario.program
            ).accepted
            via_ward = decide_ward(
                query, answer, database, scenario.program
            ).accepted
            assert via_pwl == via_ward


class TestSuiteScenariosAnswerable:
    def test_ibench_scenarios_evaluate(self):
        scenario = generate_ibench(seed=9, primitives=4)
        query = scenario.queries[0]
        answers = certain_answers(
            query, scenario.database, scenario.program, method="auto"
        )
        # data-exchange scenarios always propagate their sources
        assert isinstance(answers, set)

    def test_chasebench_scenario_evaluates(self):
        scenario = generate_chasebench(seed=10, recursion="linear", entities=6)
        query = scenario.queries[0]     # q(X) :- cb_org(X)
        answers = certain_answers(
            query, scenario.database, scenario.program, method="pwl"
        )
        assert answers  # every hospital becomes an org

    def test_dbpedia_scenario_evaluates(self):
        scenario = generate_dbpedia(seed=11, classes=6, entities=8)
        query = scenario.queries[1]     # subclass closure
        answers = certain_answers(
            query, scenario.database, scenario.program, method="pwl"
        )
        direct_facts = {
            (atom.args[0], atom.args[1])
            for atom in scenario.database.with_predicate("subClass")
        }
        assert direct_facts <= answers
