"""Integration test: the full OWL 2 QL scenario of Example 3.3.

Runs the paper's example program end-to-end through every engine in the
package — chase, linear proof search, AND-OR search, Datalog rewriting,
operator network — and checks they all agree on the certain answers.
"""

import pytest

from repro.chase.runner import chase
from repro.chase.termination import DepthPolicy
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.answers import certain_answers


@pytest.fixture(scope="module")
def ontology():
    program, database = parse_program("""
        % instance data
        type(alice, phd_student).
        type(bob, professor).
        subClass(phd_student, student).
        subClass(student, person).
        subClass(professor, staff).
        subClass(staff, person).
        restriction(student, enrolledIn).
        restriction(course_like, enrolledIn_inv).
        inverse(enrolledIn, enrolledIn_inv).

        subClassStar(X, Y) :- subClass(X, Y).
        subClassStar(X, Z) :- subClassStar(X, Y), subClass(Y, Z).
        type(X, Z)         :- type(X, Y), subClassStar(Y, Z).
        triple(X, Z, W)    :- type(X, Y), restriction(Y, Z).
        triple(Z, W, X)    :- triple(X, Y, Z), inverse(Y, W).
        type(X, W)         :- triple(X, Y, Z), restriction(W, Y).
    """)
    return program, database


def test_program_is_warded_pwl(ontology):
    program, _ = ontology
    assert program.is_warded()
    assert program.is_piecewise_linear()


def test_subclass_closure(ontology):
    program, database = ontology
    query = parse_query("q(X,Y) :- subClassStar(X,Y).")
    answers = certain_answers(query, database, program, method="pwl")
    pairs = {(str(x), str(y)) for x, y in answers}
    assert ("phd_student", "person") in pairs
    assert ("professor", "person") in pairs
    assert ("phd_student", "staff") not in pairs


def test_type_propagation(ontology):
    program, database = ontology
    query = parse_query("q(Y) :- type(alice, Y).")
    answers = {str(y) for (y,) in certain_answers(query, database, program,
                                                  method="pwl")}
    assert answers == {"phd_student", "student", "person"}


def test_inverse_restriction_roundtrip(ontology):
    # alice is enrolled in some invented course; by the inverse rule the
    # course points back; the second restriction types it.
    program, database = ontology
    boolean = parse_query("q() :- triple(alice, enrolledIn, W).")
    assert certain_answers(boolean, database, program, method="pwl") == {()}
    typed = parse_query("q() :- type(W, course_like).")
    assert certain_answers(typed, database, program, method="pwl") == {()}


def test_engines_agree(ontology):
    program, database = ontology
    query = parse_query("q(X,Y) :- type(X,Y).")
    via_pwl = certain_answers(query, database, program, method="pwl")
    via_ward = certain_answers(query, database, program, method="ward")
    assert via_pwl == via_ward
    # Depth-bounded chase (sound under-approximation) stays inside.
    bounded = chase(database, program, policy=DepthPolicy(2))
    assert bounded.evaluate(query) <= via_pwl


def test_rewriting_agrees(ontology):
    program, database = ontology
    from repro.datalog.seminaive import datalog_answers
    from repro.expressiveness.translation import pwl_to_datalog

    query = parse_query("q(Y) :- subClassStar(phd_student, Y).")
    rewriting = pwl_to_datalog(
        query, program, width_bound=3, database_schema="full",
        max_states=4000,
    )
    assert rewriting.complete
    rewritten = datalog_answers(rewriting.query, database, rewriting.program)
    direct = certain_answers(query, database, program, method="pwl")
    assert rewritten == direct
