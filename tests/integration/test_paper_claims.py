"""The paper's headline claims, as executable assertions.

One test per claim, so a failed reproduction points at the exact claim
it breaks.  EXPERIMENTS.md references these tests as the per-claim
verification index.
"""


from repro.analysis.levels import node_width_bound_pwl
from repro.analysis.linearization import linearize
from repro.analysis.piecewise import is_piecewise_linear
from repro.analysis.wardedness import is_warded
from repro.benchsuite import classify_corpus, default_corpus
from repro.core.terms import Constant
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.pwl_ward import decide_pwl_ward
from repro.tiling.reduction import reduction_class_profile, reduction_holds_within
from repro.tiling.system import TilingSystem


class TestSection12Claims:
    def test_tc_linearization_example(self):
        # The paper's own example of eliminating non-linear recursion.
        program, _ = parse_program("""
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), t(Y,Z).
        """)
        result = linearize(program)
        assert result.piecewise_linear
        bodies = sorted(
            tuple(sorted(a.predicate for a in t.body)) for t in result.program
        )
        assert bodies == [("e",), ("e", "t")]

    def test_recursion_statistics_bands(self):
        stats = classify_corpus(default_corpus(scale=2))
        assert 0.55 <= stats.pwl_fraction <= 0.85     # paper: ~70%
        assert stats.direct_fraction >= 0.40          # paper: ~55%
        assert stats.linearizable_fraction >= 0.05    # paper: ~15%


class TestTheorem42:
    def test_linear_proof_trees_bounded_by_f(self):
        # Accepting runs never exceed the node-width polynomial.
        program, database = parse_program("""
            e(a,b). e(b,c). e(c,d).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        bound = node_width_bound_pwl(query, program.single_head())
        decision = decide_pwl_ward(
            query, (Constant("a"), Constant("d")), database, program
        )
        assert decision.accepted
        assert decision.stats.max_width <= max(bound, query.width())


class TestTheorem51:
    def test_reduction_is_pwl_not_warded(self):
        pwl, warded = reduction_class_profile()
        assert pwl is True
        assert warded is False

    def test_reduction_faithful_on_bounded_instances(self):
        solvable = TilingSystem.make(
            tiles={"a", "b", "r"}, left={"a", "b"}, right={"r"},
            horizontal={("a", "r"), ("b", "r")},
            vertical={("a", "b"), ("r", "r"), ("a", "a"), ("b", "b")},
            start="a", finish="b",
        )
        unsolvable = TilingSystem.make(
            tiles={"a", "b", "r"}, left={"a", "b"}, right={"r"},
            horizontal={("a", "r"), ("b", "r")},
            vertical={("a", "a"), ("r", "r")},
            start="a", finish="b",
        )
        assert reduction_holds_within(solvable, 3, 3) == (True, True)
        assert reduction_holds_within(unsolvable, 3, 4) == (False, False)


class TestTheorem63:
    def test_pwl_ward_equals_pwl_datalog_on_example(self):
        from repro.datalog.seminaive import datalog_answers
        from repro.expressiveness.translation import pwl_to_datalog

        program, database = parse_program("""
            e(a,b). e(b,c). e(c,a).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        query = parse_query("q(X,Y) :- t(X,Y).")
        rewriting = pwl_to_datalog(query, program, width_bound=3)
        assert rewriting.program.is_full()
        assert is_piecewise_linear(rewriting.program)
        from repro.reasoning.answers import certain_answers

        assert datalog_answers(
            rewriting.query, database, rewriting.program
        ) == certain_answers(query, database, program, method="pwl")


class TestTheorem66:
    def test_program_expressiveness_separation(self):
        from repro.expressiveness.separation import separation_witness
        from repro.reasoning.answers import certain_answers

        witness = separation_witness()
        q1_answers = certain_answers(
            witness.q1, witness.database, witness.program, method="pwl"
        )
        q2_answers = certain_answers(
            witness.q2, witness.database, witness.program, method="pwl"
        )
        assert q1_answers == {()} and q2_answers == set()


class TestExample33:
    def test_class_membership(self):
        from repro.benchsuite.dbpedia import example_33_program

        program = example_33_program()
        assert is_warded(program)
        assert is_piecewise_linear(program)
