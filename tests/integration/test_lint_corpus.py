"""Corpus lint: the shipped examples and the benchsuite generators.

Two contracts the CI lint job enforces:

* every program under ``examples/programs/`` is strict-clean — no
  error- or warning-severity findings (infos are allowed: the
  ontology example's existential rules are the point);
* every benchsuite generator family emits programs free of
  error-severity findings at smoke scale — the scenarios the
  benchmark matrix runs are well-formed by construction.
"""

from pathlib import Path

import pytest

from repro.benchsuite import suite_corpus
from repro.lint import lint_source, run_lint

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "programs"


def example_files():
    return sorted(EXAMPLES.glob("*.vada"))


def test_examples_exist():
    assert example_files(), f"no example programs under {EXAMPLES}"


@pytest.mark.parametrize(
    "path", example_files(), ids=lambda p: p.stem
)
def test_example_is_strict_clean(path):
    report = lint_source(path.read_text(), name=path.name)
    assert not report.fails(strict=True), "\n".join(
        report.render(str(path))
    )
    assert report.passes_run > 0  # it parsed; the passes actually ran


@pytest.mark.parametrize(
    "scenario",
    suite_corpus("smoke"),
    ids=lambda sc: f"{sc.suite}-{sc.name}",
)
def test_benchsuite_generators_emit_error_free_programs(scenario):
    report = run_lint(scenario.program, facts=scenario.database)
    assert not report.errors(), "\n".join(report.render(scenario.name))


@pytest.mark.parametrize(
    "scenario",
    suite_corpus("smoke"),
    ids=lambda sc: f"{sc.suite}-{sc.name}",
)
def test_benchsuite_queries_lint_with_program(scenario):
    # The reachability pass (W205) runs only with a query; it must not
    # crash on — or flag errors in — any generated (program, query).
    for query in scenario.queries:
        report = run_lint(
            scenario.program, facts=scenario.database, query=query
        )
        assert not report.errors()
