"""End-to-end integration: every layer of the package on one scenario.

One corporate-knowledge-graph workload flows through the ontology API,
the static analyzers, five answering engines, the certificate layer,
the Datalog rewriting, and the incremental maintainer — all of which
must tell one consistent story.
"""

from repro.analysis import (
    is_piecewise_linear,
    is_warded,
    node_width_bound_pwl,
)
from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant
from repro.datalog.seminaive import datalog_answers
from repro.dynfo import IncrementalReasoner
from repro.engine import LinearForestGuide, OperatorNetwork
from repro.expressiveness import pwl_to_datalog
from repro.lang.parser import parse_program, parse_query
from repro.owl2ql import (
    BGPQuery,
    Ontology,
    TriplePattern,
    Var,
    answer_bgp,
    encode,
)
from repro.parallel import parallel_certain_answers
from repro.reasoning import certain_answers, certified_decision
from repro.rewriting import unfold

a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


class TestReachabilityStory:
    """Linear TC: every engine and transformation agrees."""

    def setup_method(self):
        self.program, self.database = parse_program("""
            e(a,b). e(b,c). e(c,d).
            t(X,Y) :- e(X,Y).
            t(X,Z) :- e(X,Y), t(Y,Z).
        """)
        self.query = parse_query("q(X,Y) :- t(X,Y).")
        self.expected = {
            (a, b), (b, c), (c, d), (a, c), (b, d), (a, d),
        }

    def test_class_membership(self):
        assert is_warded(self.program)
        assert is_piecewise_linear(self.program)
        assert node_width_bound_pwl(
            self.query, self.program.single_head()
        ) >= self.query.width()

    def test_all_engines_agree(self):
        results = {
            "datalog": datalog_answers(
                self.query, self.database, self.program
            ),
            "pwl": certain_answers(
                self.query, self.database, self.program, method="pwl"
            ),
            "ward": certain_answers(
                self.query, self.database, self.program, method="ward"
            ),
            "chase": certain_answers(
                self.query, self.database, self.program, method="chase"
            ),
            "parallel": parallel_certain_answers(
                self.query, self.database, self.program, workers=3
            ),
        }
        for name, answers in results.items():
            assert answers == self.expected, name

    def test_network_engine_agrees(self):
        network = OperatorNetwork(self.program, guide=LinearForestGuide())
        result = network.run(self.database)
        assert result.saturated
        assert self.query.evaluate(result.instance) == self.expected

    def test_every_positive_is_certifiable(self):
        for answer in self.expected:
            accepted, certificate = certified_decision(
                self.query, answer, self.database, self.program
            )
            assert accepted and certificate is not None

    def test_datalog_rewriting_agrees(self):
        rewriting = pwl_to_datalog(self.query, self.program, width_bound=3)
        assert rewriting.complete
        assert datalog_answers(
            rewriting.query, self.database, rewriting.program
        ) == self.expected

    def test_ucq_unfolding_agrees_on_this_database(self):
        rewriting = unfold(self.query, self.program, max_depth=10)
        assert rewriting.evaluate(self.database) == self.expected

    def test_incremental_maintainer_agrees(self):
        reasoner = IncrementalReasoner(self.program, self.database)
        assert reasoner.answers() == self.expected
        # A live update keeps the story consistent.
        reasoner.insert(Atom("e", (d, a)))
        database = Database(self.database)
        database.add(Atom("e", (d, a)))
        assert reasoner.answers() == datalog_answers(
            self.query, database, self.program
        )


class TestOntologyStory:
    """The OWL 2 QL layer agrees with the raw engines it compiles to."""

    def setup_method(self):
        ontology = (
            Ontology("it")
            .subclass("admin", "staff")
            .inverse("supports", "supportedBy")
            .domain("supports", "staff")
            .some_values("staff", "hasBadge")
            .member("dana", "admin")
            .related("dana", "supports", "erin")
        )
        self.encoded = encode(ontology)

    def test_encoding_is_in_the_fragment(self):
        assert is_warded(self.encoded.program)
        assert is_piecewise_linear(self.encoded.program)

    def test_bgp_vs_raw_cq(self):
        bgp = BGPQuery.make(
            [Var("x")], [TriplePattern(Var("x"), "type", "staff")]
        )
        raw = parse_query("q(X) :- type(X, staff).")
        assert answer_bgp(bgp, self.encoded) == certain_answers(
            raw, self.encoded.database, self.encoded.program
        )

    def test_invention_certifiable(self):
        # dana ⊑ staff ⊑ ∃hasBadge: the Boolean BGP is certain and the
        # underlying decision has a verifiable certificate.
        query = parse_query("q() :- triple(dana, hasBadge, B).")
        accepted, certificate = certified_decision(
            query, (), self.encoded.database, self.encoded.program
        )
        assert accepted and certificate is not None
