"""Cross-engine property tests: every evaluation path computes the same
answers on random transitive-closure instances.

The paper's machinery gives many independent roads to cert(q, D, Σ) on
a WARD ∩ PWL (and full-Datalog) workload: semi-naive evaluation, the
chase, the linear proof search (either frontier strategy), the operator
network, the stratified evaluator, the Lemma 6.4 rewriting, and the
Dyn-FO incremental view.  Random graphs drive them all against the
semi-naive reference.
"""

from hypothesis import given, settings, strategies as st

from repro.chase import chase
from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant
from repro.datalog.seminaive import datalog_answers, seminaive
from repro.datalog.strata import stratified_seminaive
from repro.dynfo import IncrementalReasoner
from repro.engine import OperatorNetwork
from repro.lang.parser import parse_program, parse_query
from repro.reasoning import decide_pwl_ward

NODES = 6

edge_lists = st.lists(
    st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)).filter(
        lambda p: p[0] != p[1]
    ),
    min_size=1,
    max_size=12,
    unique=True,
)


def tc_program():
    program, _ = parse_program("""
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    return program


def build_database(pairs) -> Database:
    database = Database()
    for a, b in pairs:
        database.add(Atom("e", (Constant(f"n{a}"), Constant(f"n{b}"))))
    return database


QUERY = parse_query("q(X,Y) :- t(X,Y).")
PROGRAM = tc_program()


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_chase_matches_seminaive(pairs):
    database = build_database(pairs)
    reference = datalog_answers(QUERY, database, PROGRAM)
    result = chase(database, PROGRAM, max_atoms=5000)
    assert result.saturated
    assert result.evaluate(QUERY) == reference


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_network_matches_seminaive(pairs):
    database = build_database(pairs)
    reference = datalog_answers(QUERY, database, PROGRAM)
    result = OperatorNetwork(PROGRAM).run(database)
    assert result.saturated
    assert QUERY.evaluate(result.instance) == reference


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_stratified_matches_global(pairs):
    database = build_database(pairs)
    materialized = stratified_seminaive(database, PROGRAM, materialize=True)
    streaming = stratified_seminaive(database, PROGRAM, materialize=False)
    assert materialized.evaluate(QUERY) == streaming.evaluate(QUERY)


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_incremental_view_matches_seminaive(pairs):
    database = build_database(pairs)
    reference = datalog_answers(QUERY, database, PROGRAM)
    reasoner = IncrementalReasoner(PROGRAM, database)
    assert reasoner.answers() == reference


@given(edge_lists, st.integers(0, NODES - 1), st.integers(0, NODES - 1))
@settings(max_examples=25, deadline=None)
def test_proof_search_strategies_agree(pairs, a, b):
    database = build_database(pairs)
    answer = (Constant(f"n{a}"), Constant(f"n{b}"))
    reference = answer in datalog_answers(QUERY, database, PROGRAM)
    best = decide_pwl_ward(
        QUERY, answer, database, PROGRAM, strategy="bestfirst"
    )
    assert best.accepted == reference
    bfs = decide_pwl_ward(
        QUERY, answer, database, PROGRAM, strategy="bfs", width_bound=3
    )
    assert bfs.accepted == reference


@given(edge_lists)
@settings(max_examples=15, deadline=None)
def test_seminaive_statistics_sane(pairs):
    database = build_database(pairs)
    result = seminaive(database, PROGRAM)
    assert result.derived == len(result.instance) - len(database)
    assert result.rounds >= 1
    assert result.considered >= result.derived
