"""Property tests: all reachability indexes agree with brute force."""

from hypothesis import given, settings, strategies as st

from repro.reachability.digraph import DiGraph
from repro.reachability.index import (
    DFSReachability,
    IntervalIndex,
    TwoHopIndex,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
        lambda p: p[0] != p[1]
    ),
    min_size=0,
    max_size=25,
)


def build(pairs) -> DiGraph:
    g = DiGraph.from_pairs(pairs)
    for node in range(10):
        g.add_node(node)
    return g


@given(edge_lists, st.integers(0, 9), st.integers(0, 9))
@settings(max_examples=120, deadline=None)
def test_indexes_agree_with_brute_force(pairs, u, v):
    g = build(pairs)
    truth = v in g.reachable_from(u)
    assert DFSReachability(g).reaches(u, v) == truth
    assert IntervalIndex(g, k=2).reaches(u, v) == truth
    assert TwoHopIndex(g).reaches(u, v) == truth


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_condensation_is_acyclic_and_total(pairs):
    g = build(pairs)
    dag, component_of = g.condensation()
    # Every node is assigned to exactly one component.
    assert set(component_of) == set(g.nodes())
    # The condensation has a topological order (i.e., is acyclic).
    order = dag.topological_order()
    assert len(order) == len(dag)
    # Edges respect the numbering invariant.
    for a, b in dag.edges():
        assert a < b


@given(edge_lists, st.integers(0, 9), st.integers(0, 9))
@settings(max_examples=60, deadline=None)
def test_reachability_is_transitive(pairs, u, v):
    g = build(pairs)
    index = TwoHopIndex(g)
    if index.reaches(u, v):
        for w in range(10):
            if index.reaches(v, w):
                assert index.reaches(u, w)
