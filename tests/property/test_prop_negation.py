"""Property tests for stratified negation.

Invariant: on random graphs, ``separated`` (defined with negation on
top of recursive reachability) is exactly the complement of the
transitive closure over the node domain.
"""

from hypothesis import given, settings, strategies as st

from repro.core.terms import Constant
from repro.datalog.negation import parse_stratified_program, stratified_answers
from repro.lang.parser import parse_query
from repro.reachability.digraph import DiGraph

NODES = 5

edge_lists = st.lists(
    st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)).filter(
        lambda p: p[0] != p[1]
    ),
    min_size=0,
    max_size=10,
    unique=True,
)

RULES = """
    reach(X, Y)     :- edge(X, Y).
    reach(X, Z)     :- edge(X, Y), reach(Y, Z).
    separated(X, Y) :- node(X), node(Y), not reach(X, Y).
"""


def build_text(pairs) -> str:
    facts = [f"node(n{i})." for i in range(NODES)]
    facts += [f"edge(n{a}, n{b})." for a, b in pairs]
    return " ".join(facts) + RULES


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_separated_is_complement_of_reachability(pairs):
    program, database = parse_stratified_program(build_text(pairs))
    query = parse_query("q(X, Y) :- separated(X, Y).")
    answers = stratified_answers(query, database, program)

    graph = DiGraph.from_pairs(
        (Constant(f"n{a}"), Constant(f"n{b}")) for a, b in pairs
    )
    domain = [Constant(f"n{i}") for i in range(NODES)]
    expected = set()
    for x in domain:
        for y in domain:
            # strict reachability: a path of length ≥ 1
            reachable = x in graph and any(
                y == s or y in graph.reachable_from(s)
                for s in graph.successors(x)
            )
            if not reachable:
                expected.add((x, y))
    assert answers == expected


@given(edge_lists)
@settings(max_examples=30, deadline=None)
def test_partition_covers_all_pairs(pairs):
    # reach ∪ separated is the full node square; they are disjoint.
    program, database = parse_stratified_program(build_text(pairs))
    reach = stratified_answers(
        parse_query("q(X, Y) :- node(X), node(Y), reach(X, Y)."),
        database, program,
    )
    separated = stratified_answers(
        parse_query("q(X, Y) :- separated(X, Y)."),
        database, program,
    )
    assert reach & separated == set()
    assert len(reach | separated) == NODES * NODES
