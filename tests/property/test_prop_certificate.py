"""Property tests: certified answers on random reachability instances.

Every positive decision must come with a certificate that verifies
from scratch; every negative decision must produce none — and the
accept/reject split must match the semi-naive ground truth.
"""

from hypothesis import given, settings, strategies as st

from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant
from repro.datalog.seminaive import datalog_answers
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.certificate import certified_decision, verify_certificate

NODES = 5

edge_lists = st.lists(
    st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)).filter(
        lambda p: p[0] != p[1]
    ),
    min_size=1,
    max_size=9,
    unique=True,
)


def tc_program():
    program, _ = parse_program("""
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    return program


def build_database(pairs) -> Database:
    database = Database()
    for x, y in pairs:
        database.add(Atom("e", (Constant(f"n{x}"), Constant(f"n{y}"))))
    return database


QUERY = parse_query("q(X,Y) :- t(X,Y).")
PROGRAM = tc_program()


@given(edge_lists, st.integers(0, NODES - 1), st.integers(0, NODES - 1))
@settings(max_examples=50, deadline=None)
def test_certificates_track_ground_truth(pairs, a, b):
    database = build_database(pairs)
    answer = (Constant(f"n{a}"), Constant(f"n{b}"))
    expected = answer in datalog_answers(QUERY, database, PROGRAM)

    accepted, certificate = certified_decision(
        QUERY, answer, database, PROGRAM
    )
    assert accepted == expected
    if accepted:
        assert certificate is not None
        assert verify_certificate(certificate, database, PROGRAM)
        assert certificate.states[-1].is_accepting()
        assert certificate.max_width() <= certificate.width_bound
    else:
        assert certificate is None
