"""Property tests for the out-of-core sharded store.

Three guarantees, over random inputs:

* **Spill transparency** — a ShardedStore squeezed under a tiny memory
  budget (so shards constantly evict to SQLite pages and reload) is
  observationally identical to the reference ``Instance`` on every read
  primitive, including after random discards.
* **Snapshot probes** — a probe started before a discard storm still
  yields exactly its snapshot (the PR-5 interleaving contract, extended
  to paged shards).
* **Shard-parallel evaluation** — ``shard_parallel_evaluate`` computes
  the same certain answers as sequential ``Query.evaluate`` over random
  warded fixpoints, for any worker count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.runner import chase
from repro.core.instance import Instance
from repro.core.terms import Variable
from repro.lang.parser import parse_query
from repro.parallel import shard_parallel_evaluate
from repro.storage import ShardedStore, sharded_store_factory

from .strategies import atoms
from .test_prop_storage import warded_instances

#: Small enough that a handful of atoms already exceeds it — every
#: example exercises evict/spill/reload, not just the resident path.
TINY_BUDGET = 256


def _ground(stored):
    return [atom for atom in stored if atom.is_ground()]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(atoms(), min_size=0, max_size=16),
    atoms(),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
)
def test_budgeted_matching_agrees_with_instance(
    stored, pattern, num_shards, key_position
):
    """Spill → evict → reload round-trips are invisible to reads."""
    ground = _ground(stored)
    instance = Instance(ground)
    sharded = ShardedStore(
        ground,
        memory_budget=TINY_BUDGET,
        num_shards=num_shards,
        key_position=key_position,
    )
    assert len(sharded) == len(instance)
    assert set(sharded) == set(instance)
    expected = sorted(map(str, instance.matching(pattern)))
    assert sorted(map(str, sharded.matching(pattern))) == expected
    bound = {
        i: term
        for i, term in enumerate(pattern.args, start=1)
        if not isinstance(term, Variable)
    }
    expected_bound = sorted(
        map(str, instance.matching_bound(pattern.predicate, bound,
                                         arity=pattern.arity))
    )
    got_bound = sorted(
        map(str, sharded.matching_bound(pattern.predicate, bound,
                                        arity=pattern.arity))
    )
    assert got_bound == expected_bound
    for atom in ground:
        assert atom in sharded


@settings(max_examples=40, deadline=None)
@given(
    st.lists(atoms(), min_size=1, max_size=16),
    st.data(),
)
def test_discards_across_spill_agree_with_instance(stored, data):
    """Membership and probes stay exact when discards hit paged shards."""
    ground = _ground(stored)
    instance = Instance(ground)
    sharded = ShardedStore(ground, memory_budget=TINY_BUDGET, num_shards=3)
    if ground:
        victims = data.draw(
            st.lists(st.sampled_from(ground), max_size=len(ground))
        )
    else:
        victims = []
    for atom in victims:
        assert sharded.discard(atom) == instance.discard(atom)
    assert len(sharded) == len(instance)
    assert set(sharded) == set(instance)
    for atom in ground:
        assert (atom in sharded) == (atom in instance)
    seen_preds = {atom.predicate for atom in ground}
    for predicate in seen_preds:
        assert sorted(map(str, sharded.by_predicate(predicate))) == sorted(
            map(str, instance.by_predicate(predicate))
        )


@settings(max_examples=30, deadline=None)
@given(st.lists(atoms(), min_size=2, max_size=16))
def test_probe_snapshot_survives_discard_storm(stored):
    """A probe opened before discards yields exactly its snapshot."""
    ground = _ground(stored)
    if not ground:
        return
    sharded = ShardedStore(ground, memory_budget=TINY_BUDGET, num_shards=2)
    predicate = ground[0].predicate
    arity = ground[0].arity
    expected = {
        atom for atom in ground
        if atom.predicate == predicate and atom.arity == arity
    }
    probe = sharded.matching_bound(predicate, {}, arity=arity)
    first = next(probe)
    sharded.discard_all(list(sharded))
    assert {first, *probe} == expected
    assert len(sharded) == 0


@settings(max_examples=25, deadline=None)
@given(warded_instances(), st.integers(min_value=1, max_value=6))
def test_shard_parallel_matches_sequential(data, workers):
    """shard_parallel_evaluate ≡ Query.evaluate on random fixpoints."""
    database, rules = data
    result = chase(
        database, rules,
        store=sharded_store_factory(TINY_BUDGET, None, num_shards=4),
        max_atoms=400,
    )
    store = result.instance
    for text in (
        "q(X,Y) :- t(X,Y).",
        "q(X) :- t(X,X).",
        "q(X) :- e(X,Y), t(Y,X).",
        "q(X,Z) :- t(X,Y), t(Y,Z).",
    ):
        query = parse_query(text)
        expected = query.evaluate(store)
        got = shard_parallel_evaluate(query, store, workers=workers)
        assert got == expected, text
