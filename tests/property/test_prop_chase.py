"""Property-based tests for the chase on random Datalog programs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.runner import chase
from repro.core.atoms import Atom
from repro.core.homomorphism import homomorphisms
from repro.core.instance import Database
from repro.core.program import Program
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD


@st.composite
def datalog_instances(draw):
    """A random terminating (full) program plus database over a small graph."""
    n = draw(st.integers(min_value=2, max_value=5))
    edge_count = draw(st.integers(min_value=1, max_value=8))
    rng = random.Random(draw(st.integers(0, 10**6)))
    facts = set()
    for _ in range(edge_count):
        facts.add(
            Atom("e", (Constant(f"n{rng.randrange(n)}"),
                       Constant(f"n{rng.randrange(n)}")))
        )
    database = Database(facts)
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    rules = [TGD((Atom("e", (x, y)),), (Atom("t", (x, y)),))]
    if draw(st.booleans()):
        rules.append(
            TGD((Atom("e", (x, y)), Atom("t", (y, z))), (Atom("t", (x, z)),))
        )
    else:
        rules.append(
            TGD((Atom("t", (x, y)), Atom("t", (y, z))), (Atom("t", (x, z)),))
        )
    if draw(st.booleans()):
        rules.append(TGD((Atom("t", (x, y)),), (Atom("u", (x,)),)))
    return Program(rules), database


@given(datalog_instances())
@settings(max_examples=60, deadline=None)
def test_chase_result_is_a_model(instance):
    """The chase result satisfies every TGD (Section 2: I ⊨ Σ)."""
    program, database = instance
    result = chase(database, program)
    assert result.saturated
    for tgd in program:
        for hom in homomorphisms(list(tgd.body), result.instance):
            satisfied = any(
                True
                for _ in homomorphisms(
                    list(tgd.head),
                    result.instance,
                    {v: hom[v] for v in tgd.frontier()},
                )
            )
            assert satisfied, f"{tgd} violated"


@given(datalog_instances())
@settings(max_examples=40, deadline=None)
def test_chase_contains_database(instance):
    program, database = instance
    result = chase(database, program)
    assert database.atoms() <= result.instance.atoms()


@given(datalog_instances())
@settings(max_examples=40, deadline=None)
def test_chase_monotone_under_database_growth(instance):
    """Adding facts never removes chase atoms (Datalog monotonicity)."""
    program, database = instance
    small = chase(database, program).instance.atoms()
    bigger = Database(database.atoms() | {Atom("e", (Constant("n0"),
                                                     Constant("n1")))})
    large = chase(bigger, program).instance.atoms()
    assert small <= large


@given(datalog_instances())
@settings(max_examples=40, deadline=None)
def test_restricted_chase_agrees_with_seminaive(instance):
    """For full programs the chase fixpoint equals semi-naive Datalog."""
    from repro.datalog.seminaive import seminaive

    program, database = instance
    via_chase = chase(database, program).instance.atoms()
    via_seminaive = seminaive(database, program).instance.atoms()
    assert via_chase == via_seminaive
