"""Property tests: magic-rewritten answers ≡ unrewritten certain answers.

The acceptance bar of the demand transformation: for *random* full
programs × random binding patterns × all three storage backends, the
magic plan's answer set must equal the ground-truth semi-naive fixpoint
answers — before and after ``Session.apply`` update batches (where the
demand-specific materialization must fall back to recomputation with a
recorded reason, never silently serve stale or demand-mismatched
facts).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.program import Program
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD
from repro.datalog.seminaive import datalog_answers
from repro.incremental import ChangeSet
from repro.rewriting import magic_rewrite
from repro.storage import BACKENDS

#: Fixed-arity vocabulary (Program.schema rejects mixed arities).
PREDICATES = {"e": 2, "t": 2, "s": 1}
IDB = ("t", "s")
VARIABLES = tuple(Variable(n) for n in ("X", "Y", "Z"))
CONSTANTS = tuple(Constant(f"n{i}") for i in range(4))


@st.composite
def full_programs(draw):
    """A random full, single-head program over the small vocabulary.

    Head arguments are drawn from the body's variables (plus the odd
    constant), so every rule is full by construction; bodies mix EDB
    and IDB atoms, giving recursion, mutual recursion, constants in
    rule heads and bodies, and rules that share no variables at all.
    """
    rng = random.Random(draw(st.integers(0, 10**6)))
    rules = []
    for _ in range(draw(st.integers(1, 4))):
        body = []
        for _ in range(rng.randrange(1, 3)):
            predicate = rng.choice(tuple(PREDICATES))
            args = tuple(
                rng.choice(VARIABLES + CONSTANTS[:1])
                for _ in range(PREDICATES[predicate])
            )
            body.append(Atom(predicate, args))
        body_vars = sorted(
            {t for a in body for t in a.args if isinstance(t, Variable)},
            key=str,
        )
        head_pool = tuple(body_vars) + CONSTANTS[:2]
        head_pred = rng.choice(IDB)
        head = Atom(
            head_pred,
            tuple(
                rng.choice(head_pool)
                for _ in range(PREDICATES[head_pred])
            ),
        )
        rules.append(TGD(tuple(body), (head,)))
    return Program(rules, name="prop-magic")


def _random_fact(rng):
    predicate = rng.choice(tuple(PREDICATES))
    return Atom(
        predicate,
        tuple(
            rng.choice(CONSTANTS) for _ in range(PREDICATES[predicate])
        ),
    )


@st.composite
def databases(draw):
    rng = random.Random(draw(st.integers(0, 10**6)))
    return Database(
        {_random_fact(rng) for _ in range(draw(st.integers(1, 8)))}
    )


@st.composite
def bound_queries(draw):
    """A random query with a random binding pattern (0–2 constants)."""
    rng = random.Random(draw(st.integers(0, 10**6)))
    atoms = []
    bound_vars = []
    for _ in range(rng.randrange(1, 3)):
        predicate = rng.choice(IDB + ("e",))
        args = []
        for _ in range(PREDICATES[predicate]):
            roll = rng.random()
            if roll < 0.4:
                args.append(rng.choice(CONSTANTS))
            else:
                var = rng.choice(VARIABLES)
                args.append(var)
                bound_vars.append(var)
        atoms.append(Atom(predicate, tuple(args)))
    outputs = tuple(
        v for v in dict.fromkeys(bound_vars)
        if rng.random() < 0.7
    )
    return ConjunctiveQuery(outputs, tuple(atoms))


@st.composite
def change_sets(draw):
    rng = random.Random(draw(st.integers(0, 10**6)))
    inserts = [_random_fact(rng) for _ in range(rng.randrange(0, 4))]
    retracts = [_random_fact(rng) for _ in range(rng.randrange(0, 4))]
    return ChangeSet.of(inserts=inserts, retracts=retracts)


@settings(max_examples=60, deadline=None)
@given(full_programs(), databases(), bound_queries())
def test_magic_rewrite_equals_ground_truth(program, database, query):
    """The rewriting itself, no session: rewritten program + seeds run
    through the bare semi-naive engine ≡ the unrewritten fixpoint."""
    from repro.datalog.seminaive import seminaive

    rewriting = magic_rewrite(program, query)
    assert rewriting.program.is_full()
    assert rewriting.program.is_single_head()
    seeded = list(database) + list(rewriting.seed)
    got = seminaive(seeded, rewriting.program).evaluate(rewriting.query)
    assert got == datalog_answers(query, database, program)


@settings(max_examples=25, deadline=None)
@given(full_programs(), databases(), bound_queries())
def test_magic_plan_equals_ground_truth_all_backends(
    program, database, query
):
    """Through the session layer, forced magic, across all backends."""
    expected = datalog_answers(query, database, program)
    for backend in BACKENDS:
        session = Session(store=backend)
        session.compile(program)
        session.add_facts(database)
        stream = session.query(query, rewrite="magic", method="datalog")
        assert set(stream.to_set()) == expected, backend
        assert stream.stats.rewrite == "magic"
        # The demand-specific fixpoint is cached and replayed exactly.
        again = session.query(query, rewrite="magic", method="datalog")
        assert set(again.to_set()) == expected, backend
        assert again.stats.from_cache, backend


@settings(max_examples=25, deadline=None)
@given(
    full_programs(),
    databases(),
    bound_queries(),
    st.lists(change_sets(), min_size=1, max_size=3),
)
def test_magic_stays_exact_across_session_apply(
    program, database, query, updates
):
    """Post-``Session.apply`` states: the magic plan must recompute
    against the new EDB (with the fallback recorded whenever a magic
    fixpoint was cached), never serve the stale demand fixpoint."""
    session = Session()
    session.compile(program)
    session.add_facts(database)
    # Warm a magic materialization so apply() has something to drop.
    session.query(query, rewrite="magic", method="datalog").to_set()
    for changes in updates:
        report = session.apply(changes)
        effective = report.added or report.dropped
        if effective:
            assert any(
                "demand-specific" in reason
                for _, reason in report.fallbacks
            ), "apply must record the magic fallback"
        stream = session.query(query, rewrite="magic", method="datalog")
        got = set(stream.to_set())
        expected = datalog_answers(
            query, Database(session.edb), program
        )
        assert got == expected
        if effective:
            assert not stream.stats.from_cache
