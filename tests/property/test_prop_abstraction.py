"""Property tests for the star-abstraction oracle invariant.

The soundness of the dead-state pruning (and of the candidate pools of
the answer facade) rests on one invariant: the abstraction
over-approximates every chase — collapsing the nulls of any chase atom
to ⋆ must yield an atom of the abstract instance.
"""

from hypothesis import given, settings, strategies as st

from repro.chase import chase
from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant, Null
from repro.lang.parser import parse_program
from repro.reasoning.abstraction import STAR, star_abstraction

NODES = 5

edge_lists = st.lists(
    st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)).filter(
        lambda p: p[0] != p[1]
    ),
    min_size=1,
    max_size=10,
    unique=True,
)

seeds = st.lists(st.integers(0, NODES - 1), min_size=1, max_size=3,
                 unique=True)


def existential_program():
    program, _ = parse_program("""
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
        mark(X,W) :- t(X,Y).
        seen(X) :- mark(X,W).
    """)
    return program


def build_database(pairs, marked) -> Database:
    database = Database()
    for a, b in pairs:
        database.add(Atom("e", (Constant(f"n{a}"), Constant(f"n{b}"))))
    for node in marked:
        database.add(Atom("p", (Constant(f"n{node}"),)))
    return database


def collapse(atom: Atom) -> Atom:
    return Atom(
        atom.predicate,
        tuple(STAR if isinstance(t, Null) else t for t in atom.args),
    )


@given(edge_lists, seeds)
@settings(max_examples=40, deadline=None)
def test_abstraction_over_approximates_chase(pairs, marked):
    program = existential_program()
    database = build_database(pairs, marked)
    abstract = star_abstraction(database, program.single_head())
    result = chase(database, program, max_atoms=4000)
    assert result.saturated
    for atom in result.instance:
        assert collapse(atom) in abstract, atom


@given(edge_lists, seeds)
@settings(max_examples=25, deadline=None)
def test_abstraction_is_full_datalog_fixpoint(pairs, marked):
    # The abstraction contains no nulls — only constants (incl. ⋆).
    program = existential_program()
    database = build_database(pairs, marked)
    abstract = star_abstraction(database, program.single_head())
    for atom in abstract:
        assert all(isinstance(t, Constant) for t in atom.args)
