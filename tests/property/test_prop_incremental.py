"""Property tests: incremental maintenance ≡ recomputation from scratch.

The acceptance bar of :mod:`repro.incremental`: for random interleaved
streams of insertions, retractions, and queries driven through
``Session.apply``, every query answer must equal a from-scratch
``certain_answers`` over the EDB as it stands at that point — across
all three storage backends and every plannable engine whose plan caches
a materialization.  Retractions are load-bearing here, not an
afterthought: the op generator plants them at roughly the same rate as
insertions, including retractions of facts of *derived* predicates.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.program import Program
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD
from repro.incremental import ChangeSet
from repro.lang.parser import parse_query
from repro.reasoning.answers import certain_answers
from repro.storage import BACKENDS

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

#: Linear TC (recursive stratum → DRed) feeding two non-recursive
#: strata (→ counting); heads of every stratum are also legal EDB
#: predicates, so retraction of derived-predicate assertions is hit.
PROGRAM = Program(
    [
        TGD((Atom("e", (X, Y)),), (Atom("t", (X, Y)),)),
        TGD((Atom("e", (X, Y)), Atom("t", (Y, Z))), (Atom("t", (X, Z)),)),
        TGD((Atom("t", (X, Y)), Atom("t", (Y, X))), (Atom("m", (X, Y)),)),
        TGD((Atom("t", (X, Y)),), (Atom("r", (X,)),)),
    ],
    name="prop-incremental",
)

QUERY = parse_query("q(X,Y) :- t(X,Y).")
QUERIES = (
    QUERY,
    parse_query("q(X,Y) :- m(X,Y)."),
    parse_query("q(X) :- r(X)."),
)

#: (predicate, arity) pool for generated facts — EDB *and* derived.
PREDICATES = (("e", 2), ("t", 2), ("m", 2), ("r", 1))


@st.composite
def op_streams(draw):
    """A seed database plus a random insert/retract/query interleaving."""
    rng = random.Random(draw(st.integers(0, 10**6)))
    n = draw(st.integers(min_value=3, max_value=5))

    def fact(predicate, arity):
        return Atom(
            predicate,
            tuple(Constant(f"n{rng.randrange(n)}") for _ in range(arity)),
        )

    seed = {fact("e", 2) for _ in range(draw(st.integers(1, 6)))}
    ops = []
    for _ in range(draw(st.integers(1, 12))):
        kind = rng.choice(("insert", "retract", "mixed", "query"))
        if kind == "query":
            ops.append(("query", rng.randrange(len(QUERIES))))
            continue
        inserts, retracts = [], []
        if kind in ("insert", "mixed"):
            inserts = [
                fact(*rng.choice(PREDICATES))
                for _ in range(rng.randrange(1, 4))
            ]
        if kind in ("retract", "mixed"):
            retracts = [
                fact(*rng.choice(PREDICATES))
                for _ in range(rng.randrange(1, 4))
            ]
        ops.append(("apply", ChangeSet.of(inserts=inserts, retracts=retracts)))
    ops.append(("query", 0))  # always check the final state
    return Database(seed), ops


def _drive(store: str, method: str, database, ops):
    """Replay *ops* through one session; check every query as it lands."""
    session = Session(store=store)
    session.compile(PROGRAM)
    session.add_facts(database)
    # Warm the materialization so maintenance has something to upgrade.
    session.query(QUERY, method=method).to_set()
    for kind, payload in ops:
        if kind == "apply":
            session.apply(payload)
            continue
        query = QUERIES[payload]
        stream = session.query(query, method=method)
        got = set(stream.to_set())
        expected = certain_answers(
            query, Database(session.edb), PROGRAM, method=method
        )
        assert got == expected, (store, method, query)


@settings(max_examples=30, deadline=None)
@given(op_streams())
def test_session_apply_equals_recompute_datalog_all_backends(data):
    database, ops = data
    for store in BACKENDS:
        _drive(store, "datalog", database, ops)


@settings(max_examples=12, deadline=None)
@given(op_streams())
def test_session_apply_equals_recompute_other_engines(data):
    """chase and network cache materializations too; their upgraded
    fixpoints must agree with recomputation just the same."""
    database, ops = data
    for method in ("chase", "network"):
        _drive("instance", method, database, ops)


@settings(max_examples=20, deadline=None)
@given(op_streams())
def test_maintained_cache_is_actually_hit(data):
    """After any update stream, the next datalog query must be served
    from the upgraded cache (no silent fall-back to recomputation)."""
    database, ops = data
    session = Session()
    session.compile(PROGRAM)
    session.add_facts(database)
    session.query(QUERY).to_set()
    applied = False
    for kind, payload in ops:
        if kind == "apply":
            report = session.apply(payload)
            assert not report.fallbacks
            applied = True
    stream = session.query(QUERY)
    stream.to_set()
    if applied:
        assert stream.stats.from_cache
