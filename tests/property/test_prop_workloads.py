"""Property tests for the workload harness.

Three laws the trace layer must satisfy for replay to be a trustworthy
measurement instrument:

* **determinism** — the generator is a pure function of its arguments:
  the same seed yields the byte-identical NDJSON dump;
* **skew shape** — the zipfian sampler actually produces its advertised
  distribution: the rank-1 key's empirical frequency stays within
  binomial sampling error of the analytic mass;
* **round-trip** — serialization is lossless: ``loads(dumps(t)) == t``
  for every generated trace.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import MIXES, Trace, ZipfianSampler, generate_trace

#: Small scenario shapes: vertices divisible by clusters (a churn-family
#: constraint), key spaces big enough for skew to mean something.
_shapes = st.sampled_from(
    [
        (16, 32, 2),
        (24, 48, 4),
        (32, 64, 8),
    ]
)


@settings(max_examples=15, deadline=None)
@given(
    shape=_shapes,
    ops=st.integers(min_value=1, max_value=80),
    mix=st.sampled_from(sorted(MIXES)),
    skew=st.floats(min_value=0.0, max_value=2.0),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_same_seed_reproduces_identical_trace(shape, ops, mix, skew, seed):
    vertices, edges, clusters = shape
    kwargs = dict(
        ops=ops,
        mix=mix,
        skew=skew,
        seed=seed,
        vertices=vertices,
        edges=edges,
        clusters=clusters,
    )
    assert generate_trace(**kwargs).dumps() == generate_trace(**kwargs).dumps()


@settings(max_examples=15, deadline=None)
@given(
    keys=st.integers(min_value=5, max_value=200),
    skew=st.floats(min_value=0.5, max_value=2.0),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_zipfian_top_rank_matches_analytic_mass(keys, skew, seed):
    population = [f"k{i}" for i in range(keys)]
    sampler = ZipfianSampler(population, s=skew, seed=seed)
    expected = sampler.expected_mass(1)
    draws = 2000
    hits = sum(sampler.sample() == "k0" for _ in range(draws))
    observed = hits / draws
    # Binomial sampling error: 5σ keeps the false-positive rate
    # negligible across the example budget while still catching a
    # sampler whose weights or bisection are wrong.
    sigma = math.sqrt(expected * (1 - expected) / draws)
    assert abs(observed - expected) <= 5 * sigma + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    shape=_shapes,
    ops=st.integers(min_value=1, max_value=80),
    mix=st.sampled_from(sorted(MIXES)),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_trace_round_trips_through_ndjson(shape, ops, mix, seed):
    vertices, edges, clusters = shape
    trace = generate_trace(
        ops=ops,
        mix=mix,
        seed=seed,
        vertices=vertices,
        edges=edges,
        clusters=clusters,
    )
    recovered = Trace.loads(trace.dumps())
    assert recovered == trace
    # And the round-trip is a fixpoint at the byte level too.
    assert recovered.dumps() == trace.dumps()
