"""Property tests: compiled kernels ≡ the per-tuple interpreter.

Random stratified (positive, full, single-head) Datalog programs over
random databases, executed through every dispatching surface:

* plain saturation — ``seminaive`` with ``exec_mode="kernel"`` on the
  columnar and sharded stores versus the interpreter on the plain
  instance store, comparing the fixpoint atom set, the answer digest,
  and the work counters (rounds / derived / considered) exactly;
* magic-rewritten — a bound query forced through ``rewrite="magic"``
  in both exec modes, digests compared;
* post-``Session.apply`` — the incremental-maintenance path: saturate,
  apply a random insert batch, re-query; the kernel-maintained session
  must answer digest-equal to a from-scratch interpreter session.

The interpreter is the ground-truth oracle; any divergence is a kernel
bug by definition.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.benchsuite.report import answer_digest
from repro.core.atoms import Atom
from repro.core.program import Program
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD
from repro.datalog.seminaive import seminaive
from repro.lang.parser import parse_query

NODES = 5

VARS = (Variable("X"), Variable("Y"), Variable("Z"), Variable("W"))
CONSTS = tuple(Constant(f"n{i}") for i in range(NODES))

#: Body atoms draw from the EDB relation and the IDB heads, so
#: recursion (including mutual recursion) arises naturally.
PREDICATES = (("e", 2), ("p", 2), ("r", 1))
IDB_HEADS = (("p", 2), ("r", 1))

#: Every program gets this rule appended: it guarantees the IDB is
#: reachable from the EDB (so fixpoints are non-trivial) and gives the
#: magic-rewritten query a stable goal predicate.
BASE_RULE = TGD(
    body=(Atom("e", (VARS[0], VARS[1])),),
    head=(Atom("p", (VARS[0], VARS[1])),),
)


@st.composite
def body_atoms(draw):
    predicate, arity = draw(st.sampled_from(PREDICATES))
    args = tuple(
        draw(
            st.one_of(
                st.sampled_from(VARS),
                st.sampled_from(CONSTS),
            )
        )
        for _ in range(arity)
    )
    return Atom(predicate, args)


@st.composite
def rules(draw):
    body = tuple(
        draw(body_atoms()) for _ in range(draw(st.integers(1, 3)))
    )
    body_vars = tuple(
        sorted(
            {
                t
                for atom in body
                for t in atom.args
                if isinstance(t, Variable)
            },
            key=lambda v: v.name,
        )
    )
    predicate, arity = draw(st.sampled_from(IDB_HEADS))
    choices = (
        st.one_of(st.sampled_from(body_vars), st.sampled_from(CONSTS))
        if body_vars
        else st.sampled_from(CONSTS)
    )
    head = Atom(predicate, tuple(draw(choices) for _ in range(arity)))
    return TGD(body=body, head=(head,))


@st.composite
def programs(draw):
    extra = draw(st.lists(rules(), min_size=0, max_size=4))
    return Program((BASE_RULE, *extra))


edge_facts = st.lists(
    st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)),
    min_size=1,
    max_size=10,
    unique=True,
)

unary_facts = st.lists(
    st.integers(0, NODES - 1), min_size=0, max_size=4, unique=True
)


def build_database(pairs, units):
    atoms = [Atom("e", (CONSTS[i], CONSTS[j])) for i, j in pairs]
    atoms.extend(Atom("r", (CONSTS[i],)) for i in units)
    return atoms


def _digest(instance):
    return answer_digest(
        (atom.predicate, *atom.args) for atom in instance.atoms()
    )


@given(program=programs(), pairs=edge_facts, units=unary_facts)
@settings(max_examples=40, deadline=None)
def test_kernel_fixpoint_matches_interpreter(program, pairs, units):
    database = build_database(pairs, units)
    reference = seminaive(
        database, program, store="instance", exec_mode="interpret"
    )
    for store in ("columnar", "sharded"):
        result = seminaive(
            database, program, store=store, exec_mode="kernel"
        )
        assert result.exec_mode == "kernel"
        assert result.instance.atoms() == reference.instance.atoms()
        assert _digest(result.instance) == _digest(reference.instance)
        # Not just the fixpoint: the round structure and the exact-once
        # match counting must agree with the interpreter row for row.
        assert result.rounds == reference.rounds
        assert result.derived == reference.derived
        assert result.considered == reference.considered
        assert (
            result.per_round_derived == reference.per_round_derived
        )
        assert (
            result.per_round_considered
            == reference.per_round_considered
        )


BOUND_QUERY = parse_query("out(Y) :- p(n0, Y).")


def _session(store, program, database):
    session = Session(store=store)
    session.add_facts(database)
    session.compile(program)
    return session


@given(program=programs(), pairs=edge_facts, units=unary_facts)
@settings(max_examples=25, deadline=None)
def test_kernel_matches_interpreter_under_magic(program, pairs, units):
    database = build_database(pairs, units)
    results = {}
    for store, exec_mode in (
        ("columnar", "kernel"),
        ("sharded", "kernel"),
        ("instance", "interpret"),
    ):
        session = _session(store, program, database)
        stream = session.query(
            BOUND_QUERY, rewrite="magic", exec_mode=exec_mode
        )
        answers = stream.to_set()
        assert stream.stats.rewrite == "magic"
        if exec_mode == "kernel":
            assert stream.stats.exec_mode == "kernel"
        results[(store, exec_mode)] = answer_digest(answers)
    assert len(set(results.values())) == 1, results


@given(
    program=programs(),
    pairs=edge_facts,
    units=unary_facts,
    extra=st.lists(
        st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)),
        min_size=1,
        max_size=4,
        unique=True,
    ),
)
@settings(max_examples=25, deadline=None)
def test_kernel_matches_interpreter_after_apply(
    program, pairs, units, extra
):
    database = build_database(pairs, units)
    inserts = [Atom("e", (CONSTS[i], CONSTS[j])) for i, j in extra]
    query = parse_query("out(X, Y) :- p(X, Y).")

    maintained = _session("columnar", program, database)
    maintained.query(query, exec_mode="kernel").to_set()
    maintained.apply(inserts=inserts)
    kernel_answers = maintained.query(query, exec_mode="kernel").to_set()

    scratch = _session("instance", program, database + inserts)
    scratch_answers = scratch.query(query, exec_mode="interpret").to_set()

    assert answer_digest(kernel_answers) == answer_digest(scratch_answers)
    assert kernel_answers == scratch_answers
