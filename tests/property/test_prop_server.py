"""Property test: snapshot isolation under concurrent queries + updates.

The serving layer's acceptance bar: for random change-batch streams
applied through :class:`~repro.server.ReasoningService` while reader
threads issue queries *concurrently*, every answer set must equal a
from-scratch ``certain_answers`` over the EDB **as it stood at the
query's admitted version** — across all three storage backends.  No
answer may blend versions (a torn read), no request may error, and no
version may leak (all leases released once readers drain).
"""

import random
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant
from repro.incremental import ChangeSet
from repro.lang.parser import parse_program, parse_query
from repro.reasoning.answers import certain_answers
from repro.server import ReasoningService
from repro.storage import BACKENDS

RULES = """
t(X, Y) :- e(X, Y).
t(X, Z) :- e(X, Y), t(Y, Z).
r(X) :- t(X, Y).
"""

QUERIES = (
    "q(X, Y) :- t(X, Y).",
    "q(X) :- t(n0, X).",
    "q(X) :- r(X).",
)

PROGRAM, _ = parse_program(RULES, name="prop-server")


@st.composite
def scenarios(draw):
    """A seed edge set plus a stream of insert/retract batches."""
    rng = random.Random(draw(st.integers(0, 10**6)))
    n = draw(st.integers(min_value=3, max_value=5))

    def edge():
        return Atom(
            "e",
            (
                Constant(f"n{rng.randrange(n)}"),
                Constant(f"n{rng.randrange(n)}"),
            ),
        )

    seed = {edge() for _ in range(draw(st.integers(1, 5)))}
    batches = []
    for _ in range(draw(st.integers(2, 6))):
        inserts = [edge() for _ in range(rng.randrange(0, 3))]
        retracts = [edge() for _ in range(rng.randrange(0, 2))]
        batches.append(ChangeSet.of(inserts=inserts, retracts=retracts))
    return sorted(seed, key=str), batches


def _source(seed):
    return RULES + "\n".join(f"{atom}." for atom in seed)


def _expected(query_text, atoms):
    answers = certain_answers(
        parse_query(query_text), Database(atoms), PROGRAM, method="datalog"
    )
    return {tuple(str(term) for term in row) for row in answers}


def _run_concurrently(store, seed, batches):
    """Readers query while the writer applies every batch; returns the
    observations plus the EDB state recorded per installed version."""
    service = ReasoningService(_source(seed), store=store)
    edb_states = {0: frozenset(service.session.edb)}
    observations = []
    errors = []
    start = threading.Barrier(4)
    writer_done = threading.Event()

    def writer():
        start.wait(timeout=10)
        try:
            for batch in batches:
                result = service.apply(batch)
                if result.effective:
                    # Only the writer mutates session.edb: this snapshot
                    # is exactly the admitted state of result.version.
                    edb_states[result.version] = frozenset(
                        service.session.edb
                    )
        except Exception as error:  # pragma: no cover
            errors.append(error)
        finally:
            writer_done.set()

    def reader(index):
        rng = random.Random(index)
        start.wait(timeout=10)
        try:
            while True:
                done_before = writer_done.is_set()
                query_text = rng.choice(QUERIES)
                result = service.query(query_text)
                observations.append(
                    (query_text, result.version, result.answers)
                )
                if done_before:
                    return  # one full pass after the last batch landed
        except Exception as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(index,)) for index in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads)
    return service, edb_states, observations, errors


@settings(max_examples=8, deadline=None)
@given(scenarios())
def test_concurrent_answers_match_admitted_version(data):
    seed, batches = data
    for store in BACKENDS:
        service, edb_states, observations, errors = _run_concurrently(
            store, seed, batches
        )
        assert not errors, (store, errors)
        assert observations
        expectations = {}
        for query_text, version, answers in observations:
            assert version in edb_states, (store, version)
            key = (query_text, version)
            if key not in expectations:
                expectations[key] = _expected(
                    query_text, edb_states[version]
                )
            got = {tuple(row) for row in answers}
            assert got == expectations[key], (store, query_text, version)
        # No lease leaked: every version's refcount is back to zero.
        assert all(
            count == 0 for count in service.snapshots.refcounts().values()
        ), store
