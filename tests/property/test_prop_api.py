"""Property tests: the session layer is observationally equivalent to
the legacy eager entry points.

The acceptance bar of the ``repro.api`` redesign: for random warded
programs and databases, ``Session.query(...)`` — a lazy
:class:`~repro.api.stream.AnswerStream` — must materialize exactly the
set the legacy eager facades computed, for every storage backend, both
on a cold session and through the session's cross-query caches, and
prefix pulls must never disagree with the final set (soundness of the
stream at every prefix).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session, compile_program
from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.program import Program
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD
from repro.datalog.seminaive import datalog_answers, seminaive
from repro.lang.parser import parse_query
from repro.reasoning.answers import certain_answers
from repro.storage import BACKENDS

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

QUERIES = (
    "q(X,Y) :- t(X,Y).",
    "q(X) :- t(X,Y).",
    "q() :- t(X,Y).",
)


@st.composite
def warded_instances(draw):
    """A random warded program plus database (mirrors the storage suite)."""
    n = draw(st.integers(min_value=2, max_value=5))
    edge_count = draw(st.integers(min_value=1, max_value=8))
    rng = random.Random(draw(st.integers(0, 10**6)))
    facts = {
        Atom("e", (Constant(f"n{rng.randrange(n)}"),
                   Constant(f"n{rng.randrange(n)}")))
        for _ in range(edge_count)
    }
    rules = [TGD((Atom("e", (X, Y)),), (Atom("t", (X, Y)),))]
    if draw(st.booleans()):
        rules.append(
            TGD((Atom("e", (X, Y)), Atom("t", (Y, Z))), (Atom("t", (X, Z)),))
        )
    else:
        rules.append(
            TGD((Atom("t", (X, Y)), Atom("t", (Y, Z))), (Atom("t", (X, Z)),))
        )
    if draw(st.booleans()):
        rules.append(TGD((Atom("t", (X, Y)),), (Atom("w", (Y, Z)),)))
    return Database(facts), Program(rules, name="prop")


@settings(max_examples=30, deadline=None)
@given(warded_instances(), st.sampled_from(QUERIES))
def test_stream_equals_legacy_eager_across_backends(data, query_text):
    database, program = data
    query = parse_query(query_text)
    legacy = certain_answers(query, database, program)
    for backend in BACKENDS:
        session = Session(store=backend)
        session.compile(program)
        session.add_facts(database)
        stream = session.query(query)
        assert set(stream.to_set()) == legacy, backend
        # Replays and cache hits agree with the cold run.
        again = session.query(query)
        assert set(again.to_set()) == legacy, backend


@settings(max_examples=30, deadline=None)
@given(warded_instances(), st.sampled_from(QUERIES))
def test_stream_prefix_is_sound(data, query_text):
    database, program = data
    query = parse_query(query_text)
    session = Session()
    session.compile(program)
    session.add_facts(database)
    stream = session.query(query)
    prefix = stream.first(2)
    full = set(stream.to_set())
    assert set(prefix) <= full
    assert full == certain_answers(query, database, program)


@settings(max_examples=25, deadline=None)
@given(warded_instances())
def test_datalog_stream_equals_fixpoint_evaluation(data):
    """The incremental (delta-evaluated) datalog stream equals eager
    evaluation over the final fixpoint, per backend."""
    database, program = data
    full_rules = Program(
        [tgd for tgd in program if tgd.is_full()], name="full"
    )
    query = parse_query("q(X,Y) :- t(X,Y).")
    for backend in BACKENDS:
        eager = seminaive(database, full_rules, store=backend).evaluate(query)
        assert (
            datalog_answers(query, database, full_rules, store=backend)
            == eager
        ), backend


@settings(max_examples=20, deadline=None)
@given(warded_instances(), st.sampled_from(QUERIES))
def test_forced_engines_agree(data, query_text):
    """datalog (on full programs), chase, and network agree through the
    planner for the same query."""
    database, program = data
    if not all(tgd.is_full() for tgd in program):
        program = Program([t for t in program if t.is_full()], name="full")
    query = parse_query(query_text)
    compiled = compile_program(program)
    results = {}
    for method in ("datalog", "chase", "network"):
        session = Session()
        session.compile(compiled)
        session.add_facts(database)
        results[method] = set(
            session.query(query, method=method).to_set()
        )
    assert results["datalog"] == results["chase"] == results["network"]
