"""Property-based tests for query decomposition (Definition 4.4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import atoms_variables
from repro.core.query import ConjunctiveQuery
from repro.prooftree.decomposition import (
    connected_components,
    decompose,
    is_decomposition,
)

from .strategies import atom_sets


@st.composite
def queries(draw):
    atoms = draw(atom_sets(min_size=1, max_size=5))
    body_vars = sorted(atoms_variables(atoms), key=lambda v: v.name)
    if body_vars:
        k = draw(st.integers(0, len(body_vars)))
        output = tuple(body_vars[:k])
    else:
        output = ()
    return ConjunctiveQuery(output, tuple(atoms))


@given(queries())
@settings(max_examples=200)
def test_decompose_produces_valid_decomposition(query):
    children = decompose(query)
    assert is_decomposition(query, children)


@given(queries())
@settings(max_examples=200)
def test_components_cover_and_do_not_share_non_outputs(query):
    outputs = query.output_variables()
    components = connected_components(query.atoms, outputs)
    covered = {atom for component in components for atom in component}
    assert covered == set(query.atoms)
    for i, first in enumerate(components):
        for second in components[i + 1:]:
            shared = atoms_variables(first) & atoms_variables(second)
            assert shared <= outputs


@given(queries())
@settings(max_examples=200)
def test_components_are_connected(query):
    """Within a component, every atom reaches every other through
    shared non-output variables (finest decomposition)."""
    outputs = query.output_variables()
    for component in connected_components(query.atoms, outputs):
        if len(component) == 1:
            continue
        # BFS over the sharing relation inside the component
        remaining = list(component)
        frontier = [remaining.pop()]
        while frontier and remaining:
            current = frontier.pop()
            linked = [
                atom
                for atom in remaining
                if (current.variables() & atom.variables()) - outputs
            ]
            for atom in linked:
                remaining.remove(atom)
                frontier.append(atom)
        assert not remaining, "component is not connected"


@given(queries())
@settings(max_examples=100)
def test_decomposition_children_inherit_output_order(query):
    for child in decompose(query):
        positions = [query.output.index(v) for v in child.output]
        assert positions == sorted(positions)
