"""Shared hypothesis strategies for the property-based tests."""

from hypothesis import strategies as st

from repro.core.atoms import Atom
from repro.core.terms import Constant, Variable

PREDICATES = ["p", "q", "r", "s"]
VARIABLE_NAMES = ["X", "Y", "Z", "W", "V"]
CONSTANT_VALUES = ["a", "b", "c"]


def variables():
    return st.sampled_from(VARIABLE_NAMES).map(Variable)


def constants():
    return st.sampled_from(CONSTANT_VALUES).map(Constant)


def terms():
    return st.one_of(variables(), constants())


def atoms(max_arity: int = 3):
    """Random flat atoms over a small vocabulary."""
    return st.builds(
        lambda pred, args: Atom(f"{pred}{len(args)}", tuple(args)),
        st.sampled_from(PREDICATES),
        st.lists(terms(), min_size=1, max_size=max_arity),
    )


def atom_sets(min_size: int = 1, max_size: int = 5):
    return st.lists(atoms(), min_size=min_size, max_size=max_size).map(tuple)


def renamings():
    """A random injective renaming of the variable vocabulary."""
    return st.permutations(
        [f"R{i}" for i in range(len(VARIABLE_NAMES))]
    ).map(
        lambda names: {
            Variable(old): Variable(new)
            for old, new in zip(VARIABLE_NAMES, names)
        }
    )
