"""Property tests: the Section 1.2 linearization preserves semantics."""

from hypothesis import given, settings, strategies as st

from repro.analysis.linearization import linearize
from repro.analysis.piecewise import is_piecewise_linear
from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant
from repro.datalog.seminaive import datalog_answers
from repro.lang.parser import parse_program, parse_query

NODES = 6

edge_lists = st.lists(
    st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)).filter(
        lambda p: p[0] != p[1]
    ),
    min_size=1,
    max_size=12,
    unique=True,
)


def doubling_program():
    program, _ = parse_program("""
        t(X,Y) :- e(X,Y).
        t(X,Z) :- t(X,Y), t(Y,Z).
    """)
    return program


def build_database(pairs) -> Database:
    database = Database()
    for a, b in pairs:
        database.add(Atom("e", (Constant(f"n{a}"), Constant(f"n{b}"))))
    return database


QUERY = parse_query("q(X,Y) :- t(X,Y).")


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_linearization_preserves_answers(pairs):
    database = build_database(pairs)
    original = doubling_program()
    result = linearize(original)
    assert result.piecewise_linear
    assert is_piecewise_linear(result.program)
    assert datalog_answers(QUERY, database, result.program) == \
        datalog_answers(QUERY, database, original)


@given(edge_lists)
@settings(max_examples=20, deadline=None)
def test_linearization_is_idempotent_on_pwl_input(pairs):
    database = build_database(pairs)
    once = linearize(doubling_program()).program
    twice = linearize(once).program
    assert datalog_answers(QUERY, database, twice) == \
        datalog_answers(QUERY, database, once)
