"""Property tests for the OWL 2 QL layer on random ontologies.

Invariants: every encoded ontology lands in WARD ∩ PWL (the compilation
never leaves the fragment), and the linear proof search agrees with the
saturating-chase reference on class-membership queries.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import is_piecewise_linear, is_warded
from repro.chase import chase
from repro.lang.parser import parse_query
from repro.owl2ql import Ontology, encode
from repro.reasoning import certain_answers

CLASSES = ["c0", "c1", "c2", "c3"]
PROPS = ["p0", "p1"]
INDIVIDUALS = ["a", "b"]

subclass_axioms = st.lists(
    st.tuples(st.sampled_from(CLASSES), st.sampled_from(CLASSES)).filter(
        lambda pair: pair[0] != pair[1]
    ),
    max_size=4,
    unique=True,
)
domain_axioms = st.lists(
    st.tuples(st.sampled_from(PROPS), st.sampled_from(CLASSES)),
    max_size=2,
    unique=True,
)
memberships = st.lists(
    st.tuples(st.sampled_from(INDIVIDUALS), st.sampled_from(CLASSES)),
    min_size=1,
    max_size=3,
    unique=True,
)
relations = st.lists(
    st.tuples(
        st.sampled_from(INDIVIDUALS),
        st.sampled_from(PROPS),
        st.sampled_from(INDIVIDUALS),
    ),
    max_size=3,
    unique=True,
)


def build_ontology(subclasses, domains, members, related) -> Ontology:
    ontology = Ontology("random")
    for sub, sup in subclasses:
        ontology.subclass(sub, sup)
    for prop, cls in domains:
        ontology.domain(prop, cls)
    for individual, cls in members:
        ontology.member(individual, cls)
    for subject, prop, obj in related:
        ontology.related(subject, prop, obj)
    return ontology


@given(subclass_axioms, domain_axioms, memberships, relations)
@settings(max_examples=40, deadline=None)
def test_encoding_always_in_fragment(subclasses, domains, members, related):
    encoded = encode(build_ontology(subclasses, domains, members, related))
    assert is_warded(encoded.program)
    assert is_piecewise_linear(encoded.program)


@given(subclass_axioms, domain_axioms, memberships, relations)
@settings(max_examples=25, deadline=None)
def test_pwl_engine_agrees_with_chase(subclasses, domains, members, related):
    encoded = encode(build_ontology(subclasses, domains, members, related))
    query = parse_query("q(X, C) :- type(X, C).")
    # No value-inventing axioms in this strategy, so the restricted
    # chase saturates and is an exact reference.
    reference = chase(
        encoded.database, encoded.program, max_atoms=20000
    )
    assert reference.saturated
    via_pwl = certain_answers(
        query, encoded.database, encoded.program, method="pwl"
    )
    assert via_pwl == reference.evaluate(query)
