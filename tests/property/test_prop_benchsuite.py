"""Property tests: benchmark-generator determinism and planted truth.

The whole benchmark story rests on two properties of the scenario
generators:

* **Determinism** — the same seed must yield a byte-identical scenario
  (program text, database contents, queries) for every family; without
  it no ``BENCH_suite.json`` number is reproducible and no cross-run
  comparison is meaningful.
* **Honest planting** — ``Scenario.planted_recursion`` must agree with
  what the package's own analyzers measure, for any seed; the E1
  statistics and the harness's engine-applicability gate both trust
  that label.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.linearization import linearize
from repro.analysis.piecewise import is_piecewise_linear
from repro.analysis.wardedness import is_warded
from repro.benchsuite import (
    RECURSION_FLAVOURS,
    generate_chasebench,
    generate_dbpedia,
    generate_ibench,
    generate_industrial,
    generate_iwarded,
    suite_corpus,
)

seeds = st.integers(min_value=0, max_value=10**6)

#: One deterministic builder per family, each exercising its flavour
#: space from the seed itself so hypothesis shrinks over both.
FAMILY_BUILDERS = {
    "iwarded": lambda seed: generate_iwarded(
        seed=seed, flavour=RECURSION_FLAVOURS[seed % len(RECURSION_FLAVOURS)]
    ),
    "ibench": lambda seed: generate_ibench(
        seed=seed, add_target_recursion=bool(seed % 2)
    ),
    "chasebench": lambda seed: generate_chasebench(
        seed=seed, recursion=("none", "linear", "linearizable")[seed % 3]
    ),
    "dbpedia": lambda seed: generate_dbpedia(seed=seed),
    "industrial": lambda seed: generate_industrial(
        seed=seed, flavour=("control", "psc", "nonpwl")[seed % 3]
    ),
}


def _fingerprint(scenario) -> tuple:
    """A byte-exact rendering of everything a scenario contains."""
    return (
        scenario.name,
        scenario.suite,
        "\n".join(str(tgd) for tgd in scenario.program),
        "\n".join(sorted(str(atom) for atom in scenario.database)),
        tuple(str(query) for query in scenario.queries),
        scenario.planted_recursion,
        repr(sorted(scenario.meta.items())),
    )


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_same_seed_same_bytes_every_family(seed):
    for family, build in FAMILY_BUILDERS.items():
        assert _fingerprint(build(seed)) == _fingerprint(build(seed)), family


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_planted_recursion_matches_analyzers(seed):
    for family, build in FAMILY_BUILDERS.items():
        scenario = build(seed)
        program = scenario.program
        assert is_warded(program), (family, seed)
        direct = is_piecewise_linear(program)
        planted = scenario.planted_recursion
        if planted in ("none", "linear", "pwl"):
            assert direct, (family, seed, planted)
        elif planted == "linearizable":
            assert not direct, (family, seed)
            assert linearize(program).piecewise_linear, (family, seed)
        elif planted == "nonpwl":
            assert not direct, (family, seed)
            assert not linearize(program).piecewise_linear, (family, seed)
        else:  # pragma: no cover — planting vocabulary drifted
            raise AssertionError(f"unknown planted label {planted!r}")


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_harness_corpus_is_deterministic(seed):
    first = suite_corpus("smoke", base_seed=seed)
    second = suite_corpus("smoke", base_seed=seed)
    assert [_fingerprint(s) for s in first] == [
        _fingerprint(s) for s in second
    ]
