"""Property tests for repro.lint.

Invariants:

* well-formed generated programs (safe, positive, arity-consistent)
  lint with zero error-severity findings;
* targeted mutations of a well-formed program raise exactly the
  expected code (and the report stays deterministic across runs);
* filtering is sound: ``select``/``ignore`` never invent findings, and
  severity always matches the code's first letter.
"""

from hypothesis import given, settings, strategies as st

from repro.lang.parser import parse_program
from repro.lint import lint_source, run_lint, severity_of_code

NODES = 4

edge_lists = st.lists(
    st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)),
    min_size=1,
    max_size=8,
    unique=True,
)

# A pool of well-formed rule sets over edge/2: safe, positive,
# arity-consistent, with every variable read at least twice or
# underscore-free heads — no error-tier code can fire.
RULE_SETS = st.sampled_from(
    [
        "t(X, Y) :- edge(X, Y).\nt(X, Z) :- edge(X, Y), t(Y, Z).",
        "sym(X, Y) :- edge(X, Y).\nsym(Y, X) :- edge(X, Y).",
        "tri(X, Y, Z) :- edge(X, Y), edge(Y, Z), edge(Z, X).",
        "hop(X, Z) :- edge(X, Y), edge(Y, Z).",
        "loop(X) :- edge(X, X).",
    ]
)


def build_text(pairs, rules) -> str:
    facts = " ".join(f"edge(n{a}, n{b})." for a, b in pairs)
    return f"{facts}\n{rules}\n"


@given(edge_lists, RULE_SETS)
@settings(max_examples=50, deadline=None)
def test_well_formed_programs_have_no_errors(pairs, rules):
    report = lint_source(build_text(pairs, rules))
    assert not report.errors(), report.render()
    assert not report.fails()
    assert report.passes_run > 0


@given(edge_lists, RULE_SETS)
@settings(max_examples=50, deadline=None)
def test_report_is_deterministic(pairs, rules):
    text = build_text(pairs, rules)
    first = lint_source(text)
    second = lint_source(text)
    assert first.diagnostics == second.diagnostics
    assert first.summary() == second.summary()


@given(edge_lists, RULE_SETS)
@settings(max_examples=50, deadline=None)
def test_severity_always_matches_code_prefix(pairs, rules):
    # Mutated or not, every finding's severity is derivable from its
    # code — the stable-code contract scripts rely on.
    text = build_text(pairs, rules) + "q(X, Y) :- p(X).\n"
    for diagnostic in lint_source(text):
        assert diagnostic.severity == severity_of_code(diagnostic.code)


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_arity_mutation_raises_exactly_e102(pairs):
    # Well-formed base + one unary use of the binary edge predicate.
    text = build_text(pairs, "t(X, Y) :- edge(X, Y).") + "bad(X) :- edge(X).\n"
    report = lint_source(text)
    errors = {d.code for d in report.errors()}
    assert errors == {"E102"}
    (finding,) = [d for d in report if d.code == "E102"]
    assert finding.predicate == "edge"


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_unsafe_negation_mutation_raises_exactly_e101(pairs):
    text = build_text(pairs, "t(X, Y) :- edge(X, Y).")
    text += "bad(X) :- edge(X, Y), not other(Z).\n"
    report = lint_source(text)
    errors = {d.code for d in report.errors()}
    assert errors == {"E101"}


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_recursive_negation_mutation_raises_e103(pairs):
    text = build_text(pairs, "t(X, Y) :- edge(X, Y).")
    text += "odd(X) :- edge(X, Y), not even(X).\n"
    text += "even(X) :- edge(X, Y), not odd(X).\n"
    report = lint_source(text)
    assert "E103" in {d.code for d in report.errors()}


@given(edge_lists, RULE_SETS)
@settings(max_examples=50, deadline=None)
def test_filtering_never_invents_findings(pairs, rules):
    text = build_text(pairs, rules) + "q(X, Y) :- p(X).\np(a).\n"
    full = lint_source(text)
    for selector in ["E", "W", "I", "W2", "I1", "E101"]:
        selected = full.filter(select=[selector])
        assert set(selected.diagnostics) <= set(full.diagnostics)
        assert all(d.code.startswith(selector) for d in selected)
        ignored = full.filter(ignore=[selector])
        assert set(ignored.diagnostics) <= set(full.diagnostics)
        assert all(not d.code.startswith(selector) for d in ignored)
        # select and ignore of the same prefix partition the report.
        assert len(selected) + len(ignored) == len(full)


@given(edge_lists, RULE_SETS)
@settings(max_examples=30, deadline=None)
def test_lint_source_agrees_with_run_lint(pairs, rules):
    text = build_text(pairs, rules)
    program, database = parse_program(text)
    assert (
        lint_source(text).diagnostics
        == run_lint(program, facts=database).diagnostics
    )
