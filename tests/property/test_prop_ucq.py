"""Property tests: UCQ unfolding agrees with certain answers."""

from hypothesis import given, settings, strategies as st

from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant
from repro.datalog.seminaive import datalog_answers
from repro.lang.parser import parse_program, parse_query
from repro.rewriting import unfold

NODES = 5

edge_lists = st.lists(
    st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)).filter(
        lambda p: p[0] != p[1]
    ),
    min_size=0,
    max_size=8,
    unique=True,
)


def tc_program():
    program, _ = parse_program("""
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    return program


def build_database(pairs) -> Database:
    database = Database()
    for x, y in pairs:
        database.add(Atom("e", (Constant(f"n{x}"), Constant(f"n{y}"))))
    return database


QUERY = parse_query("q(X,Y) :- t(X,Y).")


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_unfolding_sound_at_every_depth(pairs):
    program = tc_program()
    database = build_database(pairs)
    exact = datalog_answers(QUERY, database, program)
    previous: set = set()
    for depth in (0, 1, 2, 3):
        rewriting = unfold(QUERY, program, max_depth=depth, max_cqs=500)
        answers = rewriting.evaluate(database)
        assert answers <= exact
        # deeper unfoldings only gain answers
        assert previous <= answers
        previous = answers


@given(edge_lists)
@settings(max_examples=25, deadline=None)
def test_unfolding_complete_with_enough_depth(pairs):
    # Any path in a 5-node loop-free-pair database has length < 2·NODES
    # resolution steps; depth 2·NODES suffices on every instance.
    program = tc_program()
    database = build_database(pairs)
    exact = datalog_answers(QUERY, database, program)
    rewriting = unfold(
        QUERY, program, max_depth=2 * NODES, max_cqs=5000
    )
    assert rewriting.evaluate(database) == exact
