"""Property-based tests for the reasoning engines against ground truth."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.program import Program
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD
from repro.lang.parser import parse_query
from repro.reasoning.pwl_ward import decide_pwl_ward
from repro.reasoning.ward import decide_ward


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=10))
    rng = random.Random(draw(st.integers(0, 10**6)))
    edges = set()
    for _ in range(m):
        edges.add((rng.randrange(n), rng.randrange(n)))
    return n, sorted(edges)


def reachable_pairs(n, edges):
    """Transitive closure by plain BFS: the ground truth."""
    adjacency = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
    closure = set()
    for start in range(n):
        seen = set()
        stack = list(adjacency.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        closure.update((start, node) for node in seen)
    return closure


def tc_program():
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    return Program([
        TGD((Atom("e", (x, y)),), (Atom("t", (x, y)),)),
        TGD((Atom("e", (x, y)), Atom("t", (y, z))), (Atom("t", (x, z)),)),
    ])


def doubling_program():
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    return Program([
        TGD((Atom("e", (x, y)),), (Atom("t", (x, y)),)),
        TGD((Atom("t", (x, y)), Atom("t", (y, z))), (Atom("t", (x, z)),)),
    ])


def database_of(edges):
    return Database(
        Atom("e", (Constant(f"n{u}"), Constant(f"n{v}"))) for u, v in edges
    )


@given(graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_pwl_engine_decides_reachability(graph, data):
    """The linear proof search agrees with BFS reachability."""
    n, edges = graph
    closure = reachable_pairs(n, edges)
    database = database_of(edges)
    program = tc_program()
    query = parse_query("q(X,Y) :- t(X,Y).")
    source = data.draw(st.integers(0, n - 1))
    target = data.draw(st.integers(0, n - 1))
    answer = (Constant(f"n{source}"), Constant(f"n{target}"))
    decision = decide_pwl_ward(query, answer, database, program)
    assert decision.accepted == ((source, target) in closure)


@given(graphs(), st.data())
@settings(max_examples=15, deadline=None)
def test_ward_engine_decides_reachability(graph, data):
    """The AND-OR search on the doubling rule agrees with BFS."""
    n, edges = graph
    closure = reachable_pairs(n, edges)
    database = database_of(edges)
    program = doubling_program()
    query = parse_query("q(X,Y) :- t(X,Y).")
    source = data.draw(st.integers(0, n - 1))
    target = data.draw(st.integers(0, n - 1))
    answer = (Constant(f"n{source}"), Constant(f"n{target}"))
    decision = decide_ward(query, answer, database, program)
    assert decision.accepted == ((source, target) in closure)


@given(graphs(), st.data())
@settings(max_examples=10, deadline=None)
def test_guided_equals_exhaustive_specialization(graph, data):
    """The guided successor generation is a complete optimization."""
    n, edges = graph
    database = database_of(edges)
    program = tc_program()
    query = parse_query("q(X,Y) :- t(X,Y).")
    source = data.draw(st.integers(0, n - 1))
    target = data.draw(st.integers(0, n - 1))
    answer = (Constant(f"n{source}"), Constant(f"n{target}"))
    guided = decide_pwl_ward(
        query, answer, database, program, specialization="guided"
    ).accepted
    exhaustive = decide_pwl_ward(
        query, answer, database, program, specialization="exhaustive"
    ).accepted
    assert guided == exhaustive
