"""Property tests for the Dyn-FO reachability maintenance.

Invariant: after any interleaved stream of insertions and deletions,
the maintained relation equals the reflexive-transitive closure of the
surviving edge set.
"""

from hypothesis import given, settings, strategies as st

from repro.dynfo.reachability import DynamicReachability
from repro.reachability.digraph import DiGraph

NODES = 6

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "insert", "delete"]),
        st.integers(0, NODES - 1),
        st.integers(0, NODES - 1),
    ).filter(lambda op: op[1] != op[2]),
    min_size=1,
    max_size=20,
)


@given(operations)
@settings(max_examples=60, deadline=None)
def test_maintained_closure_is_exact(ops):
    index = DynamicReachability()
    edges = set()
    for action, u, v in ops:
        if action == "insert":
            edges.add((u, v))
            index.insert_edge(u, v)
        else:
            edges.discard((u, v))
            index.delete_edge(u, v)

    graph = DiGraph.from_pairs(edges)
    for node in index.nodes():
        graph.add_node(node)
    for a in index.nodes():
        for b in index.nodes():
            expected = b in graph.reachable_from(a) if a in graph else a == b
            assert index.reaches(a, b) == expected, (a, b)


@given(operations)
@settings(max_examples=40, deadline=None)
def test_strict_reachability_requires_an_edge_path(ops):
    index = DynamicReachability()
    edges = set()
    for action, u, v in ops:
        if action == "insert":
            edges.add((u, v))
            index.insert_edge(u, v)
        else:
            edges.discard((u, v))
            index.delete_edge(u, v)
    # reaches_strict(a, a) holds iff a lies on a cycle.
    graph = DiGraph.from_pairs(edges)
    for a in index.nodes():
        on_cycle = a in graph and any(
            a in graph.reachable_from(successor)
            for successor in graph.successors(a)
        )
        assert index.reaches_strict(a, a) == on_cycle


@given(operations)
@settings(max_examples=40, deadline=None)
def test_insertion_monotonicity(ops):
    # Without deletions, the closure only grows.
    index = DynamicReachability()
    previous = 0
    for action, u, v in ops:
        if action != "insert":
            continue
        index.insert_edge(u, v)
        current = index.closure_size()
        assert current >= previous
        previous = current
