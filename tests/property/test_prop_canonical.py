"""Property-based tests for canonical renaming."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.substitution import Substitution
from repro.prooftree.canonical import canonical_form

from .strategies import atom_sets, renamings


@given(atom_sets(), renamings(), st.randoms())
@settings(max_examples=150)
def test_invariance_under_renaming_and_reordering(atoms, renaming, rng):
    """canonical_form is invariant under variable renaming + shuffling."""
    subst = Substitution(dict(renaming))
    renamed = list(subst.apply_atoms(atoms))
    rng.shuffle(renamed)
    assert canonical_form(atoms) == canonical_form(renamed)


@given(atom_sets())
@settings(max_examples=150)
def test_idempotence(atoms):
    once = canonical_form(atoms)
    assert canonical_form(once) == once


@given(atom_sets())
@settings(max_examples=150)
def test_canonical_form_is_isomorphic_to_input(atoms):
    """The canonical form is the same CQ up to variable renaming:
    same predicates/arities, same constants, same size after dedup."""
    form = canonical_form(atoms)
    assert len(form) == len(set(atoms))
    original_shape = sorted((a.predicate, a.arity) for a in set(atoms))
    canonical_shape = sorted((a.predicate, a.arity) for a in form)
    assert original_shape == canonical_shape
    original_constants = sorted(
        str(c) for a in set(atoms) for c in a.constants()
    )
    canonical_constants = sorted(
        str(c) for a in form for c in a.constants()
    )
    assert original_constants == canonical_constants


@given(atom_sets(), atom_sets())
@settings(max_examples=150)
def test_equal_forms_imply_isomorphism_witness(first, second):
    """If two bodies share a canonical form, a variable bijection maps
    one onto the other (soundness of the canonicalization)."""
    if canonical_form(first) != canonical_form(second):
        return
    # Rebuild the witness through the canonical forms: each body maps
    # onto the canonical atoms, so their composition is a bijection.
    assert len(set(first)) == len(set(second))
