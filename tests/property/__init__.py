"""Test package (gives pytest a package root for relative imports)."""
