"""Property-based tests for unification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.substitution import Substitution
from repro.core.terms import Variable
from repro.core.unification import mgu_atoms

from .strategies import atoms, constants


@given(atoms(), atoms())
@settings(max_examples=200)
def test_mgu_unifies(left, right):
    """If an MGU exists, applying it makes the atoms equal."""
    mgu = mgu_atoms(left, right)
    if mgu is not None:
        assert mgu.apply_atom(left) == mgu.apply_atom(right)


@given(atoms(), atoms())
@settings(max_examples=200)
def test_mgu_idempotent(left, right):
    """MGUs are idempotent: applying twice equals applying once."""
    mgu = mgu_atoms(left, right)
    if mgu is not None:
        once = mgu.apply_atom(left)
        twice = mgu.apply_atom(once)
        assert once == twice


@given(atoms())
@settings(max_examples=100)
def test_mgu_with_self_is_identity_modulo_nothing(atom):
    """Every atom unifies with itself without moving any term."""
    mgu = mgu_atoms(atom, atom)
    assert mgu is not None
    assert mgu.apply_atom(atom) == atom


@given(atoms(), atoms(), st.data())
@settings(max_examples=200)
def test_mgu_most_general(left, right, data):
    """Any unifier factors through the MGU (γ = γ' ∘ γ_mgu).

    Witnessed contrapositively: if a random grounding unifies the atoms,
    then the MGU must exist, and the grounding must factor through it.
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        return
    grounding = {}
    for atom in (left, right):
        for term in atom.args:
            if isinstance(term, Variable) and term not in grounding:
                grounding[term] = data.draw(constants())
    ground = Substitution(grounding)
    if ground.apply_atom(left) != ground.apply_atom(right):
        return
    mgu = mgu_atoms(left, right)
    assert mgu is not None, "a unifiable pair must have an MGU"
    # factor: applying the grounding after the MGU reproduces the
    # grounding's effect on both atoms
    via_mgu_left = ground.apply_atom(mgu.apply_atom(left))
    assert via_mgu_left == ground.apply_atom(left)
