"""Property tests: storage backends are observationally equivalent.

The acceptance bar of the storage subsystem is that it is invisible to
the logic: over random warded programs (recursive Datalog, optionally
with an existential rule), the chase and semi-naive evaluation must
produce the same instances, statistics, and certain answers whichever
:data:`repro.storage.BACKENDS` backend they materialize into, and the
raw ``matching`` primitive must agree with the reference ``Instance``
on arbitrary patterns.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.runner import chase
from repro.core.atoms import Atom
from repro.core.homomorphism import find_homomorphism
from repro.core.instance import Database, Instance
from repro.core.terms import Constant, Null, Variable
from repro.core.tgd import TGD
from repro.datalog.seminaive import seminaive
from repro.lang.parser import parse_query
from repro.storage import BACKENDS, ColumnarStore, DeltaOverlay, FactStore

from .strategies import atoms

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def _null_free(store: FactStore) -> set[Atom]:
    return {atom for atom in store if not atom.nulls()}


def _as_patterns(store: FactStore) -> list[Atom]:
    """The store's atoms with each labeled null turned into a variable."""
    mapping: dict[Null, Variable] = {}
    patterns = []
    for atom in store:
        args = tuple(
            mapping.setdefault(term, Variable(f"n@{term.label}"))
            if isinstance(term, Null)
            else term
            for term in atom.args
        )
        patterns.append(Atom(atom.predicate, args))
    return patterns


def _hom_equivalent(first: FactStore, second: FactStore) -> bool:
    """Mutual homomorphic embedding — chase-result equivalence."""
    return (
        find_homomorphism(_as_patterns(first), second) is not None
        and find_homomorphism(_as_patterns(second), first) is not None
    )


@st.composite
def warded_instances(draw):
    """A random warded program plus database over a small graph.

    Always includes linear transitive closure (WARD ∩ PWL); optionally a
    doubling rule (warded, not PWL) and an existential rule (invents
    nulls), so all term kinds and recursion shapes are exercised.
    """
    n = draw(st.integers(min_value=2, max_value=5))
    edge_count = draw(st.integers(min_value=1, max_value=8))
    rng = random.Random(draw(st.integers(0, 10**6)))
    facts = {
        Atom("e", (Constant(f"n{rng.randrange(n)}"),
                   Constant(f"n{rng.randrange(n)}")))
        for _ in range(edge_count)
    }
    rules = [TGD((Atom("e", (X, Y)),), (Atom("t", (X, Y)),))]
    if draw(st.booleans()):
        rules.append(
            TGD((Atom("e", (X, Y)), Atom("t", (Y, Z))), (Atom("t", (X, Z)),))
        )
    else:
        rules.append(
            TGD((Atom("t", (X, Y)), Atom("t", (Y, Z))), (Atom("t", (X, Z)),))
        )
    if draw(st.booleans()):
        # Existential witness rule: t(X,Y) → ∃K w(Y,K).  Warded (Y is
        # harmless) and null-inventing, but not recursive through w.
        rules.append(TGD((Atom("t", (X, Y)),), (Atom("w", (Y, Z)),)))
    return Database(facts), rules


@settings(max_examples=40, deadline=None)
@given(warded_instances())
def test_chase_equivalent_across_backends(data):
    database, rules = data
    reference = chase(database, rules, store="instance", max_atoms=400)
    query = parse_query("q(X,Y) :- t(X,Y).")
    reference_answers = reference.evaluate(query)
    has_existentials = any(not tgd.is_full() for tgd in rules)
    for backend in BACKENDS:
        if backend == "instance":
            continue
        result = chase(database, rules, store=backend, max_atoms=400)
        assert result.saturated == reference.saturated, backend
        # Null-free facts are the unique least fixpoint: exactly equal.
        assert _null_free(result.instance) == _null_free(reference.instance), \
            backend
        assert result.evaluate(query) == reference_answers, backend
        if has_existentials:
            # Trigger enumeration order may differ between backends, so
            # restricted-chase results with invented nulls agree only up
            # to homomorphic equivalence (Proposition 2.1) — which is
            # the guarantee query answering needs.
            assert _hom_equivalent(result.instance, reference.instance), \
                backend
        else:
            assert result.fired == reference.fired, backend
            assert set(result.instance) == set(reference.instance), backend


@settings(max_examples=40, deadline=None)
@given(warded_instances())
def test_seminaive_equivalent_across_backends(data):
    database, rules = data
    full_rules = [tgd for tgd in rules if tgd.is_full()]
    query = parse_query("q(X,Y) :- t(X,Y).")
    reference = seminaive(database, full_rules)
    for backend in BACKENDS:
        if backend == "instance":
            continue
        result = seminaive(database, full_rules, store=backend)
        assert result.rounds == reference.rounds, backend
        assert result.derived == reference.derived, backend
        assert result.considered == reference.considered, backend
        assert set(result.instance) == set(reference.instance), backend
        assert result.evaluate(query) == reference.evaluate(query), backend


@settings(max_examples=60, deadline=None)
@given(
    st.lists(atoms(), min_size=0, max_size=12),
    atoms(),
)
def test_matching_agrees_with_instance(stored, pattern):
    """ColumnarStore.matching ≡ Instance.matching on random patterns."""
    ground = [atom for atom in stored if atom.is_ground()]
    instance = Instance(ground)
    columnar = ColumnarStore(ground)
    overlay = DeltaOverlay(ColumnarStore(ground[: len(ground) // 2]))
    overlay.add_all(ground[len(ground) // 2:])
    expected = sorted(map(str, instance.matching(pattern)))
    assert sorted(map(str, columnar.matching(pattern))) == expected
    assert sorted(map(str, overlay.matching(pattern))) == expected
    # The bound-position probe agrees too (no repeated-variable pattern).
    bound = {
        i: term
        for i, term in enumerate(pattern.args, start=1)
        if not isinstance(term, Variable)
    }
    expected_bound = sorted(
        map(str, instance.matching_bound(pattern.predicate, bound,
                                         arity=pattern.arity))
    )
    got_bound = sorted(
        map(str, columnar.matching_bound(pattern.predicate, bound,
                                         arity=pattern.arity))
    )
    assert got_bound == expected_bound
