"""Property-based tests for the substitution algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.substitution import Substitution

from .strategies import atoms, terms, variables


@st.composite
def substitutions(draw):
    pairs = draw(
        st.dictionaries(variables(), terms(), min_size=0, max_size=4)
    )
    return Substitution(pairs)


@given(substitutions(), substitutions(), atoms())
@settings(max_examples=200)
def test_composition_definition(g, f, atom):
    """(g ∘ f)(α) == g(f(α)) on atoms."""
    composed = g @ f
    assert composed.apply_atom(atom) == g.apply_atom(f.apply_atom(atom))


@given(substitutions(), substitutions(), substitutions(), atoms())
@settings(max_examples=150)
def test_composition_associative_pointwise(h, g, f, atom):
    left = (h @ g) @ f
    right = h @ (g @ f)
    assert left.apply_atom(atom) == right.apply_atom(atom)


@given(substitutions(), atoms())
@settings(max_examples=150)
def test_identity_laws(subst, atom):
    identity = Substitution.identity()
    assert (subst @ identity).apply_atom(atom) == subst.apply_atom(atom)
    assert (identity @ subst).apply_atom(atom) == subst.apply_atom(atom)


@given(substitutions(), atoms())
@settings(max_examples=150)
def test_restriction_agrees_on_domain(subst, atom):
    domain = list(subst.variable_domain())[:2]
    restricted = subst.restrict(domain)
    for var in domain:
        assert restricted.apply_term(var) == subst.apply_term(var)
    outside = subst.variable_domain() - set(domain)
    for var in outside:
        assert restricted.apply_term(var) == var


@given(substitutions())
@settings(max_examples=100)
def test_constants_always_fixed(subst):
    from repro.core.terms import Constant

    for value in ("a", "b", "zzz", 42):
        assert subst.apply_term(Constant(value)) == Constant(value)
