"""E13 — storage backends: wall time and resident bytes.

The storage subsystem (``repro.storage``) claims that interned columnar
storage shrinks the resident footprint of a materialized instance
versus the object-set ``Instance``, without changing any answer.
Measured here, on the E2 data-complexity workloads (transitive closure
over growing chains, Θ(n²) materialized atoms):

* chase wall time per backend (pytest-benchmark on the largest chain);
* ``memory_report()`` resident bytes of the final store, per component;
* tracemalloc peak during the chase;
* identical certain answers across backends at every size.

Besides the usual report table, the harness writes
``benchmarks/results/e13_storage.json`` with the raw rows.
"""

from __future__ import annotations

import time

from repro.chase import chase
from repro.storage import BACKENDS, traced_peak

from conftest import write_json_result
from workloads import reachability_query, tc_linear_chain

SIZES = (16, 32, 64, 128)
BENCH_SIZE = 64
MAX_ATOMS = 100000


def _run_backend(backend: str, n: int) -> dict:
    program, database = tc_linear_chain(n)
    start = time.perf_counter()
    result, peak = traced_peak(
        lambda: chase(database, program, max_atoms=MAX_ATOMS, store=backend)
    )
    seconds = time.perf_counter() - start
    report = result.instance.memory_report()
    return {
        "backend": backend,
        "n": n,
        "atoms": len(result.instance),
        "saturated": result.saturated,
        "seconds": seconds,
        "resident_bytes": report.total_bytes,
        "memory_report": report.as_dict(),
        "tracemalloc_peak": peak,
        "answers": len(result.evaluate(reachability_query())),
    }


def test_e13_storage_backends(benchmark, report):
    rows = [
        _run_backend(backend, n) for n in SIZES for backend in BACKENDS
    ]

    # Identical answers at every size is the drop-in guarantee.
    for n in SIZES:
        answer_counts = {r["answers"] for r in rows if r["n"] == n}
        atom_counts = {r["atoms"] for r in rows if r["n"] == n}
        assert len(answer_counts) == 1, f"answers diverge at n={n}"
        assert len(atom_counts) == 1, f"instances diverge at n={n}"

    program, database = tc_linear_chain(BENCH_SIZE)
    benchmark.pedantic(
        chase, (database, program),
        {"max_atoms": MAX_ATOMS, "store": "columnar"},
        rounds=2, iterations=1,
    )

    report(
        "E13: storage backends — resident bytes and wall time (chase, "
        "E2 chains)",
        (
            "backend", "chain n", "atoms", "resident", "vs instance",
            "tracemalloc peak", "seconds",
        ),
        [
            (
                r["backend"],
                r["n"],
                r["atoms"],
                f"{r['resident_bytes'] / 1024:.0f} KiB",
                _ratio(rows, r),
                f"{r['tracemalloc_peak'] / 1024:.0f} KiB",
                f"{r['seconds']:.3f}",
            )
            for r in rows
        ],
        notes=(
            "resident = memory_report().total_bytes of the final store; "
            "columnar interns terms into id-tuples with lazy indexes, "
            "delta layers a writable overlay over a columnar base.",
        ),
    )

    write_json_result("e13_storage.json", {"sizes": list(SIZES), "rows": rows})

    # The space-efficiency acceptance bar: on the largest workload the
    # columnar backend is resident-smaller than the object-set Instance.
    largest = {r["backend"]: r for r in rows if r["n"] == SIZES[-1]}
    assert (
        largest["columnar"]["resident_bytes"]
        < largest["instance"]["resident_bytes"]
    )


def _ratio(rows, row) -> str:
    baseline = next(
        r["resident_bytes"]
        for r in rows
        if r["n"] == row["n"] and r["backend"] == "instance"
    )
    return f"{row['resident_bytes'] / baseline:.2f}x"
