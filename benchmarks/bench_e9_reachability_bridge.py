"""E9 (extension) — the reasoning ⇝ reachability bridge (§7, future work 2).

Paper claim (future work): "Reasoning with piece-wise linear warded
sets of TGDs is LogSpace-equivalent to reachability in directed
graphs... many algorithms and heuristics [2-hop labels, GRAIL] ... can
be adapted for our purposes."

Measured here: the configuration graph of the Section 4.3 linear proof
search is materialized once; then *every* per-tuple certainty check is
a single reachability query.  Three index schemes are compared on the
same graph — the classic build-cost / query-cost trade-off — and all
of them agree with the direct proof-search engine on every tuple.
"""

from __future__ import annotations

from repro.core.terms import Constant
from repro.reachability import (
    DFSReachability,
    IntervalIndex,
    TwoHopIndex,
    configuration_graph,
)
from repro.reasoning import decide_pwl_ward

from workloads import reachability_query, tc_linear_random

VERTICES = 14
EDGES = 26
SEED = 2019
WIDTH = 3   # tightest complete bound for atomic reachability queries


def _setup():
    program, database = tc_linear_random(VERTICES, EDGES, SEED)
    query = reachability_query()
    cfg = configuration_graph(query, database, program, width_bound=WIDTH)
    return program, database, query, cfg


def test_e9_bridge_agrees_with_engine(benchmark, report):
    program, database, query, cfg = _setup()
    domain = [Constant(f"n{i}") for i in range(VERTICES)]
    pairs = [(a, b) for a in domain for b in domain]

    index = TwoHopIndex(cfg.graph)

    def check_all():
        return [cfg.certain(pair, index) for pair in pairs]

    via_graph = benchmark.pedantic(check_all, rounds=2, iterations=1)
    direct = [
        decide_pwl_ward(query, pair, database, program).accepted
        for pair in pairs
    ]
    agreements = sum(1 for g, d in zip(via_graph, direct) if g == d)
    report(
        "E9: configuration-graph reachability vs direct proof search",
        ("config nodes", "config edges", "tuples", "certain", "agreements"),
        [(
            len(cfg.graph), cfg.graph.edge_count, len(pairs),
            sum(direct), agreements,
        )],
        notes=(
            "One materialized configuration graph answers every "
            "per-tuple certainty query as reachability — the LogSpace "
            "equivalence of §7 future work (2), made executable.",
        ),
    )
    assert agreements == len(pairs)
    assert not cfg.truncated


def test_e9_index_comparison(benchmark, report):
    program, database, query, cfg = _setup()
    domain = [Constant(f"n{i}") for i in range(VERTICES)]
    pairs = [(a, b) for a in domain for b in domain]

    rows = []
    baseline_answers = None
    for name, build in (
        ("DFS (no index)", lambda: DFSReachability(cfg.graph)),
        ("GRAIL intervals (k=3)", lambda: IntervalIndex(cfg.graph, k=3)),
        ("2-hop pruned landmarks", lambda: TwoHopIndex(cfg.graph)),
    ):
        index = build()
        answers = [cfg.certain(pair, index) for pair in pairs]
        if baseline_answers is None:
            baseline_answers = answers
        assert answers == baseline_answers
        rows.append(
            (
                name,
                index.stats.build_visits,
                index.stats.label_entries,
                index.stats.query_visits,
                getattr(index.stats, "negative_cuts", 0),
            )
        )

    benchmark(lambda: TwoHopIndex(cfg.graph))
    report(
        "E9b: reachability index trade-offs on the configuration graph",
        ("index", "build visits", "label entries", "query visits",
         "negative cuts"),
        rows,
        notes=(
            "Identical answers from all three schemes; 2-hop answers "
            "from labels alone (zero query traversal), GRAIL cuts "
            "negatives via intervals, DFS pays per query.",
        ),
    )
    dfs_row, grail_row, twohop_row = rows
    # The indexes must actually move query work off the hot path.
    assert twohop_row[3] == 0
    assert grail_row[3] <= dfs_row[3]


def test_e9_amortization_crossover(benchmark, report):
    """Index build amortizes once enough tuples are asked."""
    program, database, query, cfg = _setup()
    domain = [Constant(f"n{i}") for i in range(VERTICES)]
    pairs = [(a, b) for a in domain for b in domain]

    # Cost model in node visits: DFS pays per query, 2-hop pays once.
    dfs = DFSReachability(cfg.graph)
    for pair in pairs:
        cfg.certain(pair, dfs)
    dfs_per_query = dfs.stats.query_visits / len(pairs)

    twohop = benchmark(lambda: TwoHopIndex(cfg.graph))
    build_cost = twohop.stats.build_visits
    crossover = build_cost / dfs_per_query if dfs_per_query else 0
    passes = crossover / len(pairs)

    report(
        "E9c: index amortization (visits cost model)",
        ("DFS visits/query", "2-hop build visits", "break-even queries",
         "all-pairs passes to amortize"),
        [(f"{dfs_per_query:.1f}", build_cost, f"{crossover:.0f}",
          f"{passes:.1f}")],
        notes=(
            f"The one-off 2-hop build equals ~{crossover:.0f} DFS "
            "certainty checks; a serving workload re-asking the "
            f"{len(pairs)}-tuple space amortizes it within "
            f"{passes:.1f} passes, after which every check is "
            "label-only (zero traversal).",
        ),
    )
    # The build must amortize within a small number of all-pairs
    # passes — the regime the paper's KG-serving setting lives in.
    assert 0 < crossover < 3 * len(pairs)
    assert twohop.stats.query_visits == 0
