"""E4 — the alternating algorithm for full WARD (Theorem 4.9 / Prop 3.2).

Paper claim: for arbitrary warded sets, bounded node-width proof trees
still suffice, searched by the *alternating* variant of the Section 4.3
algorithm (AND-OR search over configurations) — ExpTime combined,
PTime data complexity.  The node-width bound f_WARD = 2·max(|q|,
max-body) does not depend on predicate levels.

Measured here:

* on doubling transitive closure (warded but **not** PWL — the E4
  workload the linear engine must refuse), the AND-OR search agrees
  with semi-naive ground truth on every pair of a chain;
* held CQ width respects f_WARD at every size;
* on the paper's Example 3.3 (OWL 2 QL core, which *is* PWL), the
  alternating engine and the linear engine agree — the generalization
  is conservative.
"""

from __future__ import annotations

import pytest

from repro.benchsuite import example_33_program
from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant
from repro.datalog.seminaive import datalog_answers
from repro.lang.parser import parse_query
from repro.reasoning import decide_pwl_ward, decide_ward

from workloads import node, reachability_query, tc_doubling_chain

SIZES = (4, 8, 12, 16)
BENCH_SIZE = 12
AGREEMENT_SIZE = 8


def _series():
    query = reachability_query()
    rows = []
    for n in SIZES:
        program, database = tc_doubling_chain(n)
        positive = decide_ward(
            query, (node(0), node(n - 1)), database, program
        )
        negative = decide_ward(
            query, (node(n - 1), node(0)), database, program
        )
        rows.append(
            {
                "n": n,
                "accepted": positive.accepted,
                "rejected": not negative.accepted,
                "discovered": positive.discovered,
                "max_width": positive.stats.max_width,
                "bound": positive.width_bound,
            }
        )
    return rows


def test_e4_alternating_scaling_series(benchmark, report):
    rows = _series()
    query = reachability_query()
    program, database = tc_doubling_chain(BENCH_SIZE)
    benchmark(
        decide_ward, query, (node(0), node(BENCH_SIZE - 1)), database, program
    )

    report(
        "E4: AND-OR search on doubling transitive closure "
        "(Theorem 4.9, warded non-PWL)",
        ("chain n", "discovered", "max CQ width", "f_WARD bound"),
        [(r["n"], r["discovered"], r["max_width"], r["bound"]) for r in rows],
        notes=(
            "f_WARD = 2·max(|q|, max-body) is database- and "
            "level-independent; held width stays below it.",
        ),
    )

    assert all(r["accepted"] for r in rows)
    assert all(r["rejected"] for r in rows)
    assert all(r["max_width"] <= r["bound"] for r in rows)
    assert len({r["bound"] for r in rows}) == 1


def test_e4_full_agreement_with_datalog(benchmark, report):
    """Every pair decision matches the semi-naive fixpoint (n = 8)."""
    query = reachability_query()
    program, database = tc_doubling_chain(AGREEMENT_SIZE)
    truth = datalog_answers(query, database, program)
    pairs = [
        (node(a), node(b))
        for a in range(AGREEMENT_SIZE)
        for b in range(AGREEMENT_SIZE)
    ]

    def decide_all():
        return {
            pair: decide_ward(query, pair, database, program).accepted
            for pair in pairs
        }

    decisions = benchmark.pedantic(decide_all, rounds=1, iterations=1)
    agreements = sum(
        1 for pair, accepted in decisions.items()
        if accepted == (pair in truth)
    )
    report(
        "E4b: per-tuple AND-OR decisions vs semi-naive ground truth",
        ("pairs", "certain", "agreements"),
        [(len(pairs), len(truth), agreements)],
    )
    assert agreements == len(pairs)


def test_e4_linear_engine_refuses_non_pwl():
    program, database = tc_doubling_chain(4)
    query = reachability_query()
    with pytest.raises(ValueError, match="piece-wise linear"):
        decide_pwl_ward(query, (node(0), node(3)), database, program)


def _owl_database() -> Database:
    """A small OWL 2 QL ontology for the Example 3.3 TGD set."""
    c = Constant
    facts = [
        Atom("subClass", (c("employee"), c("person"))),
        Atom("subClass", (c("manager"), c("employee"))),
        Atom("type", (c("alice"), c("manager"))),
        Atom("type", (c("bob"), c("employee"))),
        Atom("restriction", (c("person"), c("hasId"))),
        Atom("inverse", (c("hasId"), c("idOf"))),
    ]
    database = Database()
    for fact in facts:
        database.add(fact)
    return database


def test_e4_owl_example_engines_agree(benchmark, report):
    """On Example 3.3 (PWL ∩ WARD) both engines decide identically."""
    program = example_33_program()
    database = _owl_database()
    query = parse_query("q(X,Y) :- type(X,Y).")
    candidates = [
        (Constant("alice"), Constant("person")),
        (Constant("alice"), Constant("employee")),
        (Constant("bob"), Constant("person")),
        (Constant("bob"), Constant("manager")),
        (Constant("alice"), Constant("hasId")),
    ]

    def decide_both():
        return [
            (
                decide_ward(query, pair, database, program).accepted,
                decide_pwl_ward(query, pair, database, program).accepted,
            )
            for pair in candidates
        ]

    outcomes = benchmark.pedantic(decide_both, rounds=1, iterations=1)
    rows = [
        (f"type({pair[0]}, {pair[1]})", ward, pwl)
        for pair, (ward, pwl) in zip(candidates, outcomes)
    ]
    report(
        "E4c: Example 3.3 (OWL 2 QL core) — alternating vs linear engine",
        ("candidate", "WARD engine", "WARD∩PWL engine"),
        rows,
    )
    assert all(ward == pwl for ward, pwl in outcomes)
    # Subclass reasoning succeeds; the false candidates fail.
    assert outcomes[0][0] and outcomes[1][0] and outcomes[2][0]
    assert not outcomes[3][0] and not outcomes[4][0]
