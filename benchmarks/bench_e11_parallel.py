"""E11 (extension) — parallel reasoning (§7, future work 1).

Paper claim (future work): "NLogSpace is contained in the class NC² of
highly parallelizable problems.  This means that reasoning under
piece-wise linear warded sets of TGDs is principally parallelizable...
Our preliminary results are promising, giving evidence that the
parallelization that is theoretically promised is also practically
achievable."

Measured here:

* the per-tuple decisions of a query workload are independent tasks;
  from their measured costs, the LPT makespan gives the multi-core
  scaling curve (speedup/efficiency per worker count) — the shape the
  paper's "preliminary results" refer to;
* an actual thread-pool execution — with the probe disabled so every
  tuple takes the per-decision path — returns exactly the semi-naive
  ground truth at every worker count;
* work/span analysis: the sequential floor is one tuple's decision,
  a vanishing fraction of total work — high inherent parallelism.
"""

from __future__ import annotations

from repro.datalog.seminaive import datalog_answers
from repro.parallel import (
    parallel_certain_answers,
    round_work_span,
    speedup_curve,
)
from repro.reasoning import decide_pwl_ward
from repro.reasoning.abstraction import star_abstraction

from workloads import node, reachability_query, tc_linear_random

VERTICES = 16
EDGES = 30
SEED = 2019
WORKER_COUNTS = (1, 2, 4, 8, 16)


def _setup():
    program, database = tc_linear_random(VERTICES, EDGES, SEED)
    return program, database, reachability_query()


def test_e11_answers_equal_ground_truth(benchmark, report):
    """Thread-pool runs (probe disabled → all per-tuple) stay exact."""
    program, database, query = _setup()
    truth = datalog_answers(query, database, program)

    outcomes = {}
    for workers in (1, 2, 4):
        outcomes[workers] = parallel_certain_answers(
            query, database, program, workers=workers, probe_atoms=0
        )

    profile = benchmark.pedantic(
        parallel_certain_answers,
        (query, database, program),
        {"workers": 4, "probe_atoms": 0, "report": True},
        rounds=2, iterations=1,
    )
    report(
        "E11: parallel certain answers vs semi-naive ground truth",
        ("workers", "answers", "equal to ground truth"),
        [
            (workers, len(answers), answers == truth)
            for workers, answers in sorted(outcomes.items())
        ],
        notes=(
            f"probe disabled: all {profile.decided_tuples} candidate "
            "tuples took the independent per-tuple decision path.",
        ),
    )
    assert all(answers == truth for answers in outcomes.values())
    assert profile.decided_tuples > 100


def test_e11_speedup_curve(benchmark, report):
    """LPT makespan over the measured per-tuple decision costs."""
    program, database, query = _setup()
    oracle = star_abstraction(database, program.single_head())
    domain = [node(i) for i in range(VERTICES)]
    pairs = [(x, y) for x in domain for y in domain if x != y]

    costs = [
        decide_pwl_ward(
            query, pair, database, program, oracle=oracle
        ).stats.visited
        for pair in pairs
    ]
    points = benchmark(speedup_curve, costs, WORKER_COUNTS)

    work = sum(costs)
    span = max(costs)
    inherent = work / span
    rows = [
        (p.workers, f"{p.makespan:.0f}", f"{p.speedup:.2f}×",
         f"{p.efficiency:.0%}")
        for p in points
    ]
    report(
        "E11b: multi-core scaling curve (LPT makespan over measured "
        "per-tuple costs)",
        ("workers", "makespan (visits)", "speedup", "efficiency"),
        rows,
        notes=(
            f"work = {work} visits across {len(pairs)} independent "
            f"decisions; span = {span} (one tuple) → inherent "
            f"parallelism ≈ {inherent:.1f}×.",
        ),
    )
    speedups = [p.speedup for p in points]
    # Monotone scaling that actually helps: ≥ 1.8× at 4 workers.
    assert speedups == sorted(speedups)
    four = next(p for p in points if p.workers == 4)
    assert four.speedup > 1.8
    # ... and saturates at the workload's inherent parallelism.
    assert speedups[-1] <= inherent + 1e-9


def test_e11_round_parallel_seminaive(benchmark, report):
    """Round-synchronous view: fixpoint depth is the sequential floor."""
    from repro.datalog.seminaive import seminaive

    program, database = tc_linear_random(VERTICES, EDGES, SEED)
    result = benchmark(seminaive, database, program)

    # Model: each round's matches parallelize, rounds are barriers.
    # Uniform per-match cost over the engine's exact per-round counts.
    work, span = round_work_span(
        [[1.0] * max(count, 1) for count in result.per_round_considered]
    )
    report(
        "E11c: round-parallel semi-naive — work vs span",
        ("rounds", "work (matches)", "span (barriers)",
         "parallel headroom"),
        [(result.rounds, int(work), int(span), f"{work / span:.0f}×")],
        notes=(
            "Within each semi-naive round every delta match is "
            "independent (map); rounds are barriers (reduce) — the "
            "map-reduce execution model the paper targets.",
        ),
    )
    assert span <= work
