"""E1 — the Section 1.2 recursion statistics.

Paper claim: across the surveyed benchmark suites (ChaseBench, iBench,
iWarded, DBpedia, industrial scenarios) "approximately 70% of the
TGD-sets use recursion in [the piece-wise linear] way: approximately 55%
directly, while 15% can be transformed" via the standard elimination of
unnecessary non-linear recursion.  All surveyed sets are warded.

Measured here: the same three buckets over the **[SIM]** synthetic
corpus (``repro.benchsuite``), classified by the package's own
Definition 4.1 analyzer and Section 1.2 linearization.  The corpus
mixture mirrors the benchmark families the paper lists, so the measured
fractions must land in bands around the reported 55 / 15 / 70 numbers.
"""

from __future__ import annotations

from repro.benchsuite import classify_corpus, default_corpus

SCALE = 3  # 19 scenarios per scale unit → 57 scenarios


def test_e1_recursion_statistics(benchmark, report):
    corpus = default_corpus(scale=SCALE)
    stats = benchmark(classify_corpus, corpus)

    paper = {
        "directly piece-wise linear": "~55%",
        "piece-wise linear after elimination": "~15%",
        "beyond piece-wise linear": "~30%",
    }
    rows = [
        (bucket, count, f"{fraction:.1%}", paper[bucket])
        for bucket, count, fraction in stats.rows()
    ]
    rows.append(
        (
            "piece-wise linear total",
            stats.direct_pwl + stats.linearizable,
            f"{stats.pwl_fraction:.1%}",
            "~70%",
        )
    )
    report(
        "E1: recursion statistics over the scenario corpus (Section 1.2)",
        ("bucket", "TGD-sets", "measured", "paper"),
        rows,
        notes=(
            f"{stats.total} scenarios, all warded: "
            f"{stats.warded == stats.total}",
        ),
    )

    # Every surveyed scenario is warded (the paper's suites contain only
    # warded sets), and the three buckets land in the reported bands.
    assert stats.warded == stats.total
    assert 0.45 <= stats.direct_fraction <= 0.65
    assert 0.05 <= stats.linearizable_fraction <= 0.25
    assert 0.60 <= stats.pwl_fraction <= 0.85


def test_e1_classification_is_deterministic(benchmark):
    corpus = default_corpus(scale=1)
    first = classify_corpus(corpus)
    second = benchmark(classify_corpus, default_corpus(scale=1))
    assert (first.direct_pwl, first.linearizable, first.beyond) == (
        second.direct_pwl,
        second.linearizable,
        second.beyond,
    )
