"""E10 (extension) — Dyn-FO incremental maintenance (§7, future work 3).

Paper claim (future work): reachability is in Dyn-FO — "by maintaining
suitable auxiliary data structures when updating a graph, reachability
testing can actually be done in FO, and thus in SQL"; the authors plan
to transfer this to (subclasses of) piece-wise linear warded reasoning.

Measured here, on the transitive-closure subclass the plan targets:

* each fact insertion is one evaluation of the quantifier-free FO
  update rule REACH'(a,b) ≡ REACH(a,b) ∨ (REACH(a,u) ∧ REACH(v,b));
* the maintained certain-answer view equals a from-scratch engine run
  after *every* update of a random insertion stream;
* incremental total work beats recompute-per-update by a growing
  factor, while queries drop from a proof search to an O(1) lookup.
"""

from __future__ import annotations

import random

from repro.core.atoms import Atom
from repro.core.instance import Database
from repro.core.terms import Constant
from repro.datalog.seminaive import seminaive
from repro.dynfo import IncrementalReasoner
from repro.lang.parser import parse_program, parse_query

STREAM_LENGTHS = (10, 20, 40)
NODES = 12


def tc_program():
    program, _ = parse_program("""
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)
    return program


def edge_stream(length: int, seed: int):
    rng = random.Random(seed)
    stream = []
    seen = set()
    while len(stream) < length:
        u, v = rng.randrange(NODES), rng.randrange(NODES)
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            stream.append((Constant(f"n{u}"), Constant(f"n{v}")))
    return stream


def test_e10_incremental_matches_recompute(benchmark, report):
    """Maintained view ≡ from-scratch fixpoint after every insertion."""
    program = tc_program()
    query = parse_query("q(X,Y) :- t(X,Y).")
    stream = edge_stream(20, seed=5)

    def run_stream():
        reasoner = IncrementalReasoner(program)
        database = Database()
        checks = 0
        for u, v in stream:
            fact = Atom("e", (u, v))
            database.add(fact)
            reasoner.insert(fact)
            expected = seminaive(database, program).evaluate(query)
            assert reasoner.answers() == expected
            checks += 1
        return reasoner, checks

    reasoner, checks = benchmark.pedantic(run_stream, rounds=1, iterations=1)
    report(
        "E10: incremental view vs from-scratch fixpoint (every update)",
        ("insertions", "checks passed", "closure pairs", "FO-rule pairs "
         "examined"),
        [(
            len(stream), checks, reasoner.index.closure_size(),
            reasoner.index.stats.pairs_examined,
        )],
    )
    assert checks == len(stream)


def test_e10_work_comparison(benchmark, report):
    """Incremental FO updates vs recompute-per-update, by stream length."""
    program = tc_program()
    rows = []
    for length in STREAM_LENGTHS:
        stream = edge_stream(length, seed=7)

        reasoner = IncrementalReasoner(program)
        for u, v in stream:
            reasoner.insert_edge(u, v)
        incremental_work = reasoner.index.stats.pairs_examined

        # Recompute-per-update baseline: semi-naive from scratch after
        # each insertion; its work measure is body matches considered.
        database = Database()
        recompute_work = 0
        for u, v in stream:
            database.add(Atom("e", (u, v)))
            recompute_work += seminaive(database, program).considered

        rows.append(
            (
                length,
                incremental_work,
                recompute_work,
                f"{recompute_work / max(incremental_work, 1):.1f}×",
            )
        )

    stream = edge_stream(STREAM_LENGTHS[-1], seed=7)

    def incremental_run():
        reasoner = IncrementalReasoner(program)
        for u, v in stream:
            reasoner.insert_edge(u, v)
        return reasoner

    benchmark(incremental_run)
    report(
        "E10b: update-stream work — FO-rule updates vs recompute",
        ("insertions", "incremental pairs examined",
         "recompute matches considered", "advantage"),
        rows,
        notes=(
            "Each incremental update evaluates one quantifier-free FO "
            "formula (a SQL-expressible join of the auxiliary relation); "
            "recompute re-derives the closure every time.",
        ),
    )
    # The incremental advantage grows with the stream.
    advantages = [
        recompute / max(incremental, 1)
        for _, incremental, recompute, _ in rows
    ]
    assert advantages[-1] > advantages[0]
    assert advantages[-1] > 2.0


def test_e10_deletion_path_is_priced(benchmark, report):
    """Deletions fall back to recompute — the honest asymmetry."""
    program = tc_program()
    stream = edge_stream(15, seed=9)

    def mixed_workload():
        reasoner = IncrementalReasoner(program)
        for u, v in stream:
            reasoner.insert_edge(u, v)
        for u, v in stream[::5]:
            reasoner.delete_edge(u, v)
        return reasoner

    reasoner = benchmark(mixed_workload)
    report(
        "E10c: deletion asymmetry",
        ("insertions", "deletions", "recomputes triggered"),
        [(
            reasoner.index.stats.insertions,
            reasoner.index.stats.deletions,
            reasoner.index.stats.recomputes,
        )],
        notes=(
            "Fully-FO deletions (Datta et al. 2015) use matrix-rank "
            "machinery outside this reproduction's scope; the deletion "
            "path recomputes and the counter prices it ([SIM], "
            "DESIGN.md §5).",
        ),
    )
    assert reasoner.index.stats.recomputes == reasoner.index.stats.deletions
