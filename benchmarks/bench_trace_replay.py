"""BENCH replay — trace replay across stores, rewrites, and transports.

The workload-harness acceptance bar (:mod:`repro.workloads`): one
seeded, zipf-skewed, read-heavy trace (≥500 ops) replayed concurrently
against a matrix of serving cells —

* in-process :class:`ReasoningService` over columnar and sharded
  stores, with demand rewriting on (``auto``) and off (``none``),
* one live :class:`ReasoningServer` over real sockets,

— with **zero** digest mismatches allowed: every query answer is
checked against a from-scratch evaluation on the EDB state of the
version it was admitted under.  Before that, the trace itself must be
reproducible: the same seed must yield the byte-identical NDJSON dump.

The measured side (throughput and p50/p99 per cell, from the shared
log-bucket :class:`LatencyHistogram`) lands in
``benchmarks/results/BENCH_replay.json`` before any assertion runs, so
a failing run still uploads its evidence.
"""

from __future__ import annotations

import os

from repro.server import ReasoningServer, ReasoningService
from repro.workloads import (
    ClientTarget,
    ServiceTarget,
    generate_trace,
    materialize_scenario,
    replay_trace,
)

from conftest import write_json_result

OPS = 600
MIX = "read-heavy"
SKEW = 1.1
SEED = int(os.environ.get("REPRO_BENCH_SEED", "2019"))
VERTICES = 64
EDGES = 128
CLUSTERS = 8
WORKERS = 4

#: The in-process matrix: store × demand rewriting.
CELLS = (
    ("columnar", "auto"),
    ("columnar", "none"),
    ("sharded", "auto"),
    ("sharded", "none"),
)


def _generate():
    return generate_trace(
        ops=OPS,
        mix=MIX,
        skew=SKEW,
        seed=SEED,
        vertices=VERTICES,
        edges=EDGES,
        clusters=CLUSTERS,
    )


def test_trace_replay_matrix(benchmark, report):
    trace = _generate()
    reproducible = trace.dumps() == _generate().dumps()
    scenario = materialize_scenario(trace)

    results = {}
    for store, rewrite in CELLS:
        target = ServiceTarget.for_scenario(
            scenario, store=store, rewrite=rewrite
        )
        results[f"service/{store}/rewrite-{rewrite}"] = replay_trace(
            trace, target, workers=WORKERS, scenario=scenario
        )

    # The live-socket cell: same trace, real server, one connection
    # per worker.
    service = ReasoningService(
        scenario.program, facts=scenario.database, store="columnar"
    )
    server = ReasoningServer(service, port=0)
    host, port = server.address
    server.serve_in_thread()
    target = ClientTarget(host, port)
    try:
        results["server/columnar/rewrite-auto"] = replay_trace(
            trace, target, workers=WORKERS, scenario=scenario
        )
    finally:
        target.close()
        server.shutdown_async()
        server.close()

    # One single-worker closed-loop pass over the fastest in-process
    # cell as the pytest-benchmark row (fresh service per round: replay
    # mutates the EDB).
    def replay_once():
        once = ServiceTarget.for_scenario(scenario, store="columnar")
        return replay_trace(trace, once, workers=1, verify=False)

    benchmark.pedantic(replay_once, rounds=1, iterations=1)

    summary = trace.summary()
    report(
        f"Trace replay matrix ({OPS}-op {MIX} trace, zipf s={SKEW}, "
        f"{WORKERS} workers)",
        ("cell", "ops/s", "p50 ms", "p99 ms", "verified", "mismatches",
         "errors"),
        [
            (
                cell,
                f"{res.throughput:.1f}",
                f"{res.latency['all'].p50 * 1000:.2f}",
                f"{res.latency['all'].p99 * 1000:.2f}",
                res.verified,
                len(res.mismatches),
                len(res.errors),
            )
            for cell, res in results.items()
        ],
        notes=(
            "every query answer digest-checked against from-scratch "
            "evaluation on its admitted EDB version; the server cell "
            "ran over real sockets",
            f"trace reproducible byte-for-byte: {reproducible}",
        ),
    )

    # Written before any assertion: a failing run still uploads its
    # evidence (the CI step archives results/ with if: always()).
    write_json_result(
        "BENCH_replay.json",
        {
            "schema": "repro/bench-replay/v1",
            "trace": {
                "ops": OPS,
                "mix": MIX,
                "skew": SKEW,
                "seed": SEED,
                "kinds": summary["kinds"],
                "distinct_keys": summary["distinct_keys"],
                "reproducible": reproducible,
            },
            "scenario": scenario.meta,
            "workers": WORKERS,
            "cells": {
                cell: res.as_dict() for cell, res in results.items()
            },
        },
    )

    assert reproducible, "same seed must reproduce the identical trace"
    for cell, res in results.items():
        assert res.ops_run == OPS, f"{cell}: ran {res.ops_run}/{OPS} ops"
        assert not res.errors, f"{cell}: errors {res.errors[:3]}"
        assert not res.unknown_versions, (
            f"{cell}: unknown versions {res.unknown_versions[:3]}"
        )
        assert not res.mismatches, (
            f"{cell}: digest mismatches {res.mismatches[:3]}"
        )
        assert res.verified > 0, f"{cell}: nothing verified"
        assert res.latency["all"].count == OPS
