"""Workload builders shared by the E1–E8 benchmark harnesses.

Everything here is deterministic (seeded) so benchmark runs are
repeatable; the builders return the same core objects the library's
public API consumes (`Program`, `Database`, `ConjunctiveQuery`).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.instance import Database
from repro.core.program import Program
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant
from repro.lang.parser import parse_program, parse_query
from repro.tiling.system import TilingSystem


def tc_linear_chain(n: int) -> Tuple[Program, Database]:
    """Linear transitive closure over a length-*n* chain (WARD ∩ PWL)."""
    facts = " ".join(f"e(n{i},n{i+1})." for i in range(n - 1))
    return parse_program(facts + """
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)


def tc_doubling_chain(n: int) -> Tuple[Program, Database]:
    """Doubling transitive closure over a chain (warded, *not* PWL)."""
    facts = " ".join(f"e(n{i},n{i+1})." for i in range(n - 1))
    return parse_program(facts + """
        t(X,Y) :- e(X,Y).
        t(X,Z) :- t(X,Y), t(Y,Z).
    """)


def tc_linear_random(
    vertices: int, edges: int, seed: int
) -> Tuple[Program, Database]:
    """Linear transitive closure over a seeded random edge relation."""
    rng = random.Random(seed)
    pairs: set[Tuple[int, int]] = set()
    while len(pairs) < edges:
        a, b = rng.randrange(vertices), rng.randrange(vertices)
        if a != b:
            pairs.add((a, b))
    facts = " ".join(f"e(n{a},n{b})." for a, b in sorted(pairs))
    return parse_program(facts + """
        t(X,Y) :- e(X,Y).
        t(X,Z) :- e(X,Y), t(Y,Z).
    """)


def level_chain_program(levels: int, n: int = 10) -> Tuple[Program, Database]:
    """A WARD ∩ PWL program with *levels* strata of linear recursion.

    ``p1`` is the transitive closure of ``e``; each ``p(k)`` copies
    ``p(k-1)`` and closes it again, so the predicate level ℓΣ — and with
    it the node-width polynomial f_WARD∩PWL — grows linearly in *levels*
    while the database stays fixed (the combined-complexity observable).
    """
    facts = " ".join(f"e(n{i},n{i+1})." for i in range(n - 1))
    rules: List[str] = [
        "p1(X,Y) :- e(X,Y).",
        "p1(X,Z) :- e(X,Y), p1(Y,Z).",
    ]
    for k in range(2, levels + 1):
        rules.append(f"p{k}(X,Y) :- p{k - 1}(X,Y).")
        rules.append(f"p{k}(X,Z) :- e(X,Y), p{k}(Y,Z).")
    return parse_program(facts + "\n" + "\n".join(rules))


def layered_strata_program(
    levels: int, n: int = 12
) -> Tuple[Program, Database]:
    """*levels* stacked transitive closures, each over its own edge set.

    Each stratum feeds the next (``t(k)`` starts from ``t(k-1)``), giving
    a deep PWL stratification — the E8 materialization workload.
    """
    facts: List[str] = []
    for k in range(1, levels + 1):
        facts.extend(f"e{k}(m{k}_{i},m{k}_{i+1})." for i in range(n - 1))
    rules = ["t1(X,Y) :- e1(X,Y).", "t1(X,Z) :- e1(X,Y), t1(Y,Z)."]
    for k in range(2, levels + 1):
        rules.append(f"t{k}(X,Y) :- t{k - 1}(X,Y).")
        rules.append(f"t{k}(X,Z) :- e{k}(X,Y), t{k}(Y,Z).")
    return parse_program(" ".join(facts) + "\n" + "\n".join(rules))


def skewed_join_program(
    chain: int = 30, fanout: int = 8, wide: int = 200
) -> Tuple[Program, Database]:
    """A PWL recursion whose rule body is *written* in the worst order.

    The recursive rule reads ``u(Z,W), h(Y,Z), t(X,Y), e(Y,YY)`` — the
    large unselective ``u`` first and the recursive ``t`` last.  Without
    the Section 7(2) bias the engine probes ``u`` unbound (``wide``
    bindings per event); with the bias the recursive atom is pinned
    first and the probe chain stays bound.
    """
    facts = [f"e(n{i},n{i+1})." for i in range(chain - 1)]
    facts += [f"h(n{i},w{i % fanout})." for i in range(chain)]
    facts += [f"u(w{i % fanout},z{i})." for i in range(wide)]
    text = " ".join(facts) + """
        t(X,Y) :- e(X,Y).
        t(X,W) :- u(Z,W), h(Y,Z), t(X,Y), e(Y,YY).
    """
    return parse_program(text)


def reachability_query() -> ConjunctiveQuery:
    return parse_query("q(X,Y) :- t(X,Y).")


def node(i: int) -> Constant:
    return Constant(f"n{i}")


def solvable_tiling() -> TilingSystem:
    """A system with a 2×2 tiling (a r / b r)."""
    return TilingSystem.make(
        tiles={"a", "b", "r"},
        left={"a", "b"},
        right={"r"},
        horizontal={("a", "r"), ("b", "r")},
        vertical={("a", "b"), ("r", "r"), ("a", "a"), ("b", "b")},
        start="a",
        finish="b",
    )


def unsolvable_tiling() -> TilingSystem:
    """Same shape, but no vertical step ever reaches the finish tile."""
    return TilingSystem.make(
        tiles={"a", "b", "r"},
        left={"a", "b"},
        right={"r"},
        horizontal={("a", "r"), ("b", "r")},
        vertical={("a", "a"), ("r", "r")},
        start="a",
        finish="b",
    )


def wide_tiling(width: int) -> TilingSystem:
    """A system whose only tilings have exactly *width* columns.

    Rows must read ``a c c ... c r``; the finish row is ``b c ... c r``.
    """
    return TilingSystem.make(
        tiles={"a", "b", "c", "r"},
        left={"a", "b"},
        right={"r"},
        horizontal=(
            {("a", "c"), ("b", "c"), ("c", "c"), ("c", "r")}
            if width > 2
            else {("a", "r"), ("b", "r")}
        ),
        vertical={("a", "b"), ("c", "c"), ("r", "r"), ("a", "a"), ("b", "b")},
        start="a",
        finish="b",
    )
