"""E6 — the expressive-power translations (Theorem 6.3 / Lemma 6.4).

Paper claim: (WARD ∩ PWL, CQ) is *equally expressive* to piece-wise
linear Datalog — every query can be rewritten, via the canonical
renaming of bounded-width linear proof trees, into a PWL Datalog
program over C[p]-predicates; similarly (WARD, CQ) = Datalog.

Measured here:

* the Lemma 6.4 rewriting of linear transitive closure produces a
  piece-wise linear, full (existential-free) program whose semi-naive
  evaluation returns exactly cert(q, D, Σ) on seeded random databases;
* the Theorem 6.3(2) rewriting does the same for a warded non-PWL
  input;
* rewriting size vs node-width bound: the paper's worst-case bound is
  exponential in practice, while the tightest complete bound stays
  small (the construction "explores finitely many CQs" — how many
  depends critically on the width).
"""

from __future__ import annotations

from repro.analysis import is_piecewise_linear
from repro.datalog.seminaive import datalog_answers
from repro.expressiveness import pwl_to_datalog, ward_to_datalog
from repro.reasoning import certain_answers

from workloads import reachability_query, tc_doubling_chain, tc_linear_random

SEEDS = (11, 23, 47)


def test_e6_pwl_rewriting_equivalence(benchmark, report):
    """Lemma 6.4 on linear TC: rewriting ≡ direct engine, per database."""
    query = reachability_query()
    program, _ = tc_linear_random(vertices=8, edges=12, seed=SEEDS[0])
    rewriting = benchmark.pedantic(
        pwl_to_datalog, (query, program), {"width_bound": 3},
        rounds=2, iterations=1,
    )

    rows = []
    for seed in SEEDS:
        _, database = tc_linear_random(vertices=8, edges=12, seed=seed)
        rewritten = datalog_answers(
            rewriting.query, database, rewriting.program
        )
        direct = certain_answers(query, database, program, method="pwl")
        rows.append((f"random graph seed={seed}", len(direct),
                     len(rewritten), rewritten == direct))

    report(
        "E6: Lemma 6.4 rewriting of linear transitive closure",
        ("database", "direct answers", "rewritten answers", "equal"),
        rows,
        notes=(
            f"rewriting: {rewriting.states} canonical CQ states, "
            f"{rewriting.rules} Datalog rules, complete="
            f"{rewriting.complete}, PWL="
            f"{is_piecewise_linear(rewriting.program)}, full="
            f"{rewriting.program.is_full()}",
        ),
    )
    assert rewriting.complete
    assert rewriting.program.is_full()
    assert is_piecewise_linear(rewriting.program)
    assert all(equal for _, _, _, equal in rows)


def test_e6_ward_rewriting_equivalence(benchmark, report):
    """Theorem 6.3(2) on doubling TC (warded, non-PWL) ≡ Datalog."""
    query = reachability_query()
    program, database = tc_doubling_chain(5)
    rewriting = benchmark.pedantic(
        ward_to_datalog, (query, program), {"width_bound": 3},
        rounds=1, iterations=1,
    )
    rewritten = datalog_answers(rewriting.query, database, rewriting.program)
    direct = datalog_answers(query, database, program)
    report(
        "E6b: Theorem 6.3(2) rewriting of doubling transitive closure",
        ("states", "rules", "complete", "answers equal"),
        [(rewriting.states, rewriting.rules, rewriting.complete,
          rewritten == direct)],
    )
    assert rewriting.complete
    assert rewriting.program.is_full()
    assert rewritten == direct


def test_e6_rewriting_size_vs_width(benchmark, report):
    """Program size is extremely width-sensitive (worst case is PSpace)."""
    query = reachability_query()
    program, database = tc_linear_random(vertices=8, edges=12, seed=SEEDS[0])
    direct = certain_answers(query, database, program, method="pwl")

    rows = []
    for width in (2, 3, 4):
        rewriting = pwl_to_datalog(
            query, program, width_bound=width, max_states=3000
        )
        if rewriting.complete:
            rewritten = datalog_answers(
                rewriting.query, database, rewriting.program
            )
            equal = rewritten == direct
        else:
            equal = "n/a (truncated)"
        rows.append(
            (width, rewriting.states, rewriting.rules, rewriting.complete,
             equal)
        )

    capped = pwl_to_datalog(query, program, max_states=3000)
    rows.append(
        (f"{capped.width_bound} (paper f)", f">{capped.states - 1}",
         f">{capped.rules}", capped.complete, "n/a (truncated)")
    )

    benchmark(pwl_to_datalog, query, program, width_bound=3)
    report(
        "E6c: rewriting size vs node-width bound (linear TC)",
        ("width bound", "states", "rules", "complete", "answers equal"),
        rows,
        notes=(
            "The paper's worst-case bound f_WARD∩PWL guarantees "
            "completeness but enumerates exponentially many canonical "
            "CQs; width 3 is the tightest complete bound for this query "
            "and stays tiny — the construction is a worst-case argument, "
            "not an efficient compiler.",
        ),
    )
    complete_rows = [r for r in rows if r[3] is True]
    assert complete_rows, "at least one bound must complete"
    assert all(r[4] is True for r in complete_rows if r[0] != 2)
