"""E8 — stratum-boundary materialization (Section 7(3)).

Paper claim: the PWL-induced stratification lets the system "insert
materialization nodes at the boundaries of these strata, materializing
intermediate results.  Notice that this third point is a trade-off, as
it actually raises memory footprint, but in turn can provide a
speed-up."

Measured here, on a deep tower of stacked transitive closures:

* both modes compute the same least fixpoint;
* materialization runs each stratum to completion (per-stratum round
  counts), paying a frozen indexed copy per boundary — the memory side
  of the trade-off;
* the global (streaming-like) evaluation pipelines strata in shared
  rounds; which side is faster is workload-dependent, and the harness
  reports the measured direction rather than assuming one.
"""

from __future__ import annotations

import time

from repro.datalog.strata import compute_strata, stratified_seminaive
from repro.lang.parser import parse_query

from workloads import layered_strata_program

LEVELS = 6
CHAIN = 12


def test_e8_materialization_tradeoff(benchmark, report):
    program, database = layered_strata_program(LEVELS, n=CHAIN)
    query = parse_query(f"q(X,Y) :- t{LEVELS}(X,Y).")

    materialized = benchmark.pedantic(
        stratified_seminaive, (database, program), {"materialize": True},
        rounds=2, iterations=1,
    )
    start = time.perf_counter()
    streaming = stratified_seminaive(database, program, materialize=False)
    streaming_seconds = time.perf_counter() - start

    rows = [
        (
            "materialized (per-stratum)",
            len(materialized.instance),
            sum(materialized.per_stratum_rounds),
            len(materialized.per_stratum_rounds),
            max(materialized.materialized_sizes),
        ),
        (
            "global (streaming-like)",
            len(streaming.instance),
            sum(streaming.per_stratum_rounds),
            len(streaming.per_stratum_rounds),
            max(streaming.materialized_sizes),
        ),
    ]
    report(
        "E8: stratum-boundary materialization trade-off (Section 7(3))",
        ("mode", "fixpoint atoms", "rounds", "strata", "peak boundary copy"),
        rows,
        notes=(
            f"{LEVELS} strata of stacked transitive closures; "
            f"streaming run took {streaming_seconds * 1000:.1f} ms "
            "(see the pytest-benchmark table for the materialized "
            "timing). Same fixpoint either way; materialization pays "
            "one frozen boundary copy per stratum for single-pass "
            "stratum evaluation.",
        ),
    )

    # Same least fixpoint, same answers.
    assert len(materialized.instance) == len(streaming.instance)
    assert materialized.evaluate(query) == streaming.evaluate(query)
    # The stratification is real: one layer per closure tower.
    strata = compute_strata(program)
    assert len(materialized.per_stratum_rounds) == len(strata.layers)
    assert len(strata.layers) >= LEVELS
    # Each boundary copy is at least the database — the footprint cost.
    assert min(materialized.materialized_sizes) >= len(database)


def test_e8_streaming_baseline(benchmark):
    program, database = layered_strata_program(LEVELS, n=CHAIN)
    result = benchmark.pedantic(
        stratified_seminaive, (database, program), {"materialize": False},
        rounds=2, iterations=1,
    )
    assert len(result.per_stratum_rounds) == 1


def test_e8_deeper_towers_stay_correct(benchmark, report):
    """Depth sweep: correctness and per-stratum rounds at every depth."""
    rows = []
    for levels in (2, 4, 6, 8):
        program, database = layered_strata_program(levels, n=8)
        query = parse_query(f"q(X,Y) :- t{levels}(X,Y).")
        materialized = stratified_seminaive(database, program,
                                            materialize=True)
        streaming = stratified_seminaive(database, program,
                                         materialize=False)
        equal = materialized.evaluate(query) == streaming.evaluate(query)
        rows.append(
            (levels, sum(materialized.per_stratum_rounds),
             sum(streaming.per_stratum_rounds), equal)
        )

    program, database = layered_strata_program(4, n=8)
    benchmark(stratified_seminaive, database, program, materialize=True)

    report(
        "E8b: depth sweep — materialized vs global rounds",
        ("strata", "materialized rounds", "global rounds", "equal fixpoint"),
        rows,
        notes=(
            "Global evaluation pipelines strata within shared rounds, so "
            "its round count is lower; materialization trades the "
            "boundary copies for strictly stratum-local work.",
        ),
    )
    assert all(equal for _, _, _, equal in rows)
