"""Shared reporting fixture for the E1–E8 benchmark harnesses.

Each harness prints a paper-style table (and archives it under
``benchmarks/results/``) in addition to the pytest-benchmark timing
table, so that ``pytest benchmarks/ --benchmark-only`` regenerates every
row the reproduction targets (DESIGN.md §4, EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Sequence

import pytest

#: Resolved against this file, never the process cwd — ``pytest
#: /path/to/repo/benchmarks`` from anywhere writes to the same place.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_json_result(name: str, payload) -> Path:
    """Archive one benchmark's raw numbers as JSON under ``results/``.

    The shared writer for every harness that emits a machine-readable
    artifact (``BENCH_api.json``, ``BENCH_suite.json``, ...): one place
    resolves the destination (file-relative, cwd-independent) and
    creates the directory.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> list[str]:
    """Render an aligned plain-text table."""
    widths = [len(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines = [
        title,
        "=" * len(title),
        fmt(list(headers)),
        fmt(["-" * width for width in widths]),
    ]
    lines.extend(fmt(row) for row in text_rows)
    if isinstance(notes, str):
        notes = (notes,)
    lines.extend(f"note: {note}" for note in notes)
    return lines


@pytest.fixture
def report(capsys):
    """Print a result table to the terminal and archive it to disk."""

    def _report(title, headers, rows, notes=()):
        lines = format_table(title, headers, rows, notes)
        text = "\n".join(lines)
        with capsys.disabled():
            print("\n" + text + "\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")

    return _report
