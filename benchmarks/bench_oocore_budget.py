"""Out-of-core storage under a memory budget, plus warm-start restarts.

The headline claims of ``repro.storage.sharded``, measured end-to-end:

* **Budget adherence** — saturating a workload whose working set is a
  multiple of the configured budget keeps the resident shard estimate
  at or below the budget (within the documented one-shard slack: the
  enforcement loop never evicts the shard it is currently touching).
* **Exactness across the spill boundary** — the budgeted, constantly
  evicting/reloading store answers digest-equal to a fully resident
  :class:`~repro.storage.ColumnarStore` ground truth, both through the
  sequential evaluator and the shard-parallel one.
* **Warm starts** — a :class:`~repro.server.ReasoningService` restarted
  over the same ``--state-dir`` answers its *first* query from the
  restored fixpoint cache, without resaturating.

Raw rows land in ``benchmarks/results/BENCH_oocore.json`` — written
*before* the assertions, so a failing run still uploads its evidence.
"""

from __future__ import annotations

import random
import tempfile
import time
from pathlib import Path

from repro.benchsuite.report import answer_digest
from repro.datalog.seminaive import seminaive
from repro.lang.parser import parse_program, parse_query
from repro.parallel import shard_parallel_evaluate
from repro.server import ReasoningService
from repro.storage import ShardedStore, sharded_store_factory

from conftest import write_json_result

#: Smoke scale (CI-safe): a random digraph whose transitive closure is
#: a few thousand path facts — an order of magnitude over the budget.
VERTICES = 48
EDGES = 96
SEED = 2019

#: The byte budget the resident shard estimate must respect.
BUDGET = 64 * 1024
NUM_SHARDS = 16

#: The working set must actually be out-of-core at this scale.
MIN_PRESSURE = 2.0

QUERY = "q(X, Y) :- path(X, Y)."
RULES = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""


def _program_text() -> str:
    rng = random.Random(SEED)
    edges = {
        (f"v{rng.randrange(VERTICES)}", f"v{rng.randrange(VERTICES)}")
        for _ in range(EDGES)
    }
    # A spine guarantees long reachability chains (a big closure).
    edges.update((f"v{i}", f"v{i + 1}") for i in range(0, VERTICES - 1, 2))
    facts = "\n".join(f"edge({x}, {y})." for x, y in sorted(edges))
    return facts + "\n" + RULES


def test_oocore_budget_and_warm_start(benchmark, report):
    program_text = _program_text()
    program, database = parse_program(program_text)
    query = parse_query(QUERY)

    # -- ground truth: fully resident columnar saturation ----------------
    start = time.perf_counter()
    truth = seminaive(database, program, store="columnar")
    truth_seconds = time.perf_counter() - start
    truth_answers = query.evaluate(truth.instance)
    truth_digest = answer_digest(truth_answers)

    # The working set, measured in the budget's own currency: the
    # resident shard estimate of an *unbudgeted* sharded copy.
    unbudgeted = ShardedStore(truth.instance, num_shards=NUM_SHARDS)
    working_set = unbudgeted.stats["resident_estimate"]
    pressure = working_set / BUDGET
    # The documented overshoot bound: the touched shard is never
    # evicted, so residency may exceed the budget by one shard.
    shard_slack = working_set // NUM_SHARDS + 4096

    # -- budgeted out-of-core saturation ---------------------------------
    with tempfile.TemporaryDirectory(prefix="oocore-") as spill_dir:
        factory = sharded_store_factory(
            BUDGET, Path(spill_dir), num_shards=NUM_SHARDS
        )
        start = time.perf_counter()
        budgeted = seminaive(database, program, store=factory)
        budgeted_seconds = time.perf_counter() - start
        store = budgeted.instance
        stats_after_chase = dict(store.stats)

        sequential_answers = query.evaluate(store)
        parallel_answers = shard_parallel_evaluate(query, store, workers=4)
        stats_after_query = dict(store.stats)

        def bound_probe():
            probe = parse_query("q(X) :- path(v0, X).")
            return probe.evaluate(store)

        benchmark.pedantic(bound_probe, rounds=3, iterations=1)

    # -- warm start: kill + restart over the same state directory --------
    state_dir = Path(tempfile.mkdtemp(prefix="oocore-state-"))
    service_factory = sharded_store_factory(BUDGET, None,
                                            num_shards=NUM_SHARDS)
    first = ReasoningService(
        program_text, store=service_factory, state_dir=state_dir
    )
    start = time.perf_counter()
    cold = first.query(QUERY)
    cold_seconds = time.perf_counter() - start
    first.checkpoint()
    del first  # the "kill": nothing survives but the state directory

    second = ReasoningService(
        program_text, store=service_factory, state_dir=state_dir
    )
    start = time.perf_counter()
    warm = second.query(QUERY)
    warm_seconds = time.perf_counter() - start

    resident = stats_after_chase["resident_estimate"]
    resident_post = stats_after_query["resident_estimate"]
    budgeted_digest = answer_digest(sequential_answers)
    parallel_digest = answer_digest(parallel_answers)
    warm_digest = answer_digest(warm.answers)
    cold_digest = answer_digest(cold.answers)

    report(
        f"Out-of-core budgeted storage ({VERTICES} vertices / "
        f"~{EDGES} edges, budget {BUDGET // 1024} KiB, "
        f"{NUM_SHARDS} shards)",
        ("configuration", "seconds", "resident", "spilled", "answers"),
        [
            (
                "columnar (fully resident)",
                f"{truth_seconds:.3f}",
                f"{working_set / 1024:.0f} KiB (est.)",
                "-",
                str(len(truth_answers)),
            ),
            (
                f"sharded @ {BUDGET // 1024} KiB budget",
                f"{budgeted_seconds:.3f}",
                f"{resident / 1024:.0f} KiB (est.)",
                f"{stats_after_chase['spill_bytes'] / 1024:.0f} KiB "
                f"/ {stats_after_chase['spill_pages']} pages",
                str(len(sequential_answers)),
            ),
            (
                "warm start (restored cache)",
                f"{warm_seconds:.3f}",
                "-",
                "-",
                str(len(warm.answers)),
            ),
        ],
        notes=(
            f"working set {pressure:.1f}x the budget; "
            f"{stats_after_chase['evictions']} eviction(s), "
            f"{stats_after_query['reloads']} reload(s); cold first "
            f"query {cold_seconds:.3f}s vs warm {warm_seconds:.3f}s",
        ),
    )

    # Evidence first, judgement second: the artifact must exist even
    # when an assertion below fails (CI uploads it with if: always()).
    write_json_result(
        "BENCH_oocore.json",
        {
            "schema": "repro/bench-oocore/v1",
            "scale": {
                "vertices": VERTICES,
                "edges": EDGES,
                "seed": SEED,
            },
            "memory_budget": BUDGET,
            "num_shards": NUM_SHARDS,
            "working_set_estimate": working_set,
            "pressure": pressure,
            "shard_slack": shard_slack,
            "resident_after_chase": resident,
            "resident_after_queries": resident_post,
            "stats_after_chase": stats_after_chase,
            "stats_after_queries": stats_after_query,
            "seconds": {
                "columnar": truth_seconds,
                "budgeted": budgeted_seconds,
                "cold_first_query": cold_seconds,
                "warm_first_query": warm_seconds,
            },
            "answers": len(truth_answers),
            "digests": {
                "columnar": truth_digest,
                "sharded_sequential": budgeted_digest,
                "sharded_parallel": parallel_digest,
                "service_cold": cold_digest,
                "service_warm": warm_digest,
            },
            "warm_started": second.warm_started,
            "warm_from_cache": warm.stats["from_cache"],
            "cold_from_cache": cold.stats["from_cache"],
        },
    )

    # The scale really is out-of-core relative to the budget.
    assert pressure >= MIN_PRESSURE, (
        f"working set only {pressure:.1f}x the budget — raise the scale "
        "or lower the budget"
    )
    # Budget adherence (one-shard slack is the documented overshoot).
    assert resident <= BUDGET + shard_slack, (
        f"resident estimate {resident} exceeds budget {BUDGET} "
        f"beyond the one-shard slack {shard_slack}"
    )
    assert resident_post <= BUDGET + shard_slack
    assert stats_after_chase["spilled_shards"] > 0
    assert stats_after_chase["evictions"] > 0
    # Exactness across the spill boundary, sequential and parallel.
    assert budgeted_digest == truth_digest
    assert parallel_digest == truth_digest
    # Warm start: the restarted service never resaturated.
    assert cold.stats["from_cache"] is False
    assert second.warm_started is True
    assert warm.stats["from_cache"] is True, (
        "warm-started service resaturated on its first query"
    )
    assert warm_digest == cold_digest == answer_digest(
        (tuple(str(t) for t in row) for row in truth_answers)
    )
