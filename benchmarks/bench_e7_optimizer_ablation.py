"""E7 — the Section 7(1)/(2) engine optimizations (ablation).

Paper claims:

* §7(2): the optimizer "detects and uses piece-wise linearity for the
  purpose of join ordering", biasing joins to put the one mutually
  recursive body atom first — the delta-driven operand of a streaming
  engine;
* §7(1): guide structures (linear/warded forests) give "aggressive
  termination control", terminating existential recursion "as early as
  possible" with "a significant effect on the memory footprint".

Measured here, on the operator-network engine:

* join-order ablation — the same PWL recursion with the bias on/off:
  identical fixpoints, but the biased order explores a fraction of the
  intermediate join bindings;
* guide ablation — existential recursion with the linear-forest guide
  saturates in a handful of atoms, while the unguided network runs away
  until the atom cap.
"""

from __future__ import annotations

from repro.engine import (
    JoinOptimizer,
    LinearForestGuide,
    NoGuide,
    OperatorNetwork,
)
from repro.lang.parser import parse_program, parse_query

from workloads import skewed_join_program


def _run(program, database, *, bias: bool):
    network = OperatorNetwork(
        program, optimizer=JoinOptimizer(program, pwl_bias=bias)
    )
    return network.run(database, max_atoms=500000)


def test_e7_join_order_ablation(benchmark, report):
    program, database = skewed_join_program()
    query = parse_query("q(X,W) :- t(X,W).")

    biased = benchmark.pedantic(
        _run, (program, database), {"bias": True}, rounds=2, iterations=1
    )
    unbiased = _run(program, database, bias=False)

    rows = [
        ("PWL-biased (recursive atom first)", biased.intermediate_bindings,
         biased.derived, biased.saturated),
        ("as written (large relation first)", unbiased.intermediate_bindings,
         unbiased.derived, unbiased.saturated),
    ]
    ratio = unbiased.intermediate_bindings / biased.intermediate_bindings
    report(
        "E7: join-order ablation on the operator network (Section 7(2))",
        ("plan", "intermediate bindings", "derived", "saturated"),
        rows,
        notes=(
            f"binding ratio unbiased/biased = {ratio:.2f}×; "
            "identical fixpoints either way.",
        ),
    )

    assert biased.saturated and unbiased.saturated
    assert query.evaluate(biased.instance) == query.evaluate(unbiased.instance)
    # The headline ablation: the bias must cut the explored bindings
    # substantially (the exact factor depends on the data skew).
    assert ratio > 1.5


def test_e7_guide_termination_ablation(benchmark, report):
    program, database = parse_program("""
        p(c1). p(c2). p(c3).
        r(X,Z) :- p(X).
        p(Y) :- r(X,Y).
    """)

    def run_guided():
        network = OperatorNetwork(program, guide=LinearForestGuide())
        return network.run(database, max_atoms=5000)

    guided = benchmark(run_guided)
    unguided = OperatorNetwork(program, guide=NoGuide()).run(
        database, max_atoms=5000
    )

    report(
        "E7b: guide-structure termination control (Section 7(1))",
        ("configuration", "atoms", "saturated", "guide cuts"),
        [
            ("linear-forest guide", len(guided.instance), guided.saturated,
             guided.guide_cuts),
            ("no guide (atom cap 5000)", len(unguided.instance),
             unguided.saturated, unguided.guide_cuts),
        ],
        notes=(
            "The guide recognizes that re-invention along the "
            "P → ∃z R(x,z) → P cycle is isomorphic to what exists and "
            "cuts it — the 'aggressive termination control' of §7(1).",
        ),
    )

    assert guided.saturated
    assert not unguided.saturated
    assert len(guided.instance) < 50
    assert guided.guide_cuts >= 1
    # The guided instance is a sound core: every constant-only fact of
    # the guided run also appears in the runaway instance.
    guided_ground = {a for a in guided.instance if a.is_fact()}
    unguided_ground = {a for a in unguided.instance if a.is_fact()}
    assert guided_ground <= unguided_ground


def test_e7_guide_preserves_certain_answers(benchmark):
    """Guided network answers equal the chase-probe certain answers."""
    from repro.reasoning import certain_answers

    program, database = parse_program("""
        p(c1). p(c2).
        r(X,Z) :- p(X).
        p(Y) :- r(X,Y).
        q0(X) :- r(X,Y).
    """)
    query = parse_query("q(X) :- q0(X).")

    def run():
        network = OperatorNetwork(program, guide=LinearForestGuide())
        return network.run(database, max_atoms=5000)

    result = benchmark(run)
    network_answers = {
        t for t in query.evaluate(result.instance)
    }
    reference = certain_answers(query, database, program, method="pwl")
    assert network_answers == reference
