"""E5 — the Theorem 5.1 undecidability reduction.

Paper claim: CQAns(PWL) — piece-wise linearity *without* wardedness —
is undecidable, via a reduction from the unbounded tiling problem: a
fixed Σ ∈ PWL and Boolean CQ q such that a tiling system T has a tiling
iff () ∈ cert(q, D_T, Σ).

Undecidability itself cannot be "run", but the reduction can be
validated on bounded instances:

* the fixed program is piece-wise linear and **not** warded (the
  lockstep ``comp`` rules join two dangerous row-id variables — the
  exact feature wardedness forbids);
* on solvable systems the (bounded) chase of the reduction finds the
  tiling exactly when the direct combinatorial solver does;
* on unsolvable systems both stay negative within the budget.
"""

from __future__ import annotations

from repro.analysis import is_piecewise_linear, is_warded
from repro.tiling import (
    build_reduction,
    find_tiling,
    has_tiling_within,
    is_valid_tiling,
    reduction_class_profile,
    reduction_holds_within,
    tiling_program,
)

from workloads import solvable_tiling, unsolvable_tiling, wide_tiling


def test_e5_reduction_class_profile(benchmark, report):
    """Σ ∈ PWL \\ WARD — the combination the paper proves necessary."""
    pwl, warded = benchmark(reduction_class_profile)
    program = tiling_program()
    report(
        "E5: class profile of the Theorem 5.1 reduction program",
        ("property", "value", "paper expectation"),
        [
            ("piece-wise linear", pwl, "True"),
            ("warded", warded, "False (justifies WARD ∩ PWL)"),
            ("TGDs", len(program), "6 (2 rows + 2 comp + 2 ctiling)"),
        ],
    )
    assert pwl is True
    assert warded is False
    assert len(program) == 6
    assert is_piecewise_linear(program) and not is_warded(program)


def test_e5_reduction_agrees_with_solver(benchmark, report):
    """Reduction and direct solver agree on bounded instances."""
    cases = [
        ("solvable 2x2", solvable_tiling(), 3, 3),
        ("unsolvable", unsolvable_tiling(), 3, 4),
        ("wide rows (w=4)", wide_tiling(4), 5, 3),
    ]

    def run_all():
        return [
            reduction_holds_within(system, w, h)
            for _, system, w, h in cases
        ]

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (name, reduction, solver, reduction == solver)
        for (name, _, _, _), (reduction, solver) in zip(cases, outcomes)
    ]
    report(
        "E5b: reduction chase vs direct tiling solver (bounded instances)",
        ("system", "reduction says", "solver says", "agree"),
        rows,
        notes=(
            "True/True on solvable systems is definitive (the chase is a "
            "sound semi-decision); False/False means no tiling within "
            "the bounded budget.",
        ),
    )
    assert all(reduction == solver for reduction, solver in outcomes)
    assert outcomes[0] == (True, True)
    assert outcomes[1] == (False, False)


def test_e5_solver_finds_valid_tilings(benchmark):
    system = solvable_tiling()
    tiling = benchmark(find_tiling, system, 3, 3)
    assert tiling is not None
    assert is_valid_tiling(system, tiling)
    assert has_tiling_within(system, 3, 3)


def test_e5_database_encoding_is_polynomial(benchmark):
    """|D_T| is linear in |T| — the reduction is polynomial-time."""
    small = build_reduction(solvable_tiling())
    wide = build_reduction(wide_tiling(4))
    benchmark(build_reduction, solvable_tiling())
    # 3 tiles vs 4 tiles: the database grows by a constant per tile/pair.
    assert len(small.database) < len(wide.database) <= len(small.database) + 10
    # Σ and q are fixed — independent of the system.
    assert small.program is not wide.program
    assert len(small.program) == len(wide.program)
