"""E2 — data complexity of WARD ∩ PWL answering (Theorem 4.2).

Paper claim: CQ answering under piece-wise linear warded TGDs is
NLogSpace-complete in data complexity — the non-deterministic machine
holds a *single CQ of bounded size* (node-width ≤ f_WARD∩PWL, which is
independent of the database), versus the PTime chase that materializes
a polynomially growing instance.

Measured here, on linear transitive closure over growing chains:

* the largest CQ the search ever holds (``max_width``) stays constant
  as │D│ grows — the working-configuration size is data-independent;
* visited configurations grow roughly linearly (reachability-like),
  while the chase materializes Θ(n²) atoms;
* decisions agree with ground truth on chains and random graphs.
"""

from __future__ import annotations

import tracemalloc

from repro.chase import chase
from repro.datalog.seminaive import datalog_answers
from repro.reasoning import decide_pwl_ward

from workloads import (
    node,
    reachability_query,
    tc_linear_chain,
    tc_linear_random,
)

SIZES = (8, 16, 32, 64, 128)
BENCH_SIZE = 64


def _peak_memory(action) -> int:
    """Peak allocated bytes while running *action* (tracemalloc)."""
    tracemalloc.start()
    try:
        action()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _series():
    query = reachability_query()
    rows = []
    for n in SIZES:
        program, database = tc_linear_chain(n)
        positive = decide_pwl_ward(
            query, (node(0), node(n - 1)), database, program
        )
        negative = decide_pwl_ward(
            query, (node(n - 1), node(0)), database, program
        )
        materialized = chase(database, program, max_atoms=100000)
        rows.append(
            {
                "n": n,
                "db": len(database),
                "accepted": positive.accepted,
                "rejected": not negative.accepted,
                "visited": positive.stats.visited,
                "max_width": positive.stats.max_width,
                "bound": positive.width_bound,
                "chase_atoms": len(materialized.instance),
            }
        )
    return rows


def test_e2_space_scaling_series(benchmark, report):
    rows = _series()
    query = reachability_query()
    program, database = tc_linear_chain(BENCH_SIZE)
    benchmark(
        decide_pwl_ward,
        query,
        (node(0), node(BENCH_SIZE - 1)),
        database,
        program,
    )

    report(
        "E2: WARD ∩ PWL space scaling vs database size (Theorem 4.2)",
        (
            "chain n", "|D|", "visited", "max CQ width", "width bound f",
            "chase atoms",
        ),
        [
            (
                r["n"], r["db"], r["visited"], r["max_width"], r["bound"],
                r["chase_atoms"],
            )
            for r in rows
        ],
        notes=(
            "max CQ width is the node-width observable: constant in |D| "
            "(NLogSpace working set), while the chase materializes "
            "quadratically many atoms (PTime).",
        ),
    )

    # Correctness at every size.
    assert all(r["accepted"] for r in rows)
    assert all(r["rejected"] for r in rows)
    # Space shape: the held CQ never grows with the database ...
    widths = {r["max_width"] for r in rows}
    assert len(widths) == 1
    bounds = {r["bound"] for r in rows}
    assert len(bounds) == 1
    # ... visited configurations grow sub-quadratically (reachability),
    # while chase materialization grows super-linearly.
    first, last = rows[0], rows[-1]
    scale = last["n"] / first["n"]
    assert last["visited"] / first["visited"] < 2 * scale
    assert last["chase_atoms"] / first["chase_atoms"] > 4 * scale


def test_e2_chase_baseline(benchmark):
    program, database = tc_linear_chain(BENCH_SIZE)
    result = benchmark(chase, database, program, max_atoms=100000)
    assert result.saturated
    assert len(result.instance) > BENCH_SIZE * BENCH_SIZE / 4


def test_e2_memory_footprint(benchmark, report):
    """Peak allocations: the decision engine vs chase materialization.

    The §7 claim behind the fragment is the "significant effect on the
    memory footprint"; tracemalloc makes it directly observable.
    """
    query = reachability_query()
    rows = []
    for n in (32, 64, 128):
        program, database = tc_linear_chain(n)
        decide_peak = _peak_memory(
            lambda: decide_pwl_ward(
                query, (node(0), node(n - 1)), database, program
            )
        )
        chase_peak = _peak_memory(
            lambda: chase(database, program, max_atoms=100000)
        )
        rows.append(
            (n, f"{decide_peak / 1024:.0f} KiB",
             f"{chase_peak / 1024:.0f} KiB",
             f"{chase_peak / decide_peak:.1f}×")
        )

    program, database = tc_linear_chain(BENCH_SIZE)
    benchmark.pedantic(
        decide_pwl_ward,
        (query, (node(0), node(BENCH_SIZE - 1)), database, program),
        rounds=2, iterations=1,
    )
    report(
        "E2c: peak allocations — linear proof search vs chase "
        "materialization",
        ("chain n", "decision peak", "chase peak", "chase / decision"),
        rows,
        notes=(
            "tracemalloc peaks; the decision holds bounded CQs and a "
            "visited set of O(n) canonical states, the chase holds the "
            "Θ(n²) materialized closure.",
        ),
    )
    # The gap must widen as the database grows.
    first_ratio = float(rows[0][3].rstrip("×"))
    last_ratio = float(rows[-1][3].rstrip("×"))
    assert last_ratio > first_ratio


def test_e2_random_graph_agreement(benchmark, report):
    """Decisions agree with semi-naive ground truth on a random graph."""
    query = reachability_query()
    program, database = tc_linear_random(vertices=16, edges=30, seed=2019)
    truth = datalog_answers(query, database, program)

    pairs = [
        (node(a), node(b)) for a in range(0, 16, 3) for b in range(1, 16, 4)
        if a != b
    ]

    def decide_all():
        return {
            pair: decide_pwl_ward(query, pair, database, program).accepted
            for pair in pairs
        }

    decisions = benchmark.pedantic(decide_all, rounds=2, iterations=1)
    agree = sum(
        1 for pair, accepted in decisions.items()
        if accepted == (pair in truth)
    )
    positives = sum(1 for pair in pairs if pair in truth)
    report(
        "E2b: per-tuple decisions vs semi-naive ground truth (random graph)",
        ("pairs checked", "certain", "agreements"),
        [(len(pairs), positives, agree)],
    )
    assert agree == len(pairs)
    assert 0 < positives < len(pairs)
