"""E12 (ablation) — design choices of the deterministic simulation.

DESIGN.md §3 records two engineering choices made when turning the
paper's non-deterministic machine into a deterministic engine:

1. **frontier order** — narrowest-CQ-first best-first search vs. the
   paper-literal level-by-level BFS.  Both explore the same finite
   configuration graph (decisions are identical); best-first reaches
   accepting configurations without materializing the wide speculative
   resolvent chains first.
2. **specialization mode** — database-guided binding (match one atom
   against the indexed facts) vs. the paper-literal exhaustive
   variable × domain enumeration.  Same decisions; guided branching is
   proportional to index hits instead of |vars| · |dom(D)|.

This harness measures what each choice buys and verifies the
decisions stay identical — the ablation evidence that the paper-shaped
semantics survived the engineering.
"""

from __future__ import annotations

from repro.reasoning import decide_pwl_ward

from workloads import node, reachability_query, tc_linear_chain

SIZES = (8, 16, 32)
# The BFS side of the ablation is exponential in practice (that is the
# point of the ablation); keep its sweep in the feasible range.
SIZES_BFS = (6, 8, 10)
BENCH_SIZE = 16


def test_e12_frontier_order_ablation(benchmark, report):
    query = reachability_query()
    rows = []
    for n in SIZES_BFS:
        program, database = tc_linear_chain(n)
        answer = (node(0), node(n - 1))
        best = decide_pwl_ward(
            query, answer, database, program, strategy="bestfirst"
        )
        bfs = decide_pwl_ward(
            query, answer, database, program, strategy="bfs"
        )
        assert best.accepted == bfs.accepted is True
        rows.append(
            (n, best.stats.visited, bfs.stats.visited,
             f"{bfs.stats.visited / best.stats.visited:.1f}×")
        )

    program, database = tc_linear_chain(BENCH_SIZE)
    benchmark(
        decide_pwl_ward,
        query,
        (node(0), node(BENCH_SIZE - 1)),
        database,
        program,
    )
    report(
        "E12: frontier order — best-first vs paper-literal BFS "
        "(visited configurations)",
        ("chain n", "best-first visited", "BFS visited", "BFS overhead"),
        rows,
        notes=(
            "Identical decisions (same finite configuration graph); "
            "best-first follows the narrow productive lane, BFS "
            "materializes every configuration within the radius first.",
        ),
    )
    # BFS explores strictly more on every size of this family.
    assert all(bfs > best for _, best, bfs, _ in rows)


def test_e12_specialization_mode_ablation(benchmark, report):
    query = reachability_query()
    rows = []
    for n in SIZES:
        program, database = tc_linear_chain(n)
        answer = (node(0), node(n - 1))
        guided = decide_pwl_ward(
            query, answer, database, program, specialization="guided"
        )
        exhaustive = decide_pwl_ward(
            query, answer, database, program, specialization="exhaustive"
        )
        assert guided.accepted == exhaustive.accepted is True
        rows.append(
            (
                n,
                guided.stats.specialization_steps,
                exhaustive.stats.specialization_steps,
            )
        )

    program, database = tc_linear_chain(BENCH_SIZE)
    benchmark(
        decide_pwl_ward,
        query,
        (node(0), node(BENCH_SIZE - 1)),
        database,
        program,
        specialization="guided",
    )
    report(
        "E12b: specialization mode — guided vs exhaustive "
        "(specialization steps attempted)",
        ("chain n", "guided steps", "exhaustive steps"),
        rows,
        notes=(
            "Guided specialization binds variables through the fact "
            "indexes (branching = index hits); exhaustive enumerates "
            "var × dom(D) as the paper's machine may guess.",
        ),
    )
    assert all(guided <= exhaustive for _, guided, exhaustive in rows)


def test_e12_negative_decisions_agree(benchmark):
    """Both ablation axes agree on negative instances too."""
    query = reachability_query()
    program, database = tc_linear_chain(10)
    answer = (node(9), node(0))

    def all_modes():
        return [
            decide_pwl_ward(
                query, answer, database, program,
                strategy=strategy, specialization=mode,
            ).accepted
            for strategy in ("bestfirst", "bfs")
            for mode in ("guided", "exhaustive")
        ]

    outcomes = benchmark(all_modes)
    assert outcomes == [False, False, False, False]
