"""Compiled columnar batch kernels vs the per-tuple interpreter.

The headline claims of ``repro.kernels``, measured end-to-end through
the session layer:

* **Speedup** — the E2-style transitive-closure saturation runs at
  least ``SPEEDUP_FLOOR``× faster under ``exec_mode="kernel"`` than
  under ``exec_mode="interpret"`` on the same columnar store (the
  design target is ≥10× at scale; the asserted floor is conservative
  so CI noise cannot flake the job).
* **Exactness** — kernel cells answer digest-equal to the interpreter
  on every surface that dispatches them: plain saturation (columnar
  and sharded), a magic-rewritten bound query, a post-``Session.apply``
  re-query (the IVM path), and a suite-matrix subset across stores.
* **Observability** — kernel cells report ``exec_mode="kernel"`` and a
  positive ``kernel_batches`` through ``StreamStats`` and the
  benchsuite ``CellResult``.

Raw rows land in ``benchmarks/results/BENCH_kernels.json`` — written
*before* the assertions, so a failing run still uploads its evidence.
"""

from __future__ import annotations

import random
import time

from repro.api import Session
from repro.benchsuite.harness import run_matrix
from repro.benchsuite.report import answer_digest, check_agreement

from conftest import write_json_result

#: E2-style workload: a cycle (long recursion chains) plus random
#: chords — the closure is dense and the fixpoint needs many rounds.
VERTICES = 192
CHORDS = 48
SEED = 2019

#: Asserted wall-clock floor for kernel vs interpreter on the columnar
#: store (the design target is 10×).
SPEEDUP_FLOOR = 3.0

RULES = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
"""
QUERY = "q(X, Y) :- path(X, Y)."
BOUND_QUERY = "q(Y) :- path(v0, Y)."


def _program_text() -> str:
    rng = random.Random(SEED)
    edges = {(f"v{i}", f"v{(i + 1) % VERTICES}") for i in range(VERTICES)}
    while len(edges) < VERTICES + CHORDS:
        edges.add(
            (f"v{rng.randrange(VERTICES)}", f"v{rng.randrange(VERTICES)}")
        )
    facts = "\n".join(f"edge({x}, {y})." for x, y in sorted(edges))
    return facts + "\n" + RULES


def _saturate(program_text: str, store: str, exec_mode: str,
              query: str = QUERY, rewrite: str = "auto"):
    """One cold session, one drained stream: (cell dict, answers)."""
    session = Session(store=store)
    session.load(program_text)
    start = time.perf_counter()
    stream = session.query(query, exec_mode=exec_mode, rewrite=rewrite)
    answers = stream.to_set()
    seconds = time.perf_counter() - start
    cell = {
        "store": store,
        "exec_mode_requested": exec_mode,
        "exec_mode": stream.stats.exec_mode,
        "rewrite": stream.stats.rewrite,
        "kernel_batches": stream.stats.kernel_batches,
        "rounds": stream.stats.rounds,
        "derived": stream.stats.derived,
        "seconds": seconds,
        "answers": len(answers),
        "digest": answer_digest(answers),
    }
    return cell, answers


def _post_apply_digest(program_text: str, store: str, exec_mode: str):
    """Query → apply a change batch → re-query; the IVM-path digest."""
    from repro.lang.parser import parse_program

    session = Session(store=store)
    session.load(program_text)
    session.query(QUERY, exec_mode=exec_mode).to_set()
    # Two fresh edges that lengthen existing chains through a new
    # vertex — the warmed fixpoint is upgraded, not recomputed.
    _, delta = parse_program(
        f"edge(w0, v0). edge(v{VERTICES // 2}, w0)."
    )
    report = session.apply(inserts=delta)
    stream = session.query(QUERY, exec_mode=exec_mode)
    answers = stream.to_set()
    return {
        "store": store,
        "exec_mode_requested": exec_mode,
        "maintained": len(report.maintained),
        "answers": len(answers),
        "digest": answer_digest(answers),
    }


def test_kernel_compile_speedup_and_parity(report):
    program_text = _program_text()

    # -- the tentpole measurement: TC saturation, kernel vs interpret --
    col_kernel, _ = _saturate(program_text, "columnar", "kernel")
    col_interp, _ = _saturate(program_text, "columnar", "interpret")
    sh_kernel, _ = _saturate(program_text, "sharded", "kernel")
    inst_interp, _ = _saturate(program_text, "instance", "interpret")
    speedup = col_interp["seconds"] / max(col_kernel["seconds"], 1e-9)
    speedup_vs_instance = (
        inst_interp["seconds"] / max(col_kernel["seconds"], 1e-9)
    )

    # -- magic-rewritten cell: demand program through the kernels ------
    magic_kernel, _ = _saturate(
        program_text, "columnar", "kernel", query=BOUND_QUERY,
        rewrite="magic",
    )
    magic_interp, _ = _saturate(
        program_text, "columnar", "interpret", query=BOUND_QUERY,
        rewrite="magic",
    )

    # -- post-Session.apply cell: the IVM path ------------------------
    ivm_kernel = _post_apply_digest(program_text, "columnar", "kernel")
    ivm_interp = _post_apply_digest(program_text, "instance", "interpret")

    # -- suite-matrix subset: datalog cells across both exec modes ----
    matrix_kernel = run_matrix(
        engines=("datalog",),
        stores=("columnar", "sharded"),
        scale="smoke",
        suites=("industrial",),
        exec_mode="kernel",
    )
    matrix_interp = run_matrix(
        engines=("datalog",),
        stores=("columnar", "sharded"),
        scale="smoke",
        suites=("industrial",),
        exec_mode="interpret",
    )
    matrix_cells = matrix_kernel.cells + matrix_interp.cells
    disagreements = check_agreement(matrix_cells)

    report(
        f"Columnar kernel compilation ({VERTICES} vertices + "
        f"{CHORDS} chords, transitive closure)",
        ("configuration", "seconds", "rounds", "batches", "answers"),
        [
            (
                f"{cell['store']} × {cell['exec_mode_requested']}",
                f"{cell['seconds']:.3f}",
                str(cell["rounds"]),
                str(cell["kernel_batches"]),
                str(cell["answers"]),
            )
            for cell in (col_kernel, col_interp, sh_kernel, inst_interp)
        ],
        notes=(
            f"kernel speedup {speedup:.1f}x vs columnar-interpret, "
            f"{speedup_vs_instance:.1f}x vs instance-interpret "
            f"(asserted floor {SPEEDUP_FLOOR:.0f}x); magic cell "
            f"{magic_kernel['seconds']:.3f}s kernel vs "
            f"{magic_interp['seconds']:.3f}s interpret",
        ),
    )

    # Evidence first, judgement second: the artifact must exist even
    # when an assertion below fails (CI uploads it with if: always()).
    write_json_result(
        "BENCH_kernels.json",
        {
            "schema": "repro/bench-kernels/v1",
            "scale": {
                "vertices": VERTICES,
                "chords": CHORDS,
                "seed": SEED,
            },
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup_vs_columnar_interpret": speedup,
            "speedup_vs_instance_interpret": speedup_vs_instance,
            "saturation_cells": [
                col_kernel, col_interp, sh_kernel, inst_interp
            ],
            "magic_cells": [magic_kernel, magic_interp],
            "ivm_cells": [ivm_kernel, ivm_interp],
            "matrix": {
                "kernel_cells": [
                    c.as_dict() for c in matrix_kernel.cells
                ],
                "interpret_cells": [
                    c.as_dict() for c in matrix_interp.cells
                ],
                "disagreements": disagreements,
            },
        },
    )

    # -- exactness ----------------------------------------------------
    digests = {
        cell["digest"]
        for cell in (col_kernel, col_interp, sh_kernel, inst_interp)
    }
    assert len(digests) == 1, (
        "kernel and interpreter disagree on the closure: "
        f"{[c['digest'] for c in (col_kernel, col_interp, sh_kernel, inst_interp)]}"
    )
    assert magic_kernel["digest"] == magic_interp["digest"]
    assert magic_kernel["rewrite"] == "magic"
    assert ivm_kernel["digest"] == ivm_interp["digest"]
    assert disagreements == [], disagreements

    # -- dispatch actually happened -----------------------------------
    assert col_kernel["exec_mode"] == "kernel"
    assert col_kernel["kernel_batches"] > 0
    assert sh_kernel["exec_mode"] == "kernel"
    assert magic_kernel["exec_mode"] == "kernel"
    assert magic_kernel["kernel_batches"] > 0
    assert col_interp["exec_mode"] == "interpret"
    assert col_interp["kernel_batches"] == 0
    kernel_ok = [
        c for c in matrix_kernel.cells if c.status == "ok"
    ]
    assert kernel_ok, "matrix subset produced no successful cells"
    assert all(c.exec_mode == "kernel" for c in kernel_ok)
    assert all(c.kernel_batches > 0 for c in kernel_ok)

    # -- the performance floor ----------------------------------------
    assert speedup >= SPEEDUP_FLOOR, (
        f"kernel exec is only {speedup:.2f}x the columnar interpreter "
        f"(floor {SPEEDUP_FLOOR}x): kernel {col_kernel['seconds']:.3f}s "
        f"vs interpret {col_interp['seconds']:.3f}s"
    )
