"""E3 — combined complexity of WARD ∩ PWL answering (Theorem 4.2).

Paper claim: CQ answering under piece-wise linear warded TGDs is
PSpace-complete in combined complexity.  The upper bound comes from the
node-width polynomial

    f_WARD∩PWL(q, Σ) = (|q| + 1) · max-level(Σ) · max-body(Σ),

which grows *polynomially* with the program (through the predicate
level ℓΣ) — unlike the WARD bound f_WARD, which is level-free.

Measured here, on programs with a growing tower of recursion levels
over a fixed database:

* the computed bound follows the formula exactly (linear in levels);
* visited configurations and runtime grow polynomially, not
  exponentially, with program depth;
* all decisions stay correct.
"""

from __future__ import annotations

from repro.analysis import max_level, node_width_bound_pwl, node_width_bound_ward
from repro.lang.parser import parse_query
from repro.reasoning import decide_pwl_ward

from workloads import level_chain_program, node

LEVELS = (1, 2, 4, 8, 12)
BENCH_LEVEL = 8
CHAIN = 10


def _series():
    rows = []
    for levels in LEVELS:
        program, database = level_chain_program(levels, n=CHAIN)
        query = parse_query(f"q(X,Y) :- p{levels}(X,Y).")
        normalized = program.single_head()
        bound = node_width_bound_pwl(query, normalized)
        ward_bound = node_width_bound_ward(query, normalized)
        decision = decide_pwl_ward(
            query, (node(0), node(CHAIN - 1)), database, program
        )
        rows.append(
            {
                "levels": levels,
                "rules": len(program),
                "max_level": max_level(normalized),
                "bound": bound,
                "ward_bound": ward_bound,
                "visited": decision.stats.visited,
                "max_width": decision.stats.max_width,
                "accepted": decision.accepted,
            }
        )
    return rows


def test_e3_bound_growth_series(benchmark, report):
    rows = _series()
    program, database = level_chain_program(BENCH_LEVEL, n=CHAIN)
    query = parse_query(f"q(X,Y) :- p{BENCH_LEVEL}(X,Y).")
    benchmark(
        decide_pwl_ward, query, (node(0), node(CHAIN - 1)), database, program
    )

    report(
        "E3: node-width bound and search effort vs program depth "
        "(Theorem 4.2, combined complexity)",
        (
            "levels", "rules", "max level", "f_WARD∩PWL", "f_WARD",
            "visited", "max CQ width",
        ),
        [
            (
                r["levels"], r["rules"], r["max_level"], r["bound"],
                r["ward_bound"], r["visited"], r["max_width"],
            )
            for r in rows
        ],
        notes=(
            "f_WARD∩PWL = (|q|+1) · max-level · max-body grows linearly "
            "with the recursion tower; f_WARD is level-free (constant).",
        ),
    )

    # The bound follows the formula: (1+1) · (levels+1) · 2.
    for r in rows:
        assert r["bound"] == 2 * (r["max_level"]) * 2
        assert r["max_level"] == r["levels"] + 1
    # The WARD bound is level-independent.
    assert len({r["ward_bound"] for r in rows}) == 1
    # Effort grows polynomially (here: linearly) in the program depth,
    # and correctness holds throughout.
    assert all(r["accepted"] for r in rows)
    first, last = rows[0], rows[-1]
    depth_scale = last["levels"] / first["levels"]
    assert last["visited"] / first["visited"] < 3 * depth_scale


def test_e3_width_stays_below_bound(benchmark):
    """The search never holds a CQ wider than the theorem's bound."""
    program, database = level_chain_program(4, n=CHAIN)
    query = parse_query("q(X,Y) :- p4(X,Y).")

    def run():
        return decide_pwl_ward(
            query, (node(0), node(CHAIN - 1)), database, program
        )

    decision = benchmark(run)
    assert decision.accepted
    assert decision.stats.max_width <= decision.width_bound
