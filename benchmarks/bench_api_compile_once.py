"""API benchmark — compile-once-query-many vs. per-query recompilation.

The ``repro.api`` session layer claims that serving many queries
against one program amortizes everything that does not depend on the
query: parsing/classification/stratification (``CompiledProgram``),
the star abstraction, and — for the fixpoint engines — the saturated
materialization itself.  Measured here on the E2 chain scenario
(linear transitive closure, WARD ∩ PWL):

* **legacy** — one ``certain_answers(q, D, Σ)`` call per query, the
  pre-session workflow: every call re-classifies the program and
  re-runs the fixpoint;
* **session** — one ``Session`` that loads the program once and
  answers the same queries from its caches;
* **first-answer latency** — time until a cold stream yields its first
  tuple, vs. the time to materialize the full set.

Writes ``benchmarks/results/BENCH_api.json`` with the raw numbers (the
CI artifact) in addition to the usual report table.
"""

from __future__ import annotations

import time

from repro.api import Session
from repro.reasoning.answers import certain_answers

from conftest import write_json_result
from workloads import tc_linear_chain

CHAIN_N = 64
QUERY_TEXTS = tuple(
    [
        "q(X,Y) :- t(X,Y).",
        "q(X) :- t(X,Y).",
        "q(Y) :- t(X,Y).",
        "q() :- t(X,Y).",
        "q(X,Z) :- t(X,Y), t(Y,Z).",
        "q(X) :- e(X,Y), t(Y,Z).",
        "q(X,Y) :- e(X,Y).",
        "q(Y) :- t(n0,Y).",
        "q(X) :- t(X,n8).",
        "q() :- t(n0,n8).",
        "q(X,Y) :- t(X,Y), e(X,Y).",
        "q(Z) :- e(n0,Y), t(Y,Z).",
    ]
)


def _legacy_rows(program, database, queries):
    """One eager facade call per query: recompile + rerun every time."""
    rows = []
    for query in queries:
        start = time.perf_counter()
        answers = certain_answers(query, database, program)
        rows.append(
            {"answers": len(answers), "seconds": time.perf_counter() - start}
        )
    return rows


def _session_rows(session, queries):
    rows = []
    for query in queries:
        start = time.perf_counter()
        stream = session.query(query)
        answers = stream.to_set()
        rows.append(
            {
                "answers": len(answers),
                "seconds": time.perf_counter() - start,
                "from_cache": stream.stats.from_cache,
            }
        )
    return rows


def test_bench_api_compile_once(report):
    from repro.lang.parser import parse_query

    program, database = tc_linear_chain(CHAIN_N)
    queries = [parse_query(text) for text in QUERY_TEXTS]

    legacy_rows = _legacy_rows(program, database, queries)
    legacy_total = sum(row["seconds"] for row in legacy_rows)

    session = Session()
    compiled = session.compile(program)
    session.add_facts(database)
    # First-answer latency on a cold session (nothing materialized yet).
    cold_stream = session.query(queries[0])
    first_start = time.perf_counter()
    cold_stream.first(1)
    first_answer_seconds = time.perf_counter() - first_start
    full_start = time.perf_counter()
    cold_stream.to_set()
    rest_seconds = time.perf_counter() - full_start

    session_rows = _session_rows(session, queries)
    session_total = sum(row["seconds"] for row in session_rows)

    # The compile-once guarantee, asserted in the benchmark as well.
    assert compiled.analysis_runs == 1
    assert all(
        legacy["answers"] == cached["answers"]
        for legacy, cached in zip(legacy_rows, session_rows)
    )

    speedup = legacy_total / session_total if session_total else float("inf")
    payload = {
        "scenario": f"E2 linear chain, n={CHAIN_N}",
        "queries": len(queries),
        "legacy_per_query_seconds": [r["seconds"] for r in legacy_rows],
        "legacy_total_seconds": legacy_total,
        "session_per_query_seconds": [r["seconds"] for r in session_rows],
        "session_total_seconds": session_total,
        "session_cache_hits": sum(
            1 for r in session_rows if r["from_cache"]
        ),
        "speedup": speedup,
        "first_answer_seconds": first_answer_seconds,
        "full_set_seconds": first_answer_seconds + rest_seconds,
        "analysis_runs": compiled.analysis_runs,
    }
    write_json_result("BENCH_api.json", payload)

    report(
        "API — compile once, query many (E2 chain scenario)",
        ["workflow", "queries", "total s", "s/query", "speedup"],
        [
            [
                "legacy (recompile per query)",
                len(queries),
                f"{legacy_total:.3f}",
                f"{legacy_total / len(queries):.4f}",
                "1.0x",
            ],
            [
                "session (compile once)",
                len(queries),
                f"{session_total:.3f}",
                f"{session_total / len(queries):.4f}",
                f"{speedup:.1f}x",
            ],
        ],
        notes=(
            f"first answer after {first_answer_seconds * 1e3:.2f} ms on a "
            "cold stream (full set: "
            f"{(first_answer_seconds + rest_seconds) * 1e3:.2f} ms); "
            f"classification/stratification ran {compiled.analysis_runs} "
            f"time(s) for {len(queries) + 1} queries",
        ),
    )

    assert speedup > 1.0
