"""Incremental maintenance vs recompute-from-scratch on churn workloads.

The headline claim of ``repro.incremental``: a session whose EDB keeps
changing should pay per-update work proportional to the *change*, not
to the database.  Measured here on the churn scenario family (E2-scale
random graph, ≥100-update stream, ≤10% churn per update, insertions
*and retractions* in every batch):

* **incremental** — one long-lived :class:`repro.api.Session`; every
  update goes through ``Session.apply`` and upgrades the cached
  fixpoint (DRed + counting + semi-naive fast path) which then serves
  the per-step query from cache;
* **recompute** — what the session did before this subsystem existed:
  every update throws the materialization away and the per-step query
  re-runs semi-naive evaluation from scratch.

Answers are asserted identical at every step (and the final stores
atom-identical), so the speedup is measured on provably equal work.
Raw rows land in ``benchmarks/results/BENCH_incremental.json``.
"""

from __future__ import annotations

import time

from repro.api import Session
from repro.benchsuite import generate_churn
from repro.benchsuite.report import answer_digest
from repro.core.instance import Database
from repro.datalog.seminaive import seminaive

from conftest import write_json_result

#: E2 scale: the largest E2 data-complexity size (n=128), dense enough
#: that recomputation hurts; 100 updates at ≤10% churn each.
VERTICES = 128
EDGES = 256
STEPS = 100
CHURN = 0.1
SEED = 2019

#: The per-step query (the TC reachability workload of E2).
QUERY_INDEX = 0

#: CI-safe floor; locally the observed speedup is far higher (the JSON
#: artifact records the measured value).
MIN_SPEEDUP = 3.0


def _run_incremental(churn, query):
    session = Session()
    compiled = session.compile(churn.scenario.program)
    session.add_facts(churn.scenario.database)
    plan = session.plan(query, program=compiled, method="datalog")
    assert plan.maintainable, "churn program must be in the fragment"
    per_step = []
    start = time.perf_counter()
    session.query(query, program=compiled, method="datalog").to_set()
    warmup = time.perf_counter() - start
    maintained = []
    start = time.perf_counter()
    for step in churn.steps:
        report = session.apply(step)
        assert not report.fallbacks, report.fallbacks
        maintained.append(report)
        stream = session.query(query, program=compiled, method="datalog")
        answers = stream.to_set()
        assert stream.stats.from_cache, "maintenance must serve the cache"
        per_step.append(answers)
    seconds = time.perf_counter() - start
    fixpoint = session.get_fixpoint(plan)
    totals = {
        "overdeleted": sum(r.totals().overdeleted for r in maintained),
        "rederived": sum(r.totals().rederived for r in maintained),
        "removed": sum(r.totals().removed for r in maintained),
        "derived_added": sum(r.totals().derived_added for r in maintained),
        "matches": sum(r.totals().matches for r in maintained),
    }
    return {
        "seconds": seconds,
        "warmup_seconds": warmup,
        "answers": per_step,
        "fixpoint": fixpoint,
        "resident_bytes": fixpoint.memory_report().total_bytes,
        "maintenance_totals": totals,
    }


def _run_recompute(churn, query):
    """The pre-IVM behaviour: every update invalidates, every query
    re-saturates from scratch."""
    program = churn.scenario.program
    edb = Database(churn.scenario.database)
    per_step = []
    last = None
    start = time.perf_counter()
    for step in churn.steps:
        edb.discard_all(step.retracts)
        edb.add_all(step.inserts)
        last = seminaive(Database(edb), program).instance
        per_step.append(frozenset(query.evaluate(last)))
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "answers": per_step,
        "fixpoint": last,
        "resident_bytes": last.memory_report().total_bytes,
    }


def test_incremental_churn_vs_recompute(benchmark, report):
    churn = generate_churn(
        vertices=VERTICES, edges=EDGES, steps=STEPS, churn=CHURN, seed=SEED
    )
    query = churn.scenario.queries[QUERY_INDEX]
    retractions = sum(len(step.retracts) for step in churn.steps)
    assert retractions >= STEPS, "every update batch must retract facts"

    incremental = _run_incremental(churn, query)
    recompute = _run_recompute(churn, query)

    divergences = [
        index
        for index, (got, expected) in enumerate(
            zip(incremental["answers"], recompute["answers"])
        )
        if frozenset(got) != expected
    ]
    stores_equal = set(incremental["fixpoint"]) == set(
        recompute["fixpoint"]
    )
    changed = sum(
        1
        for before, after in zip(
            incremental["answers"], incremental["answers"][1:]
        )
        if frozenset(before) != frozenset(after)
    )
    speedup = recompute["seconds"] / incremental["seconds"]

    # One maintained update as the pytest-benchmark row (fresh session
    # per round so the step is always applied to a saturated cache).
    def one_step():
        session = Session()
        compiled = session.compile(churn.scenario.program)
        session.add_facts(churn.scenario.database)
        session.query(query, program=compiled, method="datalog").to_set()
        session.apply(churn.steps[0])

    benchmark.pedantic(one_step, rounds=2, iterations=1)

    report(
        "Incremental maintenance vs recompute-from-scratch (churn, "
        f"E2 scale: {VERTICES} vertices / {EDGES} edges, {STEPS} updates, "
        f"≤{CHURN:.0%} churn)",
        ("mode", "seconds", "per update", "resident", "speedup"),
        [
            (
                "incremental (Session.apply)",
                f"{incremental['seconds']:.3f}",
                f"{1000 * incremental['seconds'] / STEPS:.1f} ms",
                f"{incremental['resident_bytes'] / 1024:.0f} KiB",
                f"{speedup:.1f}x",
            ),
            (
                "recompute (seminaive per update)",
                f"{recompute['seconds']:.3f}",
                f"{1000 * recompute['seconds'] / STEPS:.1f} ms",
                f"{recompute['resident_bytes'] / 1024:.0f} KiB",
                "1.0x",
            ),
        ],
        notes=(
            f"{retractions} retraction(s) and "
            f"{sum(len(s.inserts) for s in churn.steps)} insertion(s) "
            "exercised; answers asserted identical at every update; "
            f"maintenance totals: {incremental['maintenance_totals']}",
        ),
    )

    # The artifact is written before any assertion so a failing run
    # still uploads its evidence (the CI step archives it if: always()).
    write_json_result(
        "BENCH_incremental.json",
        {
            "schema": "repro/bench-incremental/v1",
            "scenario": churn.scenario.meta,
            "query": str(query),
            "updates": STEPS,
            "retractions": retractions,
            "insertions": sum(len(s.inserts) for s in churn.steps),
            "incremental_seconds": incremental["seconds"],
            "incremental_warmup_seconds": incremental["warmup_seconds"],
            "recompute_seconds": recompute["seconds"],
            "speedup": speedup,
            "min_speedup_asserted": MIN_SPEEDUP,
            "answers_equal_every_step": not divergences,
            "divergent_steps": divergences[:10],
            "final_stores_equal": stores_equal,
            "answers_changed_steps": changed,
            "final_answer_digest": answer_digest(
                incremental["answers"][-1]
            ),
            "final_atoms": len(incremental["fixpoint"]),
            "incremental_resident_bytes": incremental["resident_bytes"],
            "recompute_resident_bytes": recompute["resident_bytes"],
            "incremental_memory_report": incremental[
                "fixpoint"
            ].memory_report().as_dict(),
            "maintenance_totals": incremental["maintenance_totals"],
        },
    )

    # Exactness, asserted in-suite: answers agree at every single step,
    # the maintained store equals the recomputed one atom-for-atom, and
    # the churn actually moved the answers (retractions included).
    assert not divergences, f"divergence at update(s) {divergences[:10]}"
    assert stores_equal, "maintained store != recomputed store"
    assert changed > 0, "churn stream must actually move the answers"
    assert speedup >= MIN_SPEEDUP, (
        f"incremental maintenance only {speedup:.1f}x faster than "
        f"recompute (need ≥{MIN_SPEEDUP}x)"
    )
