"""Demand-driven (magic-set) point queries vs full saturation.

The headline claim of the ``rewrite`` plan dimension: a bound-argument
query should pay for the facts it *demands*, not for the whole least
fixpoint.  Measured here on point queries (``q(Y) :- t(c, Y)``) over
two scenario families:

* **churn** — the clustered E2-scale graph of the incremental suite
  (16 weakly-connected company-group clusters): demand from one vertex
  stays inside its cluster while full saturation closes every cluster
  and the two non-recursive strata on top;
* **iWarded (linear)** — the full-fragment recursion block of the
  iWarded generator (linear transitive closure over a sparse random
  graph; the existential core is outside the rewriting's full-program
  fragment and is not part of either side's evaluation).

Both sides run through one :class:`repro.api.Session` with the
``datalog`` engine; only the plan's ``rewrite`` dimension differs.
Answers are asserted identical (and again identical after churn update
batches, where the magic materialization must fall back to
recomputation), so the derived-fact reduction is measured on provably
equal answers.  Raw rows land in
``benchmarks/results/BENCH_magic.json`` — written *before* the
assertions, so a failing run still uploads its evidence.
"""

from __future__ import annotations

import time

from repro.api import Session
from repro.benchsuite import generate_churn
from repro.benchsuite.iwarded import generate_iwarded
from repro.benchsuite.report import answer_digest
from repro.core.program import Program
from repro.lang.parser import parse_query

from conftest import write_json_result

#: Churn at the incremental-benchmark scale; a handful of update steps
#: exercise the magic↔IVM fallback path end to end.
CHURN_VERTICES = 128
CHURN_EDGES = 256
CHURN_CLUSTERS = 16
CHURN_STEPS = 4

#: iWarded linear recursion over a sparse graph (demand stays local).
IW_VERTICES = 96
IW_EDGES = 120

SEED = 2019

#: CI-safe floor; the JSON artifact records the measured reductions
#: (≈19x churn, ≈100x iWarded locally).
MIN_REDUCTION = 3.0


def _families():
    churn = generate_churn(
        vertices=CHURN_VERTICES,
        edges=CHURN_EDGES,
        clusters=CHURN_CLUSTERS,
        steps=CHURN_STEPS,
        seed=SEED,
    )
    iwarded = generate_iwarded(
        seed=SEED, flavour="linear",
        vertices=IW_VERTICES, edges=IW_EDGES,
    )
    # The demand fragment is full programs: keep the scenario's full
    # recursion block (the existential warded core would route the
    # plan to a proof-tree engine, not the datalog fixpoint).
    iw_full = Program(
        [tgd for tgd in iwarded.program if tgd.is_full()],
        name=f"{iwarded.program.name}-full",
    )
    return (
        {
            "family": "churn",
            "program": churn.scenario.program,
            "database": churn.scenario.database,
            "query": parse_query("q(Y) :- t(n17,Y)."),
            "meta": churn.scenario.meta,
            "steps": churn.steps,
        },
        {
            "family": "iwarded-linear",
            "program": iw_full,
            "database": iwarded.database,
            "query": parse_query("q(Y) :- iw_t(n5,Y)."),
            "meta": iwarded.meta,
            "steps": (),
        },
    )


def _measure(case):
    """One family: unrewritten vs magic through the same session."""
    session = Session()
    compiled = session.compile(case["program"])
    session.add_facts(case["database"])

    def run(rewrite):
        start = time.perf_counter()
        stream = session.query(
            case["query"], program=compiled, method="datalog",
            rewrite=rewrite,
        )
        answers = frozenset(stream.to_set())
        seconds = time.perf_counter() - start
        return {
            "answers": answers,
            "seconds": seconds,
            "derived": stream.stats.derived,
            "rounds": stream.stats.rounds,
            "rewrite": stream.stats.rewrite,
        }

    plain = run("none")
    magic = run("auto")
    row = {
        "family": case["family"],
        "query": str(case["query"]),
        "scenario_meta": case["meta"],
        "answers": len(plain["answers"]),
        "answers_equal": plain["answers"] == magic["answers"],
        "answer_digest": answer_digest(plain["answers"]),
        "plain_derived": plain["derived"],
        "magic_derived": magic["derived"],
        "reduction": (
            plain["derived"] / magic["derived"]
            if magic["derived"]
            else float(plain["derived"] or 1)
        ),
        "plain_seconds": plain["seconds"],
        "magic_seconds": magic["seconds"],
        "plain_rounds": plain["rounds"],
        "magic_rounds": magic["rounds"],
        "magic_plan_resolved": magic["rewrite"],
        "post_update_checks": 0,
        "post_update_equal": True,
        "fallback_recorded": None,
    }
    # Update batches: the magic materialization must fall back (the
    # recorded reason) and the recomputed demand answers must keep
    # matching the unrewritten plan at every step.
    fallbacks = True
    equal = True
    for changes in case["steps"]:
        report = session.apply(changes)
        fallbacks = fallbacks and any(
            "demand-specific" in reason for _, reason in report.fallbacks
        )
        after_plain = run("none")
        after_magic = run("auto")
        equal = equal and (
            after_plain["answers"] == after_magic["answers"]
        )
        row["post_update_checks"] += 1
    if case["steps"]:
        row["post_update_equal"] = equal
        row["fallback_recorded"] = fallbacks
    return row


def test_magic_demand_point_queries(benchmark, report):
    rows = [_measure(case) for case in _families()]

    # One magic point query as the pytest-benchmark row (fresh session
    # per round so the engine really runs).
    cases = _families()

    def one_point_query():
        session = Session()
        compiled = session.compile(cases[0]["program"])
        session.add_facts(cases[0]["database"])
        session.query(
            cases[0]["query"], program=compiled, method="datalog"
        ).to_set()

    benchmark.pedantic(one_point_query, rounds=2, iterations=1)

    report(
        "Demand (magic-set) point queries vs full saturation "
        f"(churn {CHURN_VERTICES}v/{CHURN_EDGES}e/{CHURN_CLUSTERS} "
        f"clusters; iWarded linear {IW_VERTICES}v/{IW_EDGES}e)",
        ("family", "derived (full)", "derived (magic)", "reduction",
         "answers", "equal"),
        [
            (
                row["family"],
                row["plain_derived"],
                row["magic_derived"],
                f"{row['reduction']:.1f}x",
                row["answers"],
                row["answers_equal"],
            )
            for row in rows
        ],
        notes=(
            f"≥{MIN_REDUCTION}x asserted per family; answers asserted "
            "identical before and after churn update batches (magic "
            "fixpoints fall back to recomputation, reason recorded)",
        ),
    )

    # The artifact is written before any assertion so a failing run
    # still uploads its evidence (the CI step archives it if: always()).
    write_json_result(
        "BENCH_magic.json",
        {
            "schema": "repro/bench-magic/v1",
            "min_reduction_asserted": MIN_REDUCTION,
            "families": rows,
        },
    )

    for row in rows:
        assert row["magic_plan_resolved"] == "magic", row["family"]
        assert row["answers_equal"], (
            f"{row['family']}: magic answers diverge from the "
            "unrewritten plan"
        )
        assert row["post_update_equal"], (
            f"{row['family']}: divergence after Session.apply"
        )
        if row["fallback_recorded"] is not None:
            assert row["fallback_recorded"], (
                f"{row['family']}: apply did not record the magic "
                "fallback"
            )
        assert row["reduction"] >= MIN_REDUCTION, (
            f"{row['family']}: only {row['reduction']:.1f}x fewer "
            f"derived facts (need ≥{MIN_REDUCTION}x)"
        )
