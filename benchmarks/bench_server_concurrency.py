"""Concurrent serving under churn: throughput, latency, and exactness.

The acceptance bar of :mod:`repro.server`: N concurrent clients issue
queries over real sockets while a writer client applies a 100-batch
churn stream — and **every** answer set must be digest-equal to a
from-scratch evaluation over the EDB version the query was admitted
under.  Zero requests may drop or error; old versions must be
garbage-collected once their readers drain.

The measured side: sustained queries/second across the whole run and
client-observed p50/p99 latency, archived (before any assertion) in
``benchmarks/results/BENCH_server.json``.
"""

from __future__ import annotations

import random
import threading
import time

from repro.benchsuite import generate_churn
from repro.benchsuite.report import answer_digest
from repro.core.instance import Database
from repro.datalog.seminaive import seminaive
from repro.lang.parser import parse_query
from repro.server import ReasoningClient, ReasoningServer, ReasoningService
from repro.workloads import LatencyHistogram

from conftest import write_json_result

VERTICES = 64
EDGES = 128
CLUSTERS = 8
STEPS = 100
CHURN = 0.1
SEED = 2019

#: Concurrent reader clients (the ISSUE floor is 8).
CLIENTS = 8

#: The mixed read workload: mostly bound probes (the cheap, frequent
#: shape), a full-TC scan every few iterations (the expensive one).
BOUND_QUERY = "q(X) :- t(n0, X)."
REACH_QUERY = "q(X) :- reach(X)."
FULL_QUERY = "q(X, Y) :- t(X, Y)."
QUERY_MIX = (BOUND_QUERY, BOUND_QUERY, REACH_QUERY, FULL_QUERY)


def _delta_lines(step) -> str:
    """One ChangeSet as the wire's +atom/-atom text block."""
    lines = [f"-{atom}." for atom in step.retracts]
    lines += [f"+{atom}." for atom in step.inserts]
    return "\n".join(lines)


def test_server_concurrency_under_churn(benchmark, report):
    churn = generate_churn(
        vertices=VERTICES,
        edges=EDGES,
        clusters=CLUSTERS,
        steps=STEPS,
        churn=CHURN,
        seed=SEED,
    )
    service = ReasoningService(
        churn.scenario.program,
        facts=churn.scenario.database,
        store="columnar",
    )
    server = ReasoningServer(service, port=0)
    host, port = server.address
    server.serve_in_thread()

    observations = []  # (query_text, admitted version, answer rows)
    latencies = LatencyHistogram()  # client-observed, per query
    update_records = []  # server payloads, one per batch
    errors = []
    observe_lock = threading.Lock()
    start_gate = threading.Barrier(CLIENTS + 1)
    writer_done = threading.Event()

    def writer():
        try:
            with ReasoningClient(host, port) as client:
                start_gate.wait(timeout=30)
                for step in churn.steps:
                    payload = client.update(_delta_lines(step))
                    update_records.append(payload)
        except Exception as error:
            errors.append(("writer", repr(error)))
        finally:
            writer_done.set()

    def reader(index):
        rng = random.Random(SEED + index)
        try:
            with ReasoningClient(host, port) as client:
                start_gate.wait(timeout=30)
                while True:
                    done_before = writer_done.is_set()
                    query_text = rng.choice(QUERY_MIX)
                    begin = time.perf_counter()
                    result = client.query(query_text)
                    elapsed = time.perf_counter() - begin
                    latencies.record(elapsed)
                    with observe_lock:
                        observations.append(
                            (query_text, result.version, result.answers)
                        )
                    if done_before:
                        return  # one final post-churn pass completed
        except Exception as error:
            errors.append((f"reader-{index}", repr(error)))

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(index,))
        for index in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    wall_seconds = time.perf_counter() - wall_start
    stuck = [thread.name for thread in threads if thread.is_alive()]

    final_stats = service.stats()
    server.close()

    # -- sequential ground truth, per installed version -------------------
    # Replay the churn stream exactly as the server admitted it: the
    # update payloads say which batches were effective and what version
    # each installed.
    state = set(churn.scenario.database)
    states = {0: frozenset(state)}
    replay_consistent = True
    for step, payload in zip(churn.steps, update_records):
        retracted = [atom for atom in step.retracts if atom in state]
        inserted = [atom for atom in step.inserts if atom not in state]
        if not retracted and not inserted:
            replay_consistent &= not payload["effective"]
            continue
        replay_consistent &= bool(payload["effective"])
        state.difference_update(retracted)
        state.update(inserted)
        states[payload["version"]] = frozenset(state)

    program = churn.scenario.program
    queried_versions = sorted({version for _, version, _ in observations})
    fixpoints = {
        version: seminaive(Database(states[version]), program).instance
        for version in queried_versions
        if version in states
    }
    expected_digests = {}
    mismatches = []
    unknown_versions = []
    for query_text, version, answers in observations:
        if version not in fixpoints:
            unknown_versions.append(version)
            continue
        key = (query_text, version)
        if key not in expected_digests:
            expected_digests[key] = answer_digest(
                parse_query(query_text).evaluate(fixpoints[version])
            )
        if answer_digest(answers) != expected_digests[key]:
            mismatches.append((query_text, version))

    queries_answered = len(observations)
    qps = queries_answered / wall_seconds if wall_seconds else 0.0
    p50 = latencies.p50
    p99 = latencies.p99

    # One client round-trip as the pytest-benchmark row.
    bench_service = ReasoningService(
        churn.scenario.program,
        facts=churn.scenario.database,
        store="columnar",
    )
    bench_server = ReasoningServer(bench_service, port=0)
    bench_server.serve_in_thread()
    bench_host, bench_port = bench_server.address
    with ReasoningClient(bench_host, bench_port) as bench_client:
        benchmark.pedantic(
            lambda: bench_client.query(BOUND_QUERY), rounds=3, iterations=5
        )
    bench_server.close()

    report(
        "Concurrent serving under churn "
        f"({CLIENTS} clients, {STEPS} update batches, "
        f"{VERTICES} vertices / {EDGES} edges)",
        ("metric", "value"),
        [
            ("queries answered", queries_answered),
            ("updates applied", len(update_records)),
            ("wall seconds", f"{wall_seconds:.2f}"),
            ("sustained QPS", f"{qps:.1f}"),
            ("p50 latency", f"{p50 * 1000:.2f} ms"),
            ("p99 latency", f"{p99 * 1000:.2f} ms"),
            ("versions queried", len(queried_versions)),
            ("digest mismatches", len(mismatches)),
            ("request errors", len(errors)),
            (
                "versions alive at end",
                final_stats["snapshots"]["live_versions"],
            ),
        ],
        notes=(
            "every answer checked digest-equal to from-scratch "
            "evaluation on its admitted EDB version; updates and "
            "queries raced over real sockets",
        ),
    )

    # Written before any assertion: a failing run still uploads its
    # evidence (the CI step archives results/ with if: always()).
    write_json_result(
        "BENCH_server.json",
        {
            "schema": "repro/bench-server/v1",
            "scenario": churn.scenario.meta,
            "clients": CLIENTS,
            "update_batches": STEPS,
            "store": "columnar",
            "queries_answered": queries_answered,
            "updates_applied": len(update_records),
            "wall_seconds": wall_seconds,
            "sustained_qps": qps,
            "latency_p50_ms": p50 * 1000,
            "latency_p99_ms": p99 * 1000,
            "latency": latencies.summary(),
            "versions_installed": service.current_version,
            "versions_queried": queried_versions,
            "digest_mismatches": mismatches[:10],
            "request_errors": errors[:10],
            "stuck_threads": stuck,
            "replay_consistent": replay_consistent,
            "unknown_versions": unknown_versions[:10],
            "query_mix": sorted(set(QUERY_MIX)),
            "server_stats": final_stats,
        },
    )

    assert not stuck, f"threads did not finish: {stuck}"
    assert not errors, f"requests errored: {errors[:5]}"
    assert len(update_records) == STEPS
    assert replay_consistent, "server effectivity disagreed with replay"
    assert not unknown_versions, (
        f"answers admitted under unknown versions: {unknown_versions[:5]}"
    )
    assert not mismatches, (
        f"answers diverged from ground truth at {mismatches[:5]}"
    )
    # The run must actually have interleaved: readers observed multiple
    # versions, and every reader answered at least once per batch epoch.
    assert len(queried_versions) > 1, "no query raced an update"
    assert queries_answered >= CLIENTS
    # Old versions are collected once their readers drain: only the
    # head (plus at most a straggler being released) stays live.
    assert final_stats["snapshots"]["live_versions"] <= 2
