"""BENCH suite — the scenario matrix, end to end (pytest / CI entry).

Drives :func:`repro.benchsuite.harness.run_matrix` at smoke scale:
all five generator families × every plannable engine × every storage
backend, each cell executed through ``repro.api.Session`` with wall
time, answer counts, engine work counters, and per-component
``memory_report()`` bytes.  The consolidated artifact lands in
``benchmarks/results/BENCH_suite.json`` (the CI upload).

The assertions are the acceptance bar:

* every family yields successful cells on ≥ 2 engines and ≥ 2 storage
  backends,
* every (scenario, query) group's successful cells agree on the exact
  certain-answer set across engines *and* backends,
* no cell errored (budget-limited ``not-saturated`` cells are expected
  for the non-terminating warded chases and are excluded from the
  agreement check by construction).
"""

from __future__ import annotations

import os

from repro.benchsuite import run_matrix

from conftest import write_json_result

SCALE = "smoke"

#: Same knob the CLI exposes as ``repro bench --seed``: rerunning CI
#: with a different corpus draw is an env var, not a code edit.
BASE_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2019"))


def test_bench_suite_matrix(report):
    suite_report = run_matrix(scale=SCALE, base_seed=BASE_SEED)
    write_json_result("BENCH_suite.json", suite_report.as_dict())

    report(
        "BENCH suite: scenario matrix (suite × engine × store, "
        f"scale={SCALE})",
        ("scenario", "engine", "store", "status", "seconds", "answers",
         "resident"),
        suite_report.summary_rows(),
        notes=(
            f"{suite_report.agreement_groups_checked} (scenario, query) "
            "group(s) cross-checked for exact answer agreement; "
            f"{len(suite_report.disagreements)} disagreement(s); "
            "resident = memory_report().total_bytes of the cell's "
            "materialization (fixpoint store, or EDB + star abstraction "
            "for the proof-tree engines).",
        ),
    )

    # The matrix must actually cover the paper's five families ...
    assert set(suite_report.suites) == {
        "iwarded", "ibench", "chasebench", "dbpedia", "industrial"
    }
    # ... with at least two exact engines and two backends per family.
    for suite, engines in suite_report.engines_ok_per_suite().items():
        assert len(engines) >= 2, f"{suite}: only {sorted(engines)} succeeded"
    for suite, stores in suite_report.stores_ok_per_suite().items():
        assert len(stores) >= 2, f"{suite}: only {sorted(stores)} succeeded"
    # The per-suite store coverage above includes the proof-tree cells
    # shared across stores (store-independent by construction, labeled
    # in `detail`), so additionally require that wherever a
    # store-*dependent* (materializing) engine succeeded, at least two
    # backends actually executed — copies can't satisfy this one.
    for suite in suite_report.suites:
        executed = {
            cell.store
            for cell in suite_report.ok_cells
            if cell.suite == suite
            and cell.engine in ("datalog", "chase", "network")
        }
        if executed:
            assert len(executed) >= 2, f"{suite}: only {sorted(executed)}"
    # Sharing is only ever legal for the proof-tree engines.
    for cell in suite_report.ok_cells:
        if "shared from" in cell.detail:
            assert cell.engine in ("pwl", "ward"), cell.engine

    # Cross-engine / cross-store correctness, and no crashed cells.
    assert suite_report.disagreements == []
    assert suite_report.error_cells == []

    # Every successful cell carries the measurements the artifact
    # promises: wall time, answers, and resident-byte accounting.
    for cell in suite_report.ok_cells:
        assert cell.seconds >= 0
        assert cell.answer_digest
        assert cell.resident_bytes > 0, (cell.engine, cell.store)
        assert cell.memory
