"""repro.lint — static diagnostics for Datalog± programs.

The linter runs a registry of :mod:`passes <repro.lint.passes>` over a
parsed :class:`~repro.core.program.Program` (optionally with its facts
and a target query) and returns a :class:`ProgramDiagnostics` report of
structured :class:`Diagnostic` findings — stable code, severity,
message, and the source span of the offending construct.

Entry points:

* :func:`run_lint` — lint an already-parsed program,
* :func:`lint_source` — lint program text; a program that does not even
  parse yields a single ``E001 syntax-error`` diagnostic carrying the
  parser's position instead of an exception.

The same report surfaces everywhere programs do: cached on
:class:`~repro.api.program.CompiledProgram` (computed once per compiled
program, mirroring its ``analysis_runs`` discipline), printed by
:meth:`QueryPlan.explain() <repro.api.planner.QueryPlan>`, served by the
``lint`` op of :mod:`repro.server`, and driven from the command line by
``python -m repro lint``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..core.atoms import Atom
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.spans import Span
from .context import FactSummary, LintContext
from .diagnostics import (
    SEVERITIES,
    Diagnostic,
    LintError,
    ProgramDiagnostics,
    severity_of_code,
)
from .passes import PASSES, registered_codes

__all__ = [
    "Diagnostic",
    "FactSummary",
    "LintContext",
    "LintError",
    "PASSES",
    "ProgramDiagnostics",
    "SEVERITIES",
    "lint_source",
    "pass_invocations",
    "registered_codes",
    "run_lint",
    "severity_of_code",
]

#: Global count of individual pass executions — the observability hook
#: the caching tests read: compiling the same program twice must not
#: grow this (mirrors ``CompiledProgram.analysis_runs``).
PASS_INVOCATIONS = 0


def pass_invocations() -> int:
    """How many pass executions have happened process-wide."""
    return PASS_INVOCATIONS


Facts = Union[FactSummary, Iterable[Atom]]


def _summarize(facts: Optional[Facts]) -> Optional[FactSummary]:
    if facts is None or isinstance(facts, FactSummary):
        return facts
    return FactSummary.from_facts(facts)


def run_lint(
    program: Program,
    *,
    facts: Optional[Facts] = None,
    query: Optional[ConjunctiveQuery] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> ProgramDiagnostics:
    """Run every applicable pass over *program* and report.

    *facts* (a :class:`FactSummary` or any iterable of ground atoms,
    e.g. a :class:`~repro.core.instance.Database`) enables the
    EDB-aware passes; *query* enables the query-scoped reachability
    pass.  *select*/*ignore* are ruff-style code-prefix filters applied
    to the finished report (``select=["E"]``, ``ignore=["W2", "I"]``).
    """
    global PASS_INVOCATIONS
    ctx = LintContext(program, facts=_summarize(facts), query=query)
    findings: list[Diagnostic] = []
    executed = 0
    for lint_pass in PASSES:
        if not lint_pass.applicable(ctx):
            continue
        executed += 1
        PASS_INVOCATIONS += 1
        findings.extend(lint_pass.check(ctx))
    report = ProgramDiagnostics.collect(findings, passes_run=executed)
    return report.filter(select, ignore)


def lint_source(
    text: str,
    *,
    name: str = "",
    query: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> ProgramDiagnostics:
    """Lint program *text*; syntax errors become ``E001`` findings.

    A text that fails to tokenize or parse cannot reach the passes, so
    the report degenerates to exactly one error-severity ``E001
    syntax-error`` diagnostic positioned at the failure (``passes_run``
    stays 0).  *query*, when given, is parsed the same way.
    """
    from ..lang.parser import parse_program, parse_query

    try:
        program, database = parse_program(text, name=name)
        parsed_query = parse_query(query) if query is not None else None
    except ValueError as error:  # LexerError and ParserError both qualify
        line = getattr(error, "line", 0)
        column = getattr(error, "column", 0)
        span = getattr(error, "span", None)
        if span is None and line:
            span = Span.point(line, column or 1)
        diagnostic = Diagnostic(
            code="E001",
            name="syntax-error",
            severity="error",
            message=str(error),
            span=span,
        )
        return ProgramDiagnostics.collect([diagnostic], passes_run=0)
    return run_lint(
        program,
        facts=database,
        query=parsed_query,
        select=select,
        ignore=ignore,
    )
