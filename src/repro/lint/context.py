"""Shared, lazily-computed analysis state for the lint passes.

A :class:`LintContext` wraps one program (plus, optionally, its parsed
facts and a query) and exposes the derived structures the passes read —
tolerant schema, predicate graph, wardedness/PWL reports — each
computed at most once per run.

Tolerance is the point: the production analyses
(:meth:`repro.core.program.Program.schema`,
:class:`~repro.analysis.predicate_graph.PredicateGraph`) *raise* on an
arity-inconsistent program, but the linter's job is to report that
inconsistency as a diagnostic and keep going.  The context therefore
builds its own conflict-tolerant schema, and the graph-dependent
structures degrade to ``None`` when the schema is broken (their passes
skip rather than crash).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..analysis.piecewise import PiecewiseReport, piecewise_report
from ..analysis.predicate_graph import PredicateGraph
from ..analysis.wardedness import WardednessReport, wardedness_report
from ..core.atoms import Atom, Position
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.spans import Span
from ..core.terms import Constant
from ..reachability.digraph import DiGraph

__all__ = ["ArityUse", "FactSummary", "LintContext"]


def _constant_kind(constant: Constant) -> str:
    """``int`` or ``sym``: the two constant kinds the surface syntax has
    (quoted strings and lowercase names both parse to str values)."""
    return "int" if isinstance(constant.value, int) else "sym"


def _atom_whole(atom: Atom) -> Optional[Span]:
    return atom.span.whole if atom.span is not None else None


class ArityUse:
    """One predicate's observed arities: count and first span per arity."""

    __slots__ = ("counts", "first_span", "first_order")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.first_span: Dict[int, Optional[Span]] = {}
        self.first_order: List[int] = []  # arities in first-seen order

    def record(self, arity: int, span: Optional[Span]) -> None:
        if arity not in self.counts:
            self.counts[arity] = 0
            self.first_span[arity] = span
            self.first_order.append(arity)
        self.counts[arity] += 1


class FactSummary:
    """A compact per-predicate digest of a fact database.

    The linter never needs the facts themselves — only which predicates
    have facts, with what arities, and what constant kinds occupy each
    position.  Summarizing at parse/compile time keeps
    :class:`~repro.api.program.CompiledProgram` from pinning a copy of
    a large EDB just to lint against it.
    """

    __slots__ = ("arities", "position_kinds", "fact_count")

    def __init__(self) -> None:
        self.arities: Dict[str, ArityUse] = {}
        #: (position, kind) → span of the first fact exhibiting it.
        self.position_kinds: Dict[Tuple[Position, str], Optional[Span]] = {}
        self.fact_count = 0

    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> "FactSummary":
        summary = cls()
        for atom in facts:
            summary.fact_count += 1
            whole = _atom_whole(atom)
            summary.arities.setdefault(atom.predicate, ArityUse()).record(atom.arity, whole)
            for index, (position, term) in enumerate(atom.positions()):
                if not isinstance(term, Constant):
                    continue
                key = (position, _constant_kind(term))
                if key not in summary.position_kinds:
                    span = atom.span.arg(index) if atom.span is not None else None
                    summary.position_kinds[key] = span
        return summary

    def predicates(self) -> Set[str]:
        return set(self.arities)


class LintContext:
    """Everything one lint run shares across its passes, built lazily."""

    def __init__(
        self,
        program: Program,
        *,
        facts: Optional[FactSummary] = None,
        query: Optional[ConjunctiveQuery] = None,
    ):
        self.program = program
        self.facts = facts
        self.query = query
        self._arity_uses: Optional[Dict[str, ArityUse]] = None
        self._graph: Optional[PredicateGraph] = None
        self._graph_built = False
        self._ward: Optional[WardednessReport] = None
        self._ward_built = False
        self._pwl: Optional[PiecewiseReport] = None
        self._pwl_built = False
        self._dependency_sccs: Optional[Dict[str, int]] = None

    # -- tolerant schema ---------------------------------------------------

    @property
    def arity_uses(self) -> Dict[str, ArityUse]:
        """Predicate → observed arities, over rules *and* facts.

        Unlike :meth:`Program.schema`, conflicts do not raise — they
        are exactly what the arity pass reports.
        """
        if self._arity_uses is None:
            uses: Dict[str, ArityUse] = {}
            for tgd in self.program:
                for atom in tgd.body + tgd.head + tgd.negated:
                    uses.setdefault(atom.predicate, ArityUse()).record(
                        atom.arity, _atom_whole(atom)
                    )
            if self.facts is not None:
                for predicate, fact_use in self.facts.arities.items():
                    use = uses.setdefault(predicate, ArityUse())
                    for arity in fact_use.first_order:
                        use.record(arity, fact_use.first_span[arity])
            self._arity_uses = uses
        return self._arity_uses

    @property
    def schema_consistent(self) -> bool:
        """True iff no predicate is used with conflicting arities."""
        return all(len(use.counts) == 1 for use in self.arity_uses.values())

    # -- predicate structure ----------------------------------------------

    @property
    def idb_predicates(self) -> Set[str]:
        """Predicates derived by some rule head."""
        return self.program.head_predicates()

    @property
    def graph(self) -> Optional[PredicateGraph]:
        """``pg(Σ)``, or None when arity conflicts make it unbuildable."""
        if not self._graph_built:
            self._graph_built = True
            if self.schema_consistent:
                self._graph = PredicateGraph(self.program)
        return self._graph

    @property
    def ward_report(self) -> Optional[WardednessReport]:
        """Definition 3.1 witnesses (independent of the schema map)."""
        if not self._ward_built:
            self._ward_built = True
            if self.schema_consistent:
                self._ward = wardedness_report(self.program)
        return self._ward

    @property
    def pwl_report(self) -> Optional[PiecewiseReport]:
        """Definition 4.1 recursive-atom counts (needs the graph)."""
        if not self._pwl_built:
            self._pwl_built = True
            if self.graph is not None:
                self._pwl = piecewise_report(self.program)
        return self._pwl

    @property
    def dependency_sccs(self) -> Optional[Dict[str, int]]:
        """Predicate → SCC id over the dependency graph *including*
        negative edges — the stratifiability structure: a negated
        literal whose predicate shares an SCC with the rule's head is
        negation through recursion."""
        if self._dependency_sccs is None:
            graph: DiGraph = DiGraph()
            for use in self.arity_uses:
                graph.add_node(use)
            for tgd in self.program:
                for head in tgd.head_predicates():
                    for body in tgd.body_predicates():
                        graph.add_edge(body, head)
                    for negated in tgd.negated_predicates():
                        graph.add_edge(negated, head)
            scc_of: Dict[str, int] = {}
            for scc_id, component in enumerate(graph.sccs()):
                for predicate in component:
                    scc_of[predicate] = scc_id
            self._dependency_sccs = scc_of
        return self._dependency_sccs
