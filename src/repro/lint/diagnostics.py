"""The diagnostic model: structured findings with stable codes.

A :class:`Diagnostic` is one finding of one lint pass: a stable code
(``E101``), a short kebab-case name (``unsafe-rule``), a severity tier
(``error`` / ``warning`` / ``info`` — the code's first letter mirrors
it), a human-readable message, and — when the program came from source
text — a :class:`~repro.core.spans.Span` pointing at the offending
construct.

A :class:`ProgramDiagnostics` is the immutable report of one lint run:
ordered, filterable by code prefix (ruff-style ``--select E`` /
``--ignore W2``), and renderable as text lines, a one-line summary
(the planner's ``lint:`` explain line), or a JSON payload (CLI
``--format json``, the server's ``lint`` op).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional, Sequence

from ..core.spans import Span

__all__ = [
    "Diagnostic",
    "LintError",
    "ProgramDiagnostics",
    "SEVERITIES",
    "severity_of_code",
]

#: Severity tiers, most severe first.  ``--strict`` promotes warnings
#: to failures; ``info`` findings never fail a build.
SEVERITIES = ("error", "warning", "info")

_PREFIX_SEVERITY = {"E": "error", "W": "warning", "I": "info"}


def severity_of_code(code: str) -> str:
    """The severity a code's first letter encodes (``E``/``W``/``I``)."""
    try:
        return _PREFIX_SEVERITY[code[0]]
    except (KeyError, IndexError):
        raise ValueError(
            f"diagnostic code {code!r} must start with one of "
            f"{', '.join(_PREFIX_SEVERITY)}"
        ) from None


def _matches(code: str, selectors: Sequence[str]) -> bool:
    """Ruff-style prefix matching: ``E`` hits every error code,
    ``W2`` every performance warning, ``E101`` exactly one."""
    return any(code.startswith(selector) for selector in selectors)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, severity, message, source span."""

    code: str
    name: str
    severity: str
    message: str
    span: Optional[Span] = field(default=None, compare=False)
    rule_index: Optional[int] = None
    predicate: Optional[str] = None

    @property
    def location(self) -> str:
        """``line:column`` of the span start, or ``-`` when spanless."""
        return self.span.location if self.span is not None else "-"

    def render(self, path: str = "") -> str:
        """The conventional one-line rendering, optionally path-prefixed."""
        prefix = f"{path}:" if path else ""
        return f"{prefix}{self.location} {self.code} {self.name}: {self.message}"

    def as_dict(self) -> dict:
        """A JSON-ready rendering (CLI ``--format json``, server op)."""
        payload = {
            "code": self.code,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            payload["line"] = self.span.line
            payload["column"] = self.span.column
            payload["end_line"] = self.span.end_line
            payload["end_column"] = self.span.end_column
        if self.rule_index is not None:
            payload["rule"] = self.rule_index
        if self.predicate is not None:
            payload["predicate"] = self.predicate
        return payload

    def __str__(self) -> str:
        return self.render()


def _sort_key(diagnostic: Diagnostic) -> tuple:
    span = diagnostic.span
    if span is None:
        # Spanless findings (programmatically built rules) sort last,
        # ordered by code so the report stays deterministic.
        return (1, 0, 0, diagnostic.code, diagnostic.message)
    return (0, span.line, span.column, diagnostic.code, diagnostic.message)


@dataclass(frozen=True)
class ProgramDiagnostics:
    """The immutable report of one lint run over one program."""

    diagnostics: tuple[Diagnostic, ...] = ()
    #: How many registered passes actually executed to produce this
    #: report (mirrors ``CompiledProgram.analysis_runs`` testability:
    #: a cached report re-served must not grow this).
    passes_run: int = 0

    @classmethod
    def collect(cls, findings: Iterable[Diagnostic], passes_run: int = 0) -> "ProgramDiagnostics":
        """Sort findings into source order (spanless last) and freeze."""
        ordered = tuple(sorted(findings, key=_sort_key))
        return cls(ordered, passes_run=passes_run)

    # -- container interface ----------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # -- severity views ----------------------------------------------------

    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "info")

    def counts(self) -> dict:
        """``{"error": n, "warning": n, "info": n}`` (always all keys)."""
        result = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            result[diagnostic.severity] += 1
        return result

    def codes(self) -> tuple[str, ...]:
        """The distinct codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def fails(self, strict: bool = False) -> bool:
        """Whether this report fails a build: errors always, warnings
        under ``strict``; infos never."""
        if any(d.severity == "error" for d in self.diagnostics):
            return True
        return strict and any(d.severity == "warning" for d in self.diagnostics)

    # -- filtering ---------------------------------------------------------

    def filter(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> "ProgramDiagnostics":
        """Keep codes matching a ``select`` prefix (all when None/empty),
        then drop codes matching an ``ignore`` prefix."""
        kept = self.diagnostics
        if select:
            kept = tuple(d for d in kept if _matches(d.code, select))
        if ignore:
            kept = tuple(d for d in kept if not _matches(d.code, ignore))
        if kept == self.diagnostics:
            return self
        return replace(self, diagnostics=kept)

    # -- renderings --------------------------------------------------------

    def summary(self) -> str:
        """One stable line: ``clean`` or counts plus the codes present.

        This is the planner's ``lint:`` explain line.
        """
        if not self.diagnostics:
            return "clean"
        counts = self.counts()
        parts = [f"{counts[severity]} {severity}(s)" for severity in SEVERITIES if counts[severity]]
        by_code: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            by_code[diagnostic.code] = by_code.get(diagnostic.code, 0) + 1
        codes = ", ".join(
            code if count == 1 else f"{code} ×{count}" for code, count in sorted(by_code.items())
        )
        return f"{', '.join(parts)} — {codes}"

    def render(self, path: str = "") -> list[str]:
        """One line per finding, in source order."""
        return [diagnostic.render(path) for diagnostic in self.diagnostics]

    def as_payload(self) -> dict:
        """The JSON payload shared by the CLI and the server protocol."""
        counts = self.counts()
        return {
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "errors": counts["error"],
            "warnings": counts["warning"],
            "infos": counts["info"],
            "summary": self.summary(),
        }


class LintError(ValueError):
    """A program rejected for error-severity diagnostics.

    Raised by the session layer before planning a query against a
    program whose lint report contains errors — the static analogue of
    failing mid-fixpoint, with every finding and its source location in
    the message.  ``diagnostics`` carries the error-severity findings.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic], name: str = ""):
        label = f" {name!r}" if name else ""
        lines = "\n".join(f"  {d.render()}" for d in diagnostics)
        super().__init__(
            f"program{label} has {len(diagnostics)} error-severity "
            f"diagnostic(s):\n{lines}"
        )
        self.diagnostics = tuple(diagnostics)
