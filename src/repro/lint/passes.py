"""The registered diagnostic passes.

Each pass is a generator over a :class:`~repro.lint.context.LintContext`
yielding :class:`~repro.lint.diagnostics.Diagnostic` records.  Codes are
stable API: scripts filter on them (``--select``/``--ignore``), tests
pin them, and ``docs/LINT.md`` catalogues them — never renumber.

Two tiers (the code's hundreds digit):

* ``x1xx`` **correctness** — the program means something other than what
  was written: unsafe negation (E101), arity conflicts (E102), negation
  through recursion (E103), a blurred EDB/IDB split (W104), mixed
  constant kinds in one position (W105), probable typos (I106/I107),
  duplicated rules (I108);
* ``x2xx`` **performance / fragment** — the program is outside the
  paper's space-efficient fragments or defeats an optimization:
  non-warded (W201) and non-PWL (W202) rules with the offending
  variables named, cartesian-product bodies (W203), demand-opaque rules
  that defeat magic rewriting (W204), predicates unreachable from the
  query (W205), dead derived predicates (I206), and programs outside
  the maintainable fragment (I207).

Severity is the code's first letter: ``E`` error, ``W`` warning, ``I``
info.  ``E001 syntax-error`` (a program that does not parse) is issued
by :func:`repro.lint.lint_source`, not by a pass — a parse failure
preempts every pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.atoms import Atom
from ..core.spans import Span
from ..core.terms import Constant, Variable
from ..core.tgd import TGD
from .context import LintContext, _constant_kind
from .diagnostics import Diagnostic, severity_of_code

__all__ = ["PASSES", "LintPass", "lint_pass", "registered_codes"]


@dataclass(frozen=True)
class LintPass:
    """One registered pass: identity plus the check function."""

    code: str
    name: str
    severity: str
    tier: str
    needs_query: bool
    check: Callable[[LintContext], Iterable[Diagnostic]]
    summary: str

    def applicable(self, ctx: LintContext) -> bool:
        return not self.needs_query or ctx.query is not None


#: The registry, in code order — the order passes run and report.
PASSES: List[LintPass] = []


def lint_pass(code: str, name: str, tier: str, *, needs_query: bool = False) -> Callable:
    """Register a pass; severity derives from the code's first letter."""

    def register(check: Callable[[LintContext], Iterable[Diagnostic]]):
        summary = (check.__doc__ or "").strip().splitlines()[0]
        PASSES.append(
            LintPass(
                code=code,
                name=name,
                severity=severity_of_code(code),
                tier=tier,
                needs_query=needs_query,
                check=check,
                summary=summary,
            )
        )
        PASSES.sort(key=lambda p: p.code)
        return check

    return register


def registered_codes() -> Tuple[Tuple[str, str, str, str], ...]:
    """(code, name, severity, summary) for every registered pass —
    the CLI help text and the docs catalogue read this."""
    return tuple((p.code, p.name, p.severity, p.summary) for p in PASSES)


# -- span helpers ----------------------------------------------------------


def _whole(atom: Atom) -> Optional[Span]:
    return atom.span.whole if atom.span is not None else None


def _rule_span(tgd: TGD) -> Optional[Span]:
    return tgd.span


def _head_span(tgd: TGD) -> Optional[Span]:
    return _whole(tgd.head[0]) or tgd.span


def _variable_span(tgd: TGD, variable: Variable) -> Optional[Span]:
    """The span of *variable*'s first occurrence in the rule."""
    for atom in tgd.head + tgd.body + tgd.negated:
        if atom.span is None:
            continue
        for index, term in enumerate(atom.args):
            if term == variable:
                return atom.span.arg(index)
    return tgd.span


def _rules(ctx: LintContext) -> Iterator[Tuple[int, TGD]]:
    return enumerate(ctx.program)


def _names(variables) -> str:
    return ", ".join(sorted(v.name for v in variables))


# -- correctness tier ------------------------------------------------------


@lint_pass("E101", "unsafe-rule", "correctness")
def check_unsafe_rules(ctx: LintContext) -> Iterator[Diagnostic]:
    """Negation safety: every variable of a negated literal or of the
    head of a negated rule must be bound by a positive body atom."""
    for index, tgd in _rules(ctx):
        if not tgd.negated:
            continue
        bound = tgd.body_variables()
        for atom in tgd.negated:
            for variable in sorted(atom.variables() - bound, key=lambda v: v.name):
                yield Diagnostic(
                    code="E101",
                    name="unsafe-rule",
                    severity="error",
                    message=(
                        f"variable {variable.name} of negated literal "
                        f"'not {atom}' is not bound by any positive body "
                        "atom — negation can only filter values the "
                        "positive body produced"
                    ),
                    span=_variable_span(tgd, variable),
                    rule_index=index,
                    predicate=atom.predicate,
                )
        for variable in sorted(tgd.head_variables() - bound, key=lambda v: v.name):
            yield Diagnostic(
                code="E101",
                name="unsafe-rule",
                severity="error",
                message=(
                    f"head variable {variable.name} of a rule with "
                    "negation is not bound by any positive body atom — "
                    "existential invention under negation is unsafe"
                ),
                span=_variable_span(tgd, variable),
                rule_index=index,
                predicate=tgd.head[0].predicate,
            )


@lint_pass("E102", "arity-mismatch", "correctness")
def check_arity_conflicts(ctx: LintContext) -> Iterator[Diagnostic]:
    """Every use of a predicate — rules and facts — must agree on arity."""
    for predicate in sorted(ctx.arity_uses):
        use = ctx.arity_uses[predicate]
        if len(use.counts) == 1:
            continue
        baseline = use.first_order[0]
        for arity in use.first_order[1:]:
            yield Diagnostic(
                code="E102",
                name="arity-mismatch",
                severity="error",
                message=f"predicate {predicate!r} used with arities {baseline} and {arity}",
                span=use.first_span[arity],
                predicate=predicate,
            )


@lint_pass("E103", "negation-in-recursion", "correctness")
def check_negation_in_recursion(ctx: LintContext) -> Iterator[Diagnostic]:
    """A negated literal inside its own recursive component makes the
    program non-stratifiable: no layering evaluates the negation after
    its target is complete."""
    scc_of = ctx.dependency_sccs
    for index, tgd in _rules(ctx):
        for atom in tgd.negated:
            if any(
                scc_of.get(atom.predicate) == scc_of.get(head) for head in tgd.head_predicates()
            ):
                yield Diagnostic(
                    code="E103",
                    name="negation-in-recursion",
                    severity="error",
                    message=(
                        f"negated literal 'not {atom}' depends on the "
                        "rule's own recursive component — the program "
                        "is not stratifiable (negation through "
                        "recursion)"
                    ),
                    span=_whole(atom) or tgd.span,
                    rule_index=index,
                    predicate=atom.predicate,
                )


@lint_pass("W104", "edb-predicate-in-head", "correctness")
def check_edb_in_head(ctx: LintContext) -> Iterator[Diagnostic]:
    """A predicate given by explicit facts should not also be derived:
    it blurs the extensional/intensional split (Section 6) that demand
    rewriting and incremental maintenance key on."""
    if ctx.facts is None:
        return
    fact_predicates = ctx.facts.predicates()
    reported: set = set()
    for index, tgd in _rules(ctx):
        for atom in tgd.head:
            predicate = atom.predicate
            if predicate not in fact_predicates or predicate in reported:
                continue
            reported.add(predicate)
            yield Diagnostic(
                code="W104",
                name="edb-predicate-in-head",
                severity="warning",
                message=(
                    f"predicate {predicate!r} has explicit facts and is "
                    "also derived by this rule head — keep extensional "
                    "and derived predicates separate (e.g. copy the "
                    "facts through a base rule)"
                ),
                span=_whole(atom) or tgd.span,
                rule_index=index,
                predicate=predicate,
            )


@lint_pass("W105", "type-conflict", "correctness")
def check_type_conflicts(ctx: LintContext) -> Iterator[Diagnostic]:
    """One position should not hold both integer and symbol constants —
    the join semantics are well-defined but almost always a typo."""
    kinds: Dict = {}
    if ctx.facts is not None:
        for (position, kind), span in ctx.facts.position_kinds.items():
            kinds.setdefault(position, {}).setdefault(kind, span)
    for tgd in ctx.program:
        for atom in tgd.body + tgd.head + tgd.negated:
            for index, (position, term) in enumerate(atom.positions()):
                if not isinstance(term, Constant):
                    continue
                span = atom.span.arg(index) if atom.span is not None else None
                kinds.setdefault(position, {}).setdefault(_constant_kind(term), span)
    for position in sorted(kinds, key=lambda p: (p.predicate, p.index)):
        seen = kinds[position]
        if len(seen) < 2:
            continue
        span = seen.get("int") or seen.get("sym")
        yield Diagnostic(
            code="W105",
            name="type-conflict",
            severity="warning",
            message=(
                f"position {position} holds both integer and symbol "
                "constants across the program/facts — values of "
                "different kinds never join"
            ),
            span=span,
            predicate=position.predicate,
        )


@lint_pass("I106", "singleton-variable", "correctness")
def check_singleton_variables(ctx: LintContext) -> Iterator[Diagnostic]:
    """A named variable occurring exactly once in a rule is often a
    typo; write ``_`` for intentional don't-cares."""
    for index, tgd in _rules(ctx):
        occurrences: Dict[Variable, int] = {}
        for atom in tgd.body + tgd.head + tgd.negated:
            for term in atom.args:
                if isinstance(term, Variable):
                    occurrences[term] = occurrences.get(term, 0) + 1
        for variable in sorted(occurrences, key=lambda v: v.name):
            if occurrences[variable] != 1:
                continue
            if variable.name.startswith("_"):
                continue  # parser-generated don't-cares
            if variable in tgd.existential_variables():
                continue  # head-only variables are I107's finding
            yield Diagnostic(
                code="I106",
                name="singleton-variable",
                severity="info",
                message=(
                    f"variable {variable.name} occurs only once in this "
                    "rule — a projection is fine, but use '_' if the "
                    "value is intentionally unused"
                ),
                span=_variable_span(tgd, variable),
                rule_index=index,
            )


@lint_pass("I107", "existential-head", "correctness")
def check_existential_heads(ctx: LintContext) -> Iterator[Diagnostic]:
    """Head variables unbound in the body are read as existentially
    quantified (Datalog∃) — intended in ontological rules, a silent
    typo in plain Datalog."""
    for index, tgd in _rules(ctx):
        if tgd.negated:
            continue  # under negation this is E101, not an existential
        existentials = tgd.existential_variables()
        if not existentials:
            continue
        first = min(existentials, key=lambda v: v.name)
        yield Diagnostic(
            code="I107",
            name="existential-head",
            severity="info",
            message=(
                f"head variable(s) {_names(existentials)} are not bound "
                "in the body and are read as existentially quantified — "
                "bind them in the body if a typo"
            ),
            span=_variable_span(tgd, first),
            rule_index=index,
            predicate=tgd.head[0].predicate,
        )


@lint_pass("I108", "duplicate-rule", "correctness")
def check_duplicate_rules(ctx: LintContext) -> Iterator[Diagnostic]:
    """Byte-identical rules add evaluation work but no derivations."""
    seen: Dict[TGD, int] = {}
    for index, tgd in _rules(ctx):
        first = seen.setdefault(tgd, index)
        if first == index:
            continue
        yield Diagnostic(
            code="I108",
            name="duplicate-rule",
            severity="info",
            message=f"rule #{index + 1} duplicates rule #{first + 1} ({tgd}) — remove one",
            span=_rule_span(tgd),
            rule_index=index,
        )


# -- performance / fragment tier ------------------------------------------


@lint_pass("W201", "non-warded-rule", "fragment")
def check_wardedness(ctx: LintContext) -> Iterator[Diagnostic]:
    """Rules violating Definition 3.1, with the dangerous variables
    named: outside WARD only the chase remains, with no termination
    guarantee (Theorem 5.1)."""
    report = ctx.ward_report
    if report is None:
        return
    for info in report.violations():
        try:
            index = ctx.program.tgds.index(info.tgd)
        except ValueError:
            index = None
        dangerous = _names(info.roles.dangerous)
        yield Diagnostic(
            code="W201",
            name="non-warded-rule",
            severity="warning",
            message=(
                "rule is not warded: dangerous variable(s) "
                f"{{{dangerous}}} have no ward — {info.failure}; outside "
                "WARD the planner falls back to the chase, which may "
                "not terminate"
            ),
            span=_rule_span(info.tgd),
            rule_index=index,
            predicate=info.tgd.head[0].predicate,
        )


@lint_pass("W202", "non-pwl-rule", "fragment")
def check_piecewise_linearity(ctx: LintContext) -> Iterator[Diagnostic]:
    """Rules with two or more mutually recursive body atoms break
    piece-wise linearity (Definition 4.1) and forfeit the
    space-efficient PWL engine."""
    report = ctx.pwl_report
    if report is None:
        return
    for index, (tgd, recursive) in enumerate(report.per_tgd):
        if len(recursive) <= 1:
            continue
        atoms = ", ".join(str(atom) for atom in recursive)
        yield Diagnostic(
            code="W202",
            name="non-pwl-rule",
            severity="warning",
            message=(
                f"{len(recursive)} mutually recursive body atoms "
                f"({atoms}) — piece-wise linearity admits at most one; "
                "consider a linear reformulation (seed + step rules)"
            ),
            span=_whole(recursive[0]) or _rule_span(tgd),
            rule_index=index,
            predicate=tgd.head[0].predicate,
        )


@lint_pass("W203", "cartesian-product", "fragment")
def check_cartesian_products(ctx: LintContext) -> Iterator[Diagnostic]:
    """A body whose atoms split into variable-disjoint groups joins as
    a cross product — every pair of group matches is enumerated."""
    for index, tgd in _rules(ctx):
        groups: List[Tuple[set, List[Atom]]] = []
        for atom in tgd.body:
            variables = atom.variables()
            if not variables:
                continue  # ground atoms are filters, not join inputs
            merged = [g for g in groups if g[0] & variables]
            for g in merged:
                groups.remove(g)
            union = set(variables)
            members = [atom]
            for g in merged:
                union |= g[0]
                members = g[1] + members
            groups.append((union, members))
        if len(groups) < 2:
            continue
        rendered = " × ".join(
            "{" + ", ".join(str(a) for a in members) + "}" for _, members in groups
        )
        yield Diagnostic(
            code="W203",
            name="cartesian-product",
            severity="warning",
            message=(
                f"body joins {len(groups)} variable-disjoint atom "
                f"groups ({rendered}) — a cartesian product; connect "
                "them through shared variables or split the rule"
            ),
            span=_rule_span(tgd),
            rule_index=index,
        )


@lint_pass("W204", "demand-opaque-rule", "fragment")
def check_demand_opacity(ctx: LintContext) -> Iterator[Diagnostic]:
    """An intensional body atom sharing no variable with the head
    cannot receive query bindings: magic-set rewriting will demand its
    entire fixpoint regardless of the binding pattern."""
    idb = ctx.idb_predicates
    for index, tgd in _rules(ctx):
        head_variables = tgd.head_variables()
        for atom in tgd.body:
            if atom.predicate not in idb:
                continue
            variables = atom.variables()
            if not variables or variables & head_variables:
                continue
            yield Diagnostic(
                code="W204",
                name="demand-opaque-rule",
                severity="warning",
                message=(
                    f"intensional body atom {atom} shares no variable "
                    "with the head — bound query arguments cannot "
                    "propagate into it, so demand (magic-set) rewriting "
                    "re-derives its whole fixpoint"
                ),
                span=_whole(atom) or _rule_span(tgd),
                rule_index=index,
                predicate=atom.predicate,
            )


@lint_pass("W205", "unreachable-predicate", "fragment", needs_query=True)
def check_unreachable_from_query(ctx: LintContext) -> Iterator[Diagnostic]:
    """Rules whose head cannot feed the query are never exercised by
    it — dead weight for this workload (query-scoped pass)."""
    query = ctx.query
    assert query is not None
    graph: Dict[str, set] = {}
    for tgd in ctx.program:
        for head in tgd.head_predicates():
            graph.setdefault(head, set()).update(tgd.body_predicates())
            graph.setdefault(head, set()).update(tgd.negated_predicates())
    needed: set = set()
    frontier = [atom.predicate for atom in query.atoms]
    while frontier:
        predicate = frontier.pop()
        if predicate in needed:
            continue
        needed.add(predicate)
        frontier.extend(graph.get(predicate, ()))
    reported: set = set()
    for index, tgd in _rules(ctx):
        for atom in tgd.head:
            predicate = atom.predicate
            if predicate in needed or predicate in reported:
                continue
            reported.add(predicate)
            yield Diagnostic(
                code="W205",
                name="unreachable-predicate",
                severity="warning",
                message=(
                    f"predicate {predicate!r} cannot feed the query "
                    f"{query} — its rules run (and materialize facts) "
                    "without contributing an answer"
                ),
                span=_whole(atom) or tgd.span,
                rule_index=index,
                predicate=predicate,
            )


@lint_pass("I206", "dead-predicate", "fragment")
def check_dead_predicates(ctx: LintContext) -> Iterator[Diagnostic]:
    """Derived predicates never read by any rule body (or the query,
    when given) are outputs at best — worth a look when unexpected."""
    read: set = set()
    for tgd in ctx.program:
        read.update(tgd.body_predicates())
        read.update(tgd.negated_predicates())
    if ctx.query is not None:
        read.update(atom.predicate for atom in ctx.query.atoms)
        reading = "any rule body or the query"
    else:
        reading = "any rule body"
    reported: set = set()
    for index, tgd in _rules(ctx):
        for atom in tgd.head:
            predicate = atom.predicate
            if predicate in read or predicate in reported:
                continue
            reported.add(predicate)
            yield Diagnostic(
                code="I206",
                name="dead-predicate",
                severity="info",
                message=(
                    f"derived predicate {predicate!r} is never read by "
                    f"{reading} — fine as an output, dead weight "
                    "otherwise"
                ),
                span=_whole(atom) or tgd.span,
                rule_index=index,
                predicate=predicate,
            )


@lint_pass("I207", "unmaintainable-program", "fragment")
def check_maintainability(ctx: LintContext) -> Iterator[Diagnostic]:
    """Existential rules put the program outside the maintainable
    fragment: Session.apply recomputes cached fixpoints on EDB change
    instead of upgrading them incrementally."""
    for index, tgd in _rules(ctx):
        if tgd.is_full():
            continue
        yield Diagnostic(
            code="I207",
            name="unmaintainable-program",
            severity="info",
            message=(
                "existential rule invents labeled nulls whose "
                "derivations the store does not record — cached "
                "fixpoints of this program are recomputed (not "
                "incrementally maintained) on EDB change"
            ),
            span=_rule_span(tgd),
            rule_index=index,
            predicate=tgd.head[0].predicate,
        )
        return  # one finding describes the whole program
