"""Dynamic (Dyn-FO-style) maintenance of reachability-shaped reasoning.

Section 7, future-work item (3): "reachability in directed graphs is
known to be in the dynamic parallel complexity class Dyn-FO [Patnaik &
Immerman 1997; Datta et al. 2015].  This means that by maintaining
suitable auxiliary data structures when updating a graph, reachability
testing can actually be done in FO, and thus in SQL.  We plan to
analyze whether reasoning under piece-wise linear warded sets of TGDs,
or relevant subclasses thereof, can be shown to be in Dyn-FO."

This subpackage implements the ingredient the plan rests on and its
application to reasoning:

* :mod:`reachability <repro.dynfo.reachability>` — an incrementally
  maintained transitive-closure relation whose per-insertion update is
  a single quantifier-free FO formula over the maintained auxiliary
  relation (the Patnaik–Immerman insertion rule), plus a deletion-capable
  variant ([SIM] — recompute-based, see the module docstring);
* :mod:`reasoner <repro.dynfo.reasoner>` — an incremental
  certain-answer view for transitive-closure-shaped WARD ∩ PWL
  programs: database fact insertions become index updates, and every
  ``certain(c̄)`` check is a lookup instead of a fresh proof search.
"""

from .reachability import DynamicReachability, IncrementalReachability
from .reasoner import ClosurePattern, IncrementalReasoner, closure_pattern

__all__ = [
    "IncrementalReachability",
    "DynamicReachability",
    "IncrementalReasoner",
    "ClosurePattern",
    "closure_pattern",
]
