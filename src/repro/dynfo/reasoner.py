"""Incremental certain answers for closure-shaped WARD ∩ PWL programs.

The Dyn-FO plan of Section 7(3) concerns "relevant subclasses" of
piece-wise linear warded reasoning.  The canonical such subclass is the
transitive-closure shape — the very pattern the paper's Section 1.2
uses to motivate linearization:

    t(X, Y) :- e(X, Y).
    t(X, Z) :- e(X, Y), t(Y, Z).      (or the left-linear mirror)

:func:`closure_pattern` recognizes that shape (after trying the
Section 1.2 linearization, so the doubling variant qualifies too), and
:class:`IncrementalReasoner` maintains ``cert(q, D, Σ)`` for the atomic
query ``q(X, Y) :- t(X, Y)`` under **fact insertions**: each insert is
one FO-rule update of the auxiliary closure relation
(:class:`repro.dynfo.reachability.DynamicReachability`), and each
certainty check is a lookup — no chase, no proof search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from ..analysis.linearization import linearize
from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..core.tgd import TGD
from .reachability import DynamicReachability

__all__ = ["ClosurePattern", "closure_pattern", "IncrementalReasoner"]


@dataclass(frozen=True)
class ClosurePattern:
    """A recognized transitive-closure program shape."""

    edge_predicate: str
    closure_predicate: str
    orientation: str          # "right" (e, t) or "left" (t, e)
    linearized: bool          # True if Section 1.2 elimination was needed


def _is_base_rule(tgd: TGD) -> Optional[Tuple[str, str]]:
    """Match ``t(X, Y) :- e(X, Y)`` with distinct variables X, Y."""
    if len(tgd.body) != 1 or len(tgd.head) != 1:
        return None
    body, head = tgd.body[0], tgd.head[0]
    if body.arity != 2 or head.arity != 2:
        return None
    if not all(isinstance(t, Variable) for t in body.args + head.args):
        return None
    if body.args != head.args or body.args[0] == body.args[1]:
        return None
    return body.predicate, head.predicate


def _is_step_rule(tgd: TGD, edge: str, closure: str) -> Optional[str]:
    """Match the linear composition step; returns the orientation."""
    if len(tgd.body) != 2 or len(tgd.head) != 1:
        return None
    head = tgd.head[0]
    if head.predicate != closure or head.arity != 2:
        return None
    by_predicate = {atom.predicate: atom for atom in tgd.body}
    if set(by_predicate) != {edge, closure}:
        return None
    e_atom, t_atom = by_predicate[edge], by_predicate[closure]
    if e_atom.arity != 2 or t_atom.arity != 2:
        return None
    terms = list(e_atom.args) + list(t_atom.args) + list(head.args)
    if not all(isinstance(t, Variable) for t in terms):
        return None
    x, z = head.args
    # right-linear: e(X, Y), t(Y, Z) → t(X, Z)
    if e_atom.args[0] == x and e_atom.args[1] == t_atom.args[0] \
            and t_atom.args[1] == z and len({x, e_atom.args[1], z}) == 3:
        return "right"
    # left-linear: t(X, Y), e(Y, Z) → t(X, Z)
    if t_atom.args[0] == x and t_atom.args[1] == e_atom.args[0] \
            and e_atom.args[1] == z and len({x, t_atom.args[1], z}) == 3:
        return "left"
    return None


def closure_pattern(program: Program) -> Optional[ClosurePattern]:
    """Recognize a two-rule transitive-closure program.

    The doubling form ``t(X,Z) :- t(X,Y), t(Y,Z)`` is accepted after
    passing it through the Section 1.2 elimination procedure.
    """
    for candidate, linearized in ((program, False),
                                  (linearize(program).program, True)):
        pattern = _match_closure(candidate)
        if pattern is not None:
            return ClosurePattern(
                edge_predicate=pattern[0],
                closure_predicate=pattern[1],
                orientation=pattern[2],
                linearized=linearized,
            )
    return None


def _match_closure(program: Program) -> Optional[Tuple[str, str, str]]:
    if len(program) != 2:
        return None
    bases = [(i, _is_base_rule(tgd)) for i, tgd in enumerate(program)]
    for index, base in bases:
        if base is None:
            continue
        edge, closure = base
        if edge == closure:
            continue
        other = program[1 - index]
        orientation = _is_step_rule(other, edge, closure)
        if orientation is not None:
            return edge, closure, orientation
    return None


class IncrementalReasoner:
    """Maintains cert(q, D, Σ) for a closure program under insertions.

    ``q`` is the atomic query over the closure predicate.  Facts of the
    *edge* predicate update the auxiliary relation via the FO rule;
    facts of any other extensional predicate are accepted and ignored
    (they cannot affect the closure); facts of the closure predicate
    are rejected — seeding the IDB directly is outside the maintained
    shape.
    """

    def __init__(
        self,
        program: Program,
        database: Optional[Database] = None,
    ):
        pattern = closure_pattern(program)
        if pattern is None:
            raise ValueError(
                "program is not a recognizable transitive-closure shape; "
                "the incremental reasoner maintains exactly that subclass "
                "(Section 7, future work (3))"
            )
        self.pattern = pattern
        self.program = program
        self.index = DynamicReachability()
        if database is not None:
            for atom in sorted(database, key=str):
                self.insert(atom)

    # -- updates -----------------------------------------------------------

    def insert(self, fact: Atom) -> int:
        """Apply one fact insertion; returns new closure pairs."""
        if fact.predicate == self.pattern.closure_predicate:
            raise ValueError(
                "cannot seed the closure predicate "
                f"{self.pattern.closure_predicate!r} directly"
            )
        if fact.predicate != self.pattern.edge_predicate:
            return 0
        if fact.arity != 2:
            raise ValueError(f"edge facts must be binary, got {fact}")
        return self.index.insert_edge(fact.args[0], fact.args[1])

    def insert_edge(self, source: Constant, target: Constant) -> int:
        return self.index.insert_edge(source, target)

    def delete_edge(self, source: Constant, target: Constant) -> None:
        self.index.delete_edge(source, target)

    # -- queries ------------------------------------------------------------

    def certain(self, answer: Tuple[Constant, Constant]) -> bool:
        """Is ``closure(a, b)`` certain?  A lookup, not a proof search."""
        return self.index.reaches_strict(answer[0], answer[1])

    def answers(self) -> Set[Tuple[Constant, Constant]]:
        """The full maintained certain-answer relation."""
        result: Set[Tuple[Constant, Constant]] = set()
        for a in self.index.nodes():
            for b in self.index.nodes():
                if self.index.reaches_strict(a, b):
                    result.add((a, b))
        return result

    def query(self) -> ConjunctiveQuery:
        """The maintained query, for recompute cross-checks."""
        x, y = Variable("X"), Variable("Y")
        return ConjunctiveQuery(
            (x, y),
            (Atom(self.pattern.closure_predicate, (x, y)),),
        )
