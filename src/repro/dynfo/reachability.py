"""Incrementally maintained reachability (the Dyn-FO ingredient).

:class:`IncrementalReachability` maintains the reflexive-transitive
closure of a growing edge set.  The auxiliary relation is the closure
itself, and the per-insertion update is the classic quantifier-free
first-order rule of Patnaik & Immerman:

    REACH'(a, b)  ≡  REACH(a, b) ∨ (REACH(a, u) ∧ REACH(v, b))

for the inserted edge (u, v).  Evaluating this formula is one nested
loop over the maintained sets — no recursion, no fixpoint — which is
precisely what "reachability testing can be done in FO, and thus in
SQL" means: the update is expressible as a single SQL ``INSERT ...
SELECT`` over the auxiliary table.  Queries are O(1) lookups.

The rule is correct on arbitrary digraphs (not only DAGs): any path
using the new edge decomposes at its first and last use into old-graph
segments a ⇝ u and v ⇝ b.

:class:`DynamicReachability` adds deletions.  Fully FO deletion for
general digraphs is the Datta-Kulkarni-Mukherjee-Schwentick-Zeume 2015
result, whose matrix-rank machinery is far outside this reproduction's
scope; the deletion path here recomputes the closure from the
maintained edge set (**[SIM]**, documented in DESIGN.md §5) so the
*interface* and the insertion fast path stay faithful while answers
remain exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Set, Tuple

__all__ = ["IncrementalReachability", "DynamicReachability"]

Node = Hashable


@dataclass
class UpdateStats:
    """Work counters: the E10 benchmark's observable."""

    insertions: int = 0
    noop_insertions: int = 0         # edge already implied: zero new pairs
    pairs_examined: int = 0          # (a, b) candidates of the FO rule
    pairs_added: int = 0             # new closure entries
    deletions: int = 0
    recomputes: int = 0


class IncrementalReachability:
    """Reflexive-transitive closure under edge insertions (Dyn-FO rule)."""

    def __init__(self) -> None:
        # forward[u] = {v : u ⇝ v};  backward[v] = {u : u ⇝ v}.
        self._forward: Dict[Node, Set[Node]] = {}
        self._backward: Dict[Node, Set[Node]] = {}
        self._successors: Dict[Node, Set[Node]] = {}
        self.stats = UpdateStats()

    # -- membership -----------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node not in self._forward:
            self._forward[node] = {node}
            self._backward[node] = {node}
            self._successors[node] = set()

    def __contains__(self, node: Node) -> bool:
        return node in self._forward

    def nodes(self) -> Iterable[Node]:
        return iter(self._forward)

    def closure_size(self) -> int:
        """Number of maintained (a, b) closure pairs (incl. reflexive)."""
        return sum(len(targets) for targets in self._forward.values())

    # -- updates ---------------------------------------------------------------

    def insert_edge(self, u: Node, v: Node) -> int:
        """Insert (u, v); returns the number of new closure pairs.

        One evaluation of the FO update rule: the new pairs are exactly
        {(a, b) : a ⇝ u and v ⇝ b and not yet a ⇝ b}.
        """
        self.add_node(u)
        self.add_node(v)
        self._successors[u].add(v)
        self.stats.insertions += 1
        if v in self._forward[u]:
            self.stats.noop_insertions += 1
            return 0
        added = 0
        ancestors = tuple(self._backward[u])
        descendants = tuple(self._forward[v])
        for a in ancestors:
            forward_a = self._forward[a]
            for b in descendants:
                self.stats.pairs_examined += 1
                if b not in forward_a:
                    forward_a.add(b)
                    self._backward[b].add(a)
                    added += 1
        self.stats.pairs_added += added
        return added

    # -- queries ----------------------------------------------------------------

    def reaches(self, a: Node, b: Node) -> bool:
        """Reflexive reachability a ⇝ b — an O(1) lookup."""
        return b in self._forward.get(a, ())

    def reaches_strict(self, a: Node, b: Node) -> bool:
        """Path of length ≥ 1 (what a non-reflexive closure rule derives)."""
        return any(
            self.reaches(successor, b)
            for successor in self._successors.get(a, ())
        )

    def descendants(self, a: Node) -> Set[Node]:
        return set(self._forward.get(a, ()))


class DynamicReachability(IncrementalReachability):
    """Insertions via the FO rule; deletions via recompute (**[SIM]**)."""

    def __init__(self) -> None:
        super().__init__()
        self._edges: Set[Tuple[Node, Node]] = set()

    def insert_edge(self, u: Node, v: Node) -> int:
        self._edges.add((u, v))
        return super().insert_edge(u, v)

    def delete_edge(self, u: Node, v: Node) -> None:
        """Remove (u, v) and restore the exact closure.

        Deleting can only shrink the closure, and which pairs survive
        depends on alternative paths — the genuinely hard direction of
        Dyn-FO.  This implementation recomputes from the maintained
        edge set; the stats record every recompute so benchmarks can
        price the asymmetry.
        """
        if (u, v) not in self._edges:
            return
        self._edges.discard((u, v))
        self.stats.deletions += 1
        self._recompute()

    def _recompute(self) -> None:
        self.stats.recomputes += 1
        nodes = list(self._forward)
        self._forward = {}
        self._backward = {}
        self._successors = {}
        for node in nodes:
            self.add_node(node)
        suspended = self.stats
        # Replay insertions without polluting the user-visible counters.
        self.stats = UpdateStats()
        for u, v in sorted(self._edges, key=repr):
            super().insert_edge(u, v)
        self.stats = suspended
