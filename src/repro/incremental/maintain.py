"""The fixpoint maintainer: DRed + counting over the program's strata.

A :class:`FixpointMaintainer` owns one cached least-fixpoint store and
upgrades it in place when the EDB changes, instead of letting the
session throw the materialization away:

* **insertions** ride the semi-naive fast path — deltas seeded from
  just the new facts (:func:`repro.datalog.seminaive.seminaive_delta_rounds`
  is the same loop; here the rounds run stratum by stratum so they
  interleave correctly with deletions);
* **retractions** run delete–rederive (DRed) on recursive strata and
  pure counting (:mod:`repro.incremental.support`) on non-recursive
  ones, using the stratification the
  :class:`~repro.api.program.CompiledProgram` already computed.

The maintainable fragment is full (existential-free) programs: their
saturated store is the least fixpoint over constants, so deletion has
the classical semantics.  Programs with existential rules materialize
labeled nulls whose provenance the store does not track; the session
falls back to recomputation for those (and records why).

Batch discipline (one ``apply``):

1. **Phase A — deletions**, strata in topological order.  Joins that
   must see the *old* state run over a
   :class:`~repro.incremental.views.UnionView` of the live store and
   the net-removed set, so nothing is copied.
2. **Phase B — insertions**, strata in topological order, semi-naive
   within each recursive stratum.

This is the standard stratified DRed schedule: phase A leaves the store
at ``fixpoint(EDB \\ retracted)``, phase B lifts it to
``fixpoint((EDB \\ retracted) ∪ inserted)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.homomorphism import find_homomorphism
from ..core.instance import Instance
from ..core.terms import Term, Variable
from ..datalog.seminaive import _delta_matches
from ..storage.base import FactStore
from .support import SupportIndex
from .views import AtomSet, UnionView

__all__ = [
    "FixpointMaintainer",
    "MaintenanceStats",
    "MaintenanceReport",
    "unmaintainable_reason",
]


def unmaintainable_reason(analysis) -> Optional[str]:
    """Why a program is outside the maintainable fragment (None if in).

    *analysis* is a :class:`~repro.api.program.ProgramAnalysis`.  The
    fragment is full programs: multi-head rules are normalized away,
    but existential heads invent labeled nulls whose derivations the
    store does not record, so deletion cannot be localized.
    """
    if not analysis.full:
        return (
            "existential rules materialize labeled nulls; retraction "
            "over invented values needs provenance the store does not "
            "keep, so the plan recomputes on EDB change"
        )
    return None


@dataclass
class MaintenanceStats:
    """Work counters for one maintenance batch (or an aggregate)."""

    edb_inserted: int = 0    # effective EDB fact insertions
    edb_retracted: int = 0   # effective EDB fact retractions
    derived_added: int = 0   # IDB facts the insertion phase derived
    overdeleted: int = 0     # DRed over-approximation size
    rederived: int = 0       # overdeleted facts with surviving proofs
    removed: int = 0         # net facts deleted from the store
    strata_maintained: int = 0
    dred_strata: int = 0     # strata that ran delete–rederive
    counting_strata: int = 0  # strata maintained by support counts
    matches: int = 0         # delta-join body matches examined

    def merge(self, other: "MaintenanceStats") -> "MaintenanceStats":
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return self

    def as_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


@dataclass
class MaintenanceReport:
    """What one :meth:`repro.api.Session.apply` did, across all caches."""

    version: int
    inserted: Tuple[Atom, ...]
    retracted: Tuple[Atom, ...]
    #: (cache label, per-batch stats) for every fixpoint upgraded in place.
    maintained: List[Tuple[str, MaintenanceStats]] = field(default_factory=list)
    #: (cache label, reason) for every cache dropped to recomputation.
    fallbacks: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def added(self) -> int:
        return len(self.inserted)

    @property
    def dropped(self) -> int:
        return len(self.retracted)

    def totals(self) -> MaintenanceStats:
        total = MaintenanceStats()
        for _, stats in self.maintained:
            total.merge(stats)
        return total

    def describe(self) -> str:
        lines = [
            f"edb: +{self.added} fact(s), -{self.dropped} fact(s) "
            f"(version {self.version})"
        ]
        for label, stats in self.maintained:
            lines.append(
                f"maintained {label}: {stats.strata_maintained} stratum/strata "
                f"({stats.dred_strata} DRed, {stats.counting_strata} counting), "
                f"+{stats.derived_added} derived, -{stats.removed} removed, "
                f"{stats.overdeleted} overdeleted / {stats.rederived} rederived"
            )
        for label, reason in self.fallbacks:
            lines.append(f"fallback {label}: {reason}")
        if not self.maintained and not self.fallbacks:
            lines.append("no cached fixpoints to maintain")
        return "\n".join(lines)


def _head_seed(head: Atom, fact: Atom) -> Optional[Dict[Variable, Term]]:
    """Bindings making *head* equal *fact*, or None if they don't unify."""
    if head.predicate != fact.predicate or head.arity != fact.arity:
        return None
    seed: Dict[Variable, Term] = {}
    for h_term, f_term in zip(head.args, fact.args):
        if isinstance(h_term, Variable):
            bound = seed.get(h_term)
            if bound is not None and bound != f_term:
                return None
            seed[h_term] = f_term
        elif h_term != f_term:
            return None
    return seed


class FixpointMaintainer:
    """Maintains one saturated store under EDB change sets.

    Construction precomputes the stratum schedule from the compiled
    program's analysis; per-stratum :class:`SupportIndex` objects are
    built lazily, the first time a deletion reaches a non-recursive
    stratum, and kept coherent from then on.
    """

    def __init__(self, compiled, store: FactStore):
        analysis = compiled.analysis
        reason = unmaintainable_reason(analysis)
        if reason is not None:
            raise ValueError(f"program is not maintainable: {reason}")
        self.compiled = compiled
        self.store = store
        self.program = analysis.normalized
        self.layers: Tuple[tuple, ...] = analysis.strata.layers
        self.group_heads: List[set] = []
        self.recursive: List[bool] = []
        self.head_group: Dict[str, int] = {}
        for index, layer in enumerate(self.layers):
            heads = {tgd.head[0].predicate for tgd in layer}
            self.group_heads.append(heads)
            self.recursive.append(
                any(
                    atom.predicate in heads
                    for tgd in layer
                    for atom in tgd.body
                )
            )
            for predicate in heads:
                self.head_group[predicate] = index
        self.supports: Dict[int, SupportIndex] = {}

    # -- the batch entry point ---------------------------------------------

    def apply(
        self,
        inserted: Sequence[Atom],
        retracted: Sequence[Atom],
        *,
        edb,
    ) -> MaintenanceStats:
        """Upgrade the store for one effective (inserted, retracted) batch.

        *edb* is the session's asserted-fact base **after** the batch;
        together with the two sequences it reconstructs old-EDB
        membership exactly.  The two sequences must be effective:
        inserted facts were absent from the old EDB, retracted facts
        present (and the two disjoint) — :meth:`repro.api.Session.apply`
        guarantees this.
        """
        stats = MaintenanceStats()
        inserted_set = set(inserted)
        retracted_set = set(retracted)
        stats.edb_inserted = len(inserted_set)
        stats.edb_retracted = len(retracted_set)

        def in_old_edb(fact: Atom) -> bool:
            return (
                fact in retracted_set
                or (fact in edb and fact not in inserted_set)
            )

        def in_mid_edb(fact: Atom) -> bool:
            # EDB \ retracted — what phase A may rederive from.
            return fact in edb and fact not in inserted_set

        # ---- Phase A: deletions, stratum by stratum ----------------------
        # Net removals so far: an indexed Instance, because the UnionView
        # probes it inside every old-state join of the deletion phase.
        removed = Instance()
        if retracted_set:
            pending: Dict[int, List[Atom]] = {}
            for fact in retracted_set:
                group = self.head_group.get(fact.predicate)
                if group is None:
                    # Pure EDB predicate: no rule can rederive it.
                    if self.store.discard(fact):
                        removed.add(fact)
                else:
                    pending.setdefault(group, []).append(fact)
            for index, layer in enumerate(self.layers):
                edb_dels = pending.get(index, ())
                if not removed and not edb_dels:
                    continue
                stats.strata_maintained += 1
                if self.recursive[index]:
                    stats.dred_strata += 1
                    self._dred_delete(
                        index, layer, removed, edb_dels, in_mid_edb, stats
                    )
                else:
                    stats.counting_strata += 1
                    self._counting_delete(
                        index, layer, removed, edb_dels, in_old_edb, stats
                    )
        stats.removed = len(removed)

        # ---- Phase B: insertions, stratum by stratum ---------------------
        delta_plus = AtomSet()
        for fact in inserted_set:
            if self.store.add(fact):
                delta_plus.add(fact)
        before = len(delta_plus)
        if inserted_set or delta_plus:
            for index, layer in enumerate(self.layers):
                edb_ins = [
                    fact
                    for fact in inserted_set
                    if fact.predicate in self.group_heads[index]
                ]
                if not delta_plus and not edb_ins:
                    continue
                if self.recursive[index]:
                    self._seminaive_insert(layer, delta_plus, stats)
                else:
                    self._counting_insert(
                        index, layer, delta_plus, edb_ins, stats
                    )
        stats.derived_added = len(delta_plus) - before
        return stats

    # -- deletion: DRed on recursive strata --------------------------------

    def _dred_delete(
        self,
        index: int,
        layer,
        removed: Instance,
        edb_dels: Sequence[Atom],
        in_mid_edb,
        stats: MaintenanceStats,
    ) -> None:
        store = self.store
        view = UnionView(store, removed)
        # Over-delete: everything with a derivation (in the old state)
        # that touches a deleted fact.  Candidates stay in the store —
        # the old-state joins must still see them.
        over: set[Atom] = {f for f in edb_dels if f in store}
        frontier = AtomSet(set(removed) | over)
        while len(frontier) > 0:
            wave: set[Atom] = set()
            for tgd in layer:
                head = tgd.head[0]
                for hom in _delta_matches(tgd, view, frontier):
                    stats.matches += 1
                    fact = hom.apply_atom(head)
                    if fact in over or fact in removed:
                        continue
                    if fact in store:
                        wave.add(fact)
            over |= wave
            frontier = AtomSet(wave)
        stats.overdeleted += len(over)
        for fact in over:
            store.discard(fact)
        # Re-derive, in two stages (each fact is checked once, then
        # survivors propagate semi-naively — never a quadratic rescan):
        # 1. facts with direct support from what is left (or still
        #    EDB-asserted) come back;
        remaining = set(over)
        rederived: List[Atom] = []
        for fact in sorted(remaining, key=str):
            if in_mid_edb(fact) or self._derivable(fact, layer):
                store.add(fact)
                rederived.append(fact)
                stats.rederived += 1
        remaining.difference_update(rederived)
        # 2. each survivor may complete a proof for another overdeleted
        #    fact — a delta join pinned on the latest rederivals.
        wave = AtomSet(rederived)
        while len(wave) > 0 and remaining:
            fresh: List[Atom] = []
            for tgd in layer:
                head = tgd.head[0]
                for hom in _delta_matches(tgd, store, wave):
                    stats.matches += 1
                    fact = hom.apply_atom(head)
                    if fact in remaining:
                        store.add(fact)
                        remaining.discard(fact)
                        fresh.append(fact)
                        stats.rederived += 1
            wave = AtomSet(fresh)
        for fact in remaining:
            removed.add(fact)

    def _derivable(self, fact: Atom, layer) -> bool:
        for tgd in layer:
            seed = _head_seed(tgd.head[0], fact)
            if seed is None:
                continue
            if find_homomorphism(list(tgd.body), self.store, seed) is not None:
                return True
        return False

    # -- deletion: counting on non-recursive strata ------------------------

    def _counting_delete(
        self,
        index: int,
        layer,
        removed: Instance,
        edb_dels: Sequence[Atom],
        in_old_edb,
        stats: MaintenanceStats,
    ) -> None:
        store = self.store
        view = UnionView(store, removed)
        support = self.supports.get(index)
        if support is None:
            support = self.supports[index] = self._build_support(
                index, layer, view, in_old_edb
            )
        # One exact pass: every old-state match that uses a net-removed
        # atom is a lost support (each enumerated exactly once).
        losses: Dict[Atom, int] = {}
        if len(removed) > 0:
            for tgd in layer:
                head = tgd.head[0]
                for hom in _delta_matches(tgd, view, removed):
                    stats.matches += 1
                    fact = hom.apply_atom(head)
                    losses[fact] = losses.get(fact, 0) + 1
        for fact in edb_dels:
            losses[fact] = losses.get(fact, 0) + 1  # the EDB support
        for fact, lost in losses.items():
            if support.lose(fact, lost) == 0 and store.discard(fact):
                removed.add(fact)

    def _build_support(
        self, index: int, layer, view: UnionView, in_old_edb
    ) -> SupportIndex:
        edb_facts = [
            fact
            for predicate in self.group_heads[index]
            for fact in view.by_predicate(predicate)
            if in_old_edb(fact)
        ]
        return SupportIndex.build(layer, view, edb_facts)

    # -- insertion ---------------------------------------------------------

    def _seminaive_insert(
        self, layer, delta_plus: AtomSet, stats: MaintenanceStats
    ) -> None:
        """Semi-naive rounds within one recursive stratum, seeded from
        every fact added so far in this batch."""
        store = self.store
        wave = delta_plus
        while len(wave) > 0:
            staged: List[Atom] = []
            staged_set: set[Atom] = set()
            for tgd in layer:
                head = tgd.head[0]
                for hom in _delta_matches(tgd, store, wave):
                    stats.matches += 1
                    fact = hom.apply_atom(head)
                    if fact not in store and fact not in staged_set:
                        staged_set.add(fact)
                        staged.append(fact)
            for fact in staged:
                store.add(fact)
                delta_plus.add(fact)
            wave = AtomSet(staged)

    def _counting_insert(
        self,
        index: int,
        layer,
        delta_plus: AtomSet,
        edb_ins: Sequence[Atom],
        stats: MaintenanceStats,
    ) -> None:
        store = self.store
        support = self.supports.get(index)
        gains: Dict[Atom, int] = {}
        if len(delta_plus) > 0:
            for tgd in layer:
                head = tgd.head[0]
                for hom in _delta_matches(tgd, store, delta_plus):
                    stats.matches += 1
                    fact = hom.apply_atom(head)
                    gains[fact] = gains.get(fact, 0) + 1
        for fact in edb_ins:
            gains[fact] = gains.get(fact, 0) + 1  # the EDB support
        for fact, gained in gains.items():
            if support is not None:
                support.gain(fact, gained)
            if fact not in store:
                store.add(fact)
                delta_plus.add(fact)
