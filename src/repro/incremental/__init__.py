"""Incremental view maintenance (IVM) over the storage/session layers.

The paper bounds the *space* of reasoning; this package bounds the
*rework*: when the EDB changes, a session's cached saturated
materializations are upgraded in place instead of being discarded.
Insertions ride a semi-naive fast path seeded from just the new facts;
retractions run delete–rederive (DRed) on recursive strata and a
counting support index on non-recursive ones — the delta-driven
continuous-reasoning shape of the Vadalog system and its streaming
follow-ups (PAPERS.md: 1807.08709, 2311.12236).

Entry points:

* :meth:`repro.api.Session.apply` — apply a :class:`ChangeSet` to the
  session EDB, routing every cached fixpoint through its
  :class:`FixpointMaintainer` (falling back to recomputation, with a
  recorded reason, outside the maintainable fragment);
* ``python -m repro update`` — the same from the command line, reading
  ``+atom`` / ``-atom`` delta lines.
"""

from .changes import ChangeSet, MutationLog, compose_changes
from .maintain import (
    FixpointMaintainer,
    MaintenanceReport,
    MaintenanceStats,
    unmaintainable_reason,
)
from .support import SupportIndex

__all__ = [
    "ChangeSet",
    "MutationLog",
    "compose_changes",
    "FixpointMaintainer",
    "MaintenanceReport",
    "MaintenanceStats",
    "SupportIndex",
    "unmaintainable_reason",
]
