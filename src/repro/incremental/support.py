"""Counting-based support for non-recursive strata.

For a stratum whose head predicates never occur in its own rule bodies,
deletion maintenance does not need delete–rederive: it is enough to
know, per derived fact, *how many* derivations support it — the
classical counting algorithm (Gupta–Mumick–Subrahmanian).  A
:class:`SupportIndex` holds those counts: one per distinct body match
across the stratum's rules, plus one per EDB assertion of the fact.
Retractions decrement exactly the matches they kill; a fact whose count
reaches zero is gone, with no rederivation pass.

Counting is unsound on recursive strata (a fact may count itself among
its own supports), which is why the maintainer falls back to DRed
there; see :mod:`repro.incremental.maintain`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from ..core.atoms import Atom
from ..core.homomorphism import homomorphisms

__all__ = ["SupportIndex"]


class SupportIndex:
    """Derivation counts for one non-recursive stratum."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[Atom, int] = {}

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, fact: object) -> bool:
        return fact in self.counts

    def count(self, fact: Atom) -> int:
        return self.counts.get(fact, 0)

    def gain(self, fact: Atom, n: int = 1) -> int:
        """Record *n* new supports; return the updated count."""
        updated = self.counts.get(fact, 0) + n
        self.counts[fact] = updated
        return updated

    def lose(self, fact: Atom, n: int = 1) -> int:
        """Record *n* lost supports; at zero the entry is dropped.

        Returns the updated count (0 means the fact has no remaining
        derivation and must be deleted from the store).
        """
        updated = self.counts.get(fact, 0) - n
        if updated <= 0:
            self.counts.pop(fact, None)
            return 0
        self.counts[fact] = updated
        return updated

    @classmethod
    def build(
        cls,
        layer: Sequence,
        view,
        edb_facts: Iterable[Atom],
    ) -> "SupportIndex":
        """Count every body match of *layer*'s rules over *view*.

        *view* must present the stratum's **old** state (the fixpoint
        before the batch being applied), so that the subsequent
        decrement pass finds every count it removes.  *edb_facts* are
        the stratum's head-predicate facts asserted in the old EDB;
        each contributes one support.
        """
        index = cls()
        for tgd in layer:
            head = tgd.head[0]
            for hom in homomorphisms(list(tgd.body), view):
                index.gain(hom.apply_atom(head))
        for fact in edb_facts:
            index.gain(fact)
        return index
