"""Change models for incremental view maintenance.

A :class:`ChangeSet` is one batch of EDB mutations — fact insertions
*and retractions* — in the order the caller issued them.  A
:class:`MutationLog` is the session's history of applied change sets,
keyed by the EDB version each one produced: the version number becomes
a *watermark*, and a cached materialization stamped with an older
watermark can be caught up by replaying (the composition of) the
change sets it missed instead of being recomputed from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..core.atoms import Atom

__all__ = ["ChangeSet", "MutationLog", "compose_changes"]

#: Operation tags used in the textual delta format (``+atom`` inserts,
#: ``-atom`` retracts) and in :attr:`ChangeSet.ops`.
INSERT = "+"
RETRACT = "-"


@dataclass(frozen=True)
class ChangeSet:
    """An ordered batch of EDB insertions and retractions.

    ``ops`` preserves issue order; :meth:`net` collapses it to
    last-wins insert/retract tuples (inserting then retracting the same
    fact cancels, and vice versa), which is what the maintainer and the
    session consume.
    """

    ops: Tuple[Tuple[str, Atom], ...] = ()

    @classmethod
    def inserting(cls, atoms: Iterable[Atom]) -> "ChangeSet":
        return cls(tuple((INSERT, atom) for atom in atoms))

    @classmethod
    def retracting(cls, atoms: Iterable[Atom]) -> "ChangeSet":
        return cls(tuple((RETRACT, atom) for atom in atoms))

    @classmethod
    def of(cls, inserts: Iterable[Atom] = (), retracts: Iterable[Atom] = ()) -> "ChangeSet":
        """Retractions first, then insertions (the common batch shape)."""
        return cls(
            tuple((RETRACT, atom) for atom in retracts)
            + tuple((INSERT, atom) for atom in inserts)
        )

    @classmethod
    def parse(cls, text: str) -> "ChangeSet":
        """Parse the textual delta format: one ``+atom`` / ``-atom`` per line.

        Blank lines and ``#`` comments are skipped; a bare atom line
        (no sign) is an insertion; the trailing period is optional.
        Atoms must be ground facts (constants only).
        """
        from ..lang.parser import parse_atom

        ops: List[Tuple[str, Atom]] = []
        for number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            sign = INSERT
            if line[0] in (INSERT, RETRACT):
                sign, line = line[0], line[1:].strip()
            try:
                atom = parse_atom(line)
            except ValueError as error:
                raise ValueError(f"line {number}: {error}") from error
            if not atom.is_fact():
                raise ValueError(
                    f"line {number}: EDB deltas must be ground facts "
                    f"(constants only), got {atom}"
                )
            ops.append((sign, atom))
        return cls(tuple(ops))

    def __bool__(self) -> bool:
        return bool(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def inserts(self) -> Tuple[Atom, ...]:
        return self.net()[0]

    @property
    def retracts(self) -> Tuple[Atom, ...]:
        return self.net()[1]

    def net(self) -> Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]:
        """The last-wins (inserts, retracts) pair, each duplicate-free.

        A fact's final disposition is its last operation: ``+p, -p``
        nets to one retraction, ``-p, +p`` to one insertion.
        """
        final: dict[Atom, str] = {}
        order: List[Atom] = []
        for sign, atom in self.ops:
            if atom not in final:
                order.append(atom)
            final[atom] = sign
        inserts = tuple(a for a in order if final[a] == INSERT)
        retracts = tuple(a for a in order if final[a] == RETRACT)
        return inserts, retracts

    def describe(self) -> str:
        inserts, retracts = self.net()
        return f"ChangeSet(+{len(inserts)}, -{len(retracts)})"


def compose_changes(
    batches: Iterable[Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]],
) -> Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]:
    """Compose a sequence of *effective* (inserted, retracted) batches.

    Each batch must be effective relative to the state the previous one
    produced (inserted facts were absent, retracted facts present) —
    which is exactly what :class:`MutationLog` records.  The result is
    the single effective batch relative to the state before the first:
    retract-then-insert and insert-then-retract both cancel.
    """
    inserted: dict[Atom, None] = {}
    retracted: dict[Atom, None] = {}
    for batch_inserted, batch_retracted in batches:
        for atom in batch_retracted:
            if atom in inserted:
                del inserted[atom]
            else:
                retracted[atom] = None
        for atom in batch_inserted:
            if atom in retracted:
                del retracted[atom]
            else:
                inserted[atom] = None
    return tuple(inserted), tuple(retracted)


@dataclass(frozen=True)
class MutationRecord:
    """One applied change set: the EDB version it produced plus the
    *effective* insertions/retractions (no-ops already filtered)."""

    version: int
    inserted: Tuple[Atom, ...]
    retracted: Tuple[Atom, ...]


@dataclass
class MutationLog:
    """The session's EDB change history, indexed by version watermark.

    ``max_entries`` bounds the log (oldest entries are dropped); a
    consumer whose watermark predates the retained window cannot be
    caught up and must recompute.
    """

    max_entries: Optional[int] = 1024
    entries: List[MutationRecord] = field(default_factory=list)

    def record(
        self,
        version: int,
        inserted: Iterable[Atom],
        retracted: Iterable[Atom],
    ) -> MutationRecord:
        record = MutationRecord(version, tuple(inserted), tuple(retracted))
        self.entries.append(record)
        if self.max_entries is not None:
            del self.entries[: max(0, len(self.entries) - self.max_entries)]
        return record

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def watermark(self) -> Optional[int]:
        """The version the latest recorded change set produced."""
        return self.entries[-1].version if self.entries else None

    def since(
        self, version: int, current: int
    ) -> Optional[List[MutationRecord]]:
        """Records moving a consumer at watermark *version* to *current*.

        Returns None when the log does not cover the full contiguous
        span ``version+1 .. current`` (entries were dropped, or a
        mutation bypassed the log) — the caller must recompute.
        """
        if version == current:
            return []
        pending = [r for r in self.entries if version < r.version <= current]
        if [r.version for r in pending] != list(range(version + 1, current + 1)):
            return None
        return pending
