"""Light-weight atom collections used by the maintenance phases.

Neither of these is a full :class:`~repro.storage.base.FactStore`; they
implement exactly the retrieval surface the delta-join machinery needs
(``matching`` for the join side, ``by_predicate``/``__contains__`` for
the pinned delta side), which keeps them O(1) to construct around the
live store.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from ..core.atoms import Atom

__all__ = ["AtomSet", "UnionView"]


class AtomSet:
    """A small predicate-indexed atom set (the pinned delta of a join).

    Supports the protocol :func:`repro.datalog.seminaive._delta_matches`
    expects of its ``delta`` argument: ``by_predicate``, membership,
    iteration, and truthiness.
    """

    def __init__(self, atoms: Iterable[Atom] = ()):
        self._atoms: set[Atom] = set()
        self._by_predicate: Dict[str, List[Atom]] = {}
        for atom in atoms:
            self.add(atom)

    def add(self, atom: Atom) -> bool:
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        self._by_predicate.setdefault(atom.predicate, []).append(atom)
        return True

    def __contains__(self, atom: object) -> bool:
        return atom in self._atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def by_predicate(self, predicate: str) -> Iterator[Atom]:
        return iter(tuple(self._by_predicate.get(predicate, ())))


class UnionView:
    """Read-only union of the live store and the already-removed atoms.

    During the deletion phase the maintainer needs joins over the *old*
    state — the fixpoint as it stood before this batch — while the live
    store is already missing the net deletions of earlier strata.  The
    union restores them without copying anything.  *removed* must be an
    indexed :class:`~repro.storage.base.FactStore` (the maintainer uses
    an :class:`~repro.core.instance.Instance`): the view sits under
    every join of the deletion phase, so probes into the removed layer
    must hit position indexes, not scans.
    """

    def __init__(self, store, removed):
        self._store = store
        self._removed = removed

    def __contains__(self, atom: object) -> bool:
        return atom in self._store or atom in self._removed

    def matching(self, pattern: Atom) -> Iterator[Atom]:
        yield from self._store.matching(pattern)
        for atom in self._removed.matching(pattern):
            if atom not in self._store:
                yield atom

    def by_predicate(self, predicate: str) -> Iterator[Atom]:
        yield from self._store.by_predicate(predicate)
        for atom in self._removed.by_predicate(predicate):
            if atom not in self._store:
                yield atom
