"""Batch execution of compiled rule kernels over interned id rows.

A :class:`KernelEvaluator` mirrors a kernel-capable store (one that
exposes ``rows_interned``/``extend_interned`` and a shared ``table``)
as dense per-relation row lists with

* a ``row → row-number`` dedup map,
* lazily built hash indexes per probed key-position set, appended
  incrementally at each round boundary,
* the current delta as a row-number list + set (rows staged by the
  previous round — or an arbitrary subset for incremental resumption,
  where a re-asserted fact is delta without being new).

Each semi-naive round runs every rule's pin plans as batch operations:
filter/project the delta rows of the pinned atom into a binding
frontier, then extend the frontier through each join step with one
hash probe per step (``kernel_batches`` counts these batch ops).  The
old/full row discipline per step reproduces the interpreter's
first-pin exact-once match counting — see
:mod:`repro.kernels.compiler` — so ``considered``, staged facts, and
round structure agree with the interpreter exactly.

The mirror is engine *scratch*: while an evaluation is live it is
registered on the store (``register_scratch``) and surfaces in
``memory_report()`` under the ``kernel_scratch`` component; shared row
tuples are charged to the store's own columns, the mirror pays only
for its containers and indexes.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.atoms import Atom
from ..core.program import Program
from ..core.terms import Term
from ..storage.memory import deep_sizeof
from .compiler import (
    CONST,
    SLOT,
    KernelProgram,
    PinPlan,
    RuleKernel,
    compile_kernels,
)

__all__ = ["KernelEvaluator", "kernel_capable"]

Row = Tuple[int, ...]
RelKey = Tuple[str, int]


def kernel_capable(store) -> bool:
    """Whether *store* exposes the interned id-array surface kernels
    compile against (``rows_interned``/``extend_interned``/``table``)."""
    return (
        hasattr(store, "rows_interned")
        and hasattr(store, "extend_interned")
        and getattr(store, "table", None) is not None
    )


class _KRelation:
    """One (predicate, arity) mirrored as dense interned rows."""

    __slots__ = ("arity", "rows", "row_pos", "delta_rownums", "delta_set",
                 "indexes")

    def __init__(self, arity: int):
        self.arity = arity
        self.rows: List[Row] = []
        self.row_pos: Dict[Row, int] = {}
        #: The current delta as row numbers (ascending) + membership set.
        self.delta_rownums: List[int] = []
        self.delta_set: Set[int] = set()
        #: key-position tuple → key-id tuple → row numbers (ascending).
        self.indexes: Dict[Tuple[int, ...], Dict[Tuple[int, ...], List[int]]] = {}

    def append(self, row: Row) -> int:
        number = len(self.rows)
        self.rows.append(row)
        self.row_pos[row] = number
        for positions, index in self.indexes.items():
            # Single-column indexes key on the bare id (no tuple
            # allocation on the hot path); composite ones on id tuples.
            if len(positions) == 1:
                key = row[positions[0]]
            else:
                key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [number]
            else:
                bucket.append(number)
        return number

    def index_for(self, positions: Tuple[int, ...]) -> Dict:
        index = self.indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                position = positions[0]
                for number, row in enumerate(self.rows):
                    key = row[position]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = [number]
                    else:
                        bucket.append(number)
            else:
                for number, row in enumerate(self.rows):
                    key = tuple(row[p] for p in positions)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = [number]
                    else:
                        bucket.append(number)
            self.indexes[positions] = index
        return index


class KernelEvaluator:
    """Semi-naive evaluation of one program as compiled batch kernels.

    The evaluator owns the mirror for one run; the *store* stays the
    source of truth for atoms (every staged row is bulk-appended there
    at the round boundary, so observers of the store — round events,
    fixpoint caches, IVM — see exactly what the interpreter would have
    written).  The store must not be mutated externally while an
    evaluation is live.
    """

    def __init__(self, store, program: Program,
                 kernels: Optional[KernelProgram] = None):
        if not kernel_capable(store):
            raise ValueError(
                f"{type(store).__name__} has no interned id-array "
                "surface (rows_interned/extend_interned); use the "
                "interpreter"
            )
        self.store = store
        self.table = store.table
        self.kernels = (
            kernels if kernels is not None else compile_kernels(program)
        )
        self.relations: Dict[RelKey, _KRelation] = {}
        for predicate, arity, rows in store.rows_interned():
            relation = self._relation(predicate, arity)
            relation.rows = list(rows)
            relation.row_pos = {row: n for n, row in enumerate(rows)}
        #: Cumulative batch operations (pin filters + hash probes).
        self.batches = 0
        #: Rule-constant ids, cached once resolved (an id is permanent;
        #: an unresolved constant is retried — a head fire may intern it
        #: between rounds).
        self._const_ids: Dict[Term, int] = {}
        #: kernel → (head slot layout, resolved head constant ids);
        #: constants resolve on the rule's first fire — resolving
        #: earlier would intern constants of rules that never fire,
        #: which the interpreter never does.
        self._head_layouts: Dict[RuleKernel, tuple] = {}

    # -- delta seeding -----------------------------------------------------

    def mark_all_delta(self) -> None:
        """Treat every mirrored row as delta (a from-scratch round 1)."""
        for relation in self.relations.values():
            relation.delta_rownums = list(range(len(relation.rows)))
            relation.delta_set = set(relation.delta_rownums)

    def seed_delta(self, atoms: Iterable[Atom]) -> List[Atom]:
        """Seed an incremental resumption from *atoms*.

        Mirrors :func:`~repro.datalog.seminaive.seminaive_delta_rounds`'
        interpreter seeding exactly: atoms are deduplicated (first
        occurrence kept), inserted into the store if absent, and every
        seed atom is delta — including atoms the instance already held,
        which are delta *without* being new rows.  Returns the seed.
        """
        seed: List[Atom] = []
        seen: Set[Atom] = set()
        for atom in atoms:
            if atom in seen:
                continue
            seen.add(atom)
            self.store.add(atom)
            row = tuple(self.table.id_of(term) for term in atom.args)
            relation = self._relation(atom.predicate, atom.arity)
            number = relation.row_pos.get(row)
            if number is None:
                number = relation.append(row)
            if number not in relation.delta_set:
                relation.delta_set.add(number)
                relation.delta_rownums.append(number)
            seed.append(atom)
        for relation in self.relations.values():
            relation.delta_rownums.sort()
        return seed

    # -- the round loop ----------------------------------------------------

    def rounds(
        self, max_rounds: Optional[int] = None, start_index: int = 0
    ) -> Iterator[Tuple[int, Tuple[Atom, ...], int, int]]:
        """Run semi-naive rounds to fixpoint, yielding
        ``(index, staged_atoms, considered, batches)`` per round.

        Staged atoms are merged into the mirror *and* the store before
        the yield (the event's instance view is post-merge, as in the
        interpreter).  The mirror is registered as engine scratch on
        the store for the lifetime of the generator.
        """
        self.store.register_scratch("kernel", self.scratch_bytes)
        try:
            index = start_index
            while any(r.delta_rownums for r in self.relations.values()):
                if max_rounds is not None and index - start_index >= max_rounds:
                    break
                index += 1
                before = self.batches
                staged, considered = self._run_round()
                self._merge(staged)
                atoms = tuple(
                    self._decode(predicate, row)
                    for predicate, _, row in staged
                )
                yield index, atoms, considered, self.batches - before
        finally:
            self.store.unregister_scratch("kernel")

    def _run_round(self) -> Tuple[List[Tuple[str, int, Row]], int]:
        staged: List[Tuple[str, int, Row]] = []
        staged_sets: Dict[RelKey, Set[Row]] = {}
        considered = 0
        for kernel in self.kernels.kernels:
            head_slots, head_consts, head_getter = self._head_layout(kernel)
            for pin in kernel.pins:
                relation = self.relations.get((pin.predicate, pin.arity))
                if relation is None or not relation.delta_rownums:
                    continue
                frontier = self._pin_frontier(kernel, pin, relation)
                for step in pin.steps:
                    if not frontier:
                        break
                    frontier = self._probe(step, frontier)
                if not frontier:
                    continue
                considered += len(frontier)
                if head_consts is None:
                    head_consts = [
                        None if kind == SLOT else self.table.intern(payload)
                        for kind, payload in kernel.head
                    ]
                    self._head_layouts[kernel] = (
                        head_slots, head_consts, head_getter
                    )
                head_key = (kernel.head_predicate, kernel.head_arity)
                head_rel = self._relation(*head_key)
                row_pos = head_rel.row_pos
                staged_set = staged_sets.setdefault(head_key, set())
                if head_getter is not None:
                    for binding in frontier:
                        row = head_getter(binding)
                        if row in row_pos or row in staged_set:
                            continue
                        staged_set.add(row)
                        staged.append((*head_key, row))
                else:
                    span = range(kernel.head_arity)
                    for binding in frontier:
                        row = tuple(
                            head_consts[i] if head_slots[i] < 0
                            else binding[head_slots[i]]
                            for i in span
                        )
                        if row in row_pos or row in staged_set:
                            continue
                        staged_set.add(row)
                        staged.append((*head_key, row))
        return staged, considered

    def _pin_frontier(
        self, kernel: RuleKernel, pin: PinPlan, relation: _KRelation
    ) -> List[List[int]]:
        """Filter/project the pinned atom's delta rows into bindings."""
        self.batches += 1
        consts = []
        for position, term in pin.consts:
            cid = self._const_id(term)
            if cid is None:
                # The constant was never interned, so no stored row can
                # carry it: the pin matches nothing this round.
                return []
            consts.append((position, cid))
        rows = relation.rows
        num_slots = kernel.num_slots
        frontier: List[List[int]] = []
        for number in relation.delta_rownums:
            row = rows[number]
            if consts and not all(row[p] == cid for p, cid in consts):
                continue
            if pin.repeats and not all(
                row[p] == row[q] for p, q in pin.repeats
            ):
                continue
            binding = [0] * num_slots
            for position, slot in pin.binds:
                binding[slot] = row[position]
            frontier.append(binding)
        return frontier

    def _probe(
        self, step, frontier: List[List[int]]
    ) -> List[List[int]]:
        """Extend the frontier through one body atom (one batch op)."""
        self.batches += 1
        relation = self.relations.get((step.predicate, step.arity))
        if relation is None or not relation.rows:
            return []
        rows = relation.rows
        delta_set = relation.delta_set
        old_only = step.old_only
        repeats = step.repeats
        binds = step.binds
        out: List[List[int]] = []
        if step.key:
            positions = tuple(p for p, _ in step.key)
            index = relation.index_for(positions)
            sources = []
            for _, (kind, payload) in step.key:
                if kind == CONST:
                    cid = self._const_id(payload)
                    if cid is None:
                        return []
                    sources.append((True, cid))
                else:
                    sources.append((False, payload))
            # Specialize the per-binding key construction: single-column
            # indexes take the bare id, all-slot composites go through
            # one itemgetter call; the generic path handles mixed
            # slot/constant keys.
            if len(sources) == 1:
                is_const, payload = sources[0]
                key_of = (
                    (lambda binding, _k=payload: _k) if is_const
                    else (lambda binding, _s=payload: binding[_s])
                )
            elif all(not is_const for is_const, _ in sources):
                key_of = itemgetter(*(payload for _, payload in sources))
            else:
                def key_of(binding, _sources=tuple(sources)):
                    return tuple(
                        payload if is_const else binding[payload]
                        for is_const, payload in _sources
                    )
            for binding in frontier:
                bucket = index.get(key_of(binding))
                if not bucket:
                    continue
                for number in bucket:
                    if old_only and number in delta_set:
                        continue
                    row = rows[number]
                    if repeats and not all(
                        row[p] == row[q] for p, q in repeats
                    ):
                        continue
                    extended = binding.copy()
                    for position, slot in binds:
                        extended[slot] = row[position]
                    out.append(extended)
        else:
            # No determined position: a scan step (cartesian extension).
            numbers = [
                number
                for number in range(len(rows))
                if not (old_only and number in delta_set)
            ]
            matching = []
            for number in numbers:
                row = rows[number]
                if repeats and not all(row[p] == row[q] for p, q in repeats):
                    continue
                matching.append(row)
            for binding in frontier:
                for row in matching:
                    extended = binding.copy()
                    for position, slot in binds:
                        extended[slot] = row[position]
                    out.append(extended)
        return out

    def _merge(self, staged: List[Tuple[str, int, Row]]) -> None:
        """Round boundary: expire the old delta, append staged rows to
        the mirror, and bulk-append them to the store."""
        for relation in self.relations.values():
            if relation.delta_rownums:
                relation.delta_rownums = []
                relation.delta_set = set()
        grouped: Dict[RelKey, List[Row]] = {}
        for predicate, arity, row in staged:
            grouped.setdefault((predicate, arity), []).append(row)
        for (predicate, arity), rows in grouped.items():
            relation = self._relation(predicate, arity)
            numbers = [relation.append(row) for row in rows]
            relation.delta_rownums = numbers
            relation.delta_set = set(numbers)
            self.store.extend_interned(predicate, arity, rows)

    # -- helpers -----------------------------------------------------------

    def _relation(self, predicate: str, arity: int) -> _KRelation:
        key = (predicate, arity)
        relation = self.relations.get(key)
        if relation is None:
            relation = self.relations[key] = _KRelation(arity)
        return relation

    def _const_id(self, term: Term) -> Optional[int]:
        cid = self._const_ids.get(term)
        if cid is None:
            cid = self.table.id_of(term)
            if cid is not None:
                self._const_ids[term] = cid
        return cid

    def _head_layout(self, kernel: RuleKernel):
        cached = self._head_layouts.get(kernel)
        if cached is not None:
            return cached
        slots = [
            payload if kind == SLOT else -1
            for kind, payload in kernel.head
        ]
        if all(kind == SLOT for kind, _ in kernel.head):
            # Pure-slot heads project through one C-level call.
            if len(slots) == 0:
                getter = lambda binding: ()  # noqa: E731
            elif len(slots) == 1:
                getter = lambda binding, _s=slots[0]: (binding[_s],)  # noqa: E731
            else:
                getter = itemgetter(*slots)
            consts: Optional[List[Optional[int]]] = []
            self._head_layouts[kernel] = (slots, consts, getter)
            return slots, consts, getter
        return slots, None, None  # constants resolve on first fire

    def _decode(self, predicate: str, row: Row) -> Atom:
        return Atom(predicate, tuple(map(self.table.term, row)))

    # -- accounting --------------------------------------------------------

    def scratch_bytes(self, seen: Optional[set] = None) -> int:
        """Deeply measured bytes of the mirror (rows shared with the
        store are charged wherever *seen* met them first)."""
        if seen is None:
            seen = set()
        total = 0
        for relation in self.relations.values():
            total += deep_sizeof(relation.rows, seen)
            total += deep_sizeof(relation.row_pos, seen)
            total += deep_sizeof(relation.indexes, seen)
            total += deep_sizeof(relation.delta_rownums, seen)
            total += deep_sizeof(relation.delta_set, seen)
        total += deep_sizeof(self._const_ids, seen)
        return total
