"""Lowering stratified Datalog rules to batch join plans.

One rule is compiled into one :class:`RuleKernel`: a fixed slot layout
for its variables, a head template, and — per body position — a
:class:`PinPlan` that drives the semi-naive round with that position
pinned to the delta.  The lowering happens **once per evaluation**;
the runtime (:mod:`repro.kernels.runtime`) then executes each plan as
a handful of batch operations over interned id rows instead of
per-tuple :class:`~repro.core.substitution.Substitution` churn.

Exact-once delta semantics
--------------------------

The interpreter (:func:`~repro.datalog.seminaive._delta_matches`)
reports a body match at pin *i* iff position *i* is the **first** body
position whose image lies in the delta.  The compiled plans reproduce
that count exactly without materializing images: with position *i*
pinned, every body atom at a position ``j < i`` joins against **old**
rows only (rows not in the current delta) and every ``j > i`` joins
against the full relation.  A match whose first delta position is *i*
then surfaces under exactly one pin — pin *i* — so ``considered`` and
the staged facts agree with the interpreter row for row.

Join order inside one pin plan is chosen greedily (most bound
positions first, ties by body order); the old/full discipline is
attached per *body position*, so reordering never changes the counted
set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.program import Program
from ..core.terms import Term, Variable
from ..core.tgd import TGD

__all__ = [
    "JoinStep",
    "PinPlan",
    "RuleKernel",
    "KernelProgram",
    "compile_rule",
    "compile_kernels",
]

#: A key source: a binding slot index, or a constant term (resolved to
#: its interned id at run time).
SLOT = "s"
CONST = "c"


@dataclass(frozen=True)
class JoinStep:
    """One hash-probe (or scan) of a body atom against the mirror.

    ``key`` pairs each keyed 0-based position with its value source —
    ``(SLOT, slot)`` for an already-bound variable, ``(CONST, term)``
    for a rule constant.  ``repeats`` are within-atom equalities whose
    first occurrence is free at this step; ``binds`` assign free
    positions to slots.  ``old_only`` excludes current-delta rows —
    the first-pin discipline described in the module docstring.
    """

    predicate: str
    arity: int
    old_only: bool
    key: Tuple[Tuple[int, Tuple[str, object]], ...]
    repeats: Tuple[Tuple[int, int], ...]
    binds: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class PinPlan:
    """The batch plan for one rule with one body position pinned.

    The pinned atom is filtered/projected straight off the delta rows
    (``consts``/``repeats`` checks, ``binds`` projections), then
    ``steps`` extend the binding frontier one batch at a time.
    """

    pin_index: int
    predicate: str
    arity: int
    consts: Tuple[Tuple[int, Term], ...]
    repeats: Tuple[Tuple[int, int], ...]
    binds: Tuple[Tuple[int, int], ...]
    steps: Tuple[JoinStep, ...]


@dataclass(frozen=True)
class RuleKernel:
    """One rule lowered: slot layout, head template, per-pin plans."""

    rule: TGD
    num_slots: int
    head_predicate: str
    head_arity: int
    #: Per head position: ``(SLOT, slot)`` or ``(CONST, term)``.
    head: Tuple[Tuple[str, object], ...]
    pins: Tuple[PinPlan, ...]


@dataclass(frozen=True)
class KernelProgram:
    """Every rule of one program, lowered in program order."""

    program: Program
    kernels: Tuple[RuleKernel, ...]

    @property
    def rules(self) -> int:
        return len(self.kernels)

    def describe(self) -> str:
        """A compact, stable rendering (observability for tests)."""
        lines = [f"kernel program: {self.rules} rule(s)"]
        for kernel in self.kernels:
            lines.append(
                f"  {kernel.rule}: {kernel.num_slots} slot(s), "
                f"{len(kernel.pins)} pin(s)"
            )
            for pin in kernel.pins:
                ops = " -> ".join(
                    f"{'probe' if step.key else 'scan'}"
                    f"[{step.predicate}/{step.arity}"
                    f"{'|old' if step.old_only else ''}]"
                    for step in pin.steps
                ) or "project"
                lines.append(
                    f"    pin {pin.pin_index} ({pin.predicate}/"
                    f"{pin.arity}): {ops}"
                )
        return "\n".join(lines)


def _atom_layout(
    atom, slots: dict, bound: set
) -> Tuple[
    Tuple[Tuple[int, Term], ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[int, Tuple[str, object]], ...],
]:
    """Split one atom's positions into consts / repeats / binds / key.

    *bound* is the set of slots bound before this atom runs; *slots*
    maps variables to slot indices (extended here on first occurrence).
    Key entries cover every position whose value is known up front —
    constants and already-bound variables; ``repeats`` cover second
    occurrences of variables first bound within this very atom.
    """
    consts: List[Tuple[int, Term]] = []
    repeats: List[Tuple[int, int]] = []
    binds: List[Tuple[int, int]] = []
    key: List[Tuple[int, Tuple[str, object]]] = []
    first_here: dict = {}
    for position, term in enumerate(atom.args):
        if not isinstance(term, Variable):
            consts.append((position, term))
            key.append((position, (CONST, term)))
            continue
        slot = slots.get(term)
        if slot is not None and slot in bound:
            key.append((position, (SLOT, slot)))
            continue
        earlier = first_here.get(term)
        if earlier is not None:
            repeats.append((position, earlier))
            continue
        if slot is None:
            slot = slots[term] = len(slots)
        first_here[term] = position
        binds.append((position, slot))
    return tuple(consts), tuple(repeats), tuple(binds), tuple(key)


def _compile_pin(rule: TGD, pin_index: int, slots: dict) -> PinPlan:
    body = list(rule.body)
    pinned = body[pin_index]
    bound: set = set()
    consts, repeats, binds, _ = _atom_layout(pinned, slots, bound)
    bound.update(slot for _, slot in binds)
    remaining = [j for j in range(len(body)) if j != pin_index]
    steps: List[JoinStep] = []
    while remaining:
        # Greedy: the atom with the most determined positions next
        # (constants + bound variables), ties by body order.
        def score(j: int) -> int:
            atom = body[j]
            n = 0
            for term in atom.args:
                if not isinstance(term, Variable):
                    n += 1
                elif slots.get(term) in bound:
                    n += 1
            return n

        best = max(remaining, key=lambda j: (score(j), -j))
        remaining.remove(best)
        atom = body[best]
        a_consts, a_repeats, a_binds, a_key = _atom_layout(
            atom, slots, bound
        )
        del a_consts  # folded into the key
        steps.append(
            JoinStep(
                predicate=atom.predicate,
                arity=atom.arity,
                old_only=best < pin_index,
                key=a_key,
                repeats=a_repeats,
                binds=a_binds,
            )
        )
        bound.update(slot for _, slot in a_binds)
    return PinPlan(
        pin_index=pin_index,
        predicate=pinned.predicate,
        arity=pinned.arity,
        consts=consts,
        repeats=repeats,
        binds=binds,
        steps=tuple(steps),
    )


def compile_rule(rule: TGD) -> RuleKernel:
    """Lower one full single-head rule to its batch plans."""
    if not rule.is_full() or not rule.is_single_head():
        raise ValueError(
            f"kernel compilation needs full single-head rules, got {rule}"
        )
    pins: List[PinPlan] = []
    slots: dict = {}
    for pin_index in range(len(rule.body)):
        # Each pin re-derives its own slot layout extension order, but
        # slots are shared across pins so the head template is stable.
        pins.append(_compile_pin(rule, pin_index, slots))
    head_atom = rule.head[0]
    head: List[Tuple[str, object]] = []
    for term in head_atom.args:
        if isinstance(term, Variable):
            slot = slots.get(term)
            if slot is None:  # pragma: no cover — is_full() excludes it
                raise ValueError(
                    f"head variable {term} of {rule} is not bound by "
                    "the body"
                )
            head.append((SLOT, slot))
        else:
            head.append((CONST, term))
    return RuleKernel(
        rule=rule,
        num_slots=len(slots),
        head_predicate=head_atom.predicate,
        head_arity=head_atom.arity,
        head=tuple(head),
        pins=tuple(pins),
    )


def compile_kernels(program: Program) -> KernelProgram:
    """Lower every rule of *program*, preserving program order.

    Rule order only affects the order staged facts are discovered in —
    never the staged set or the ``considered`` count, which the
    round-boundary merge makes order-independent (the same guarantee
    the interpreter documents in ``_delta_loop``).
    """
    return KernelProgram(
        program=program,
        kernels=tuple(compile_rule(rule) for rule in program),
    )
