"""Columnar batch kernels: rules compiled to set-at-a-time plans.

The semi-naive interpreter joins atom-by-atom through Python
substitution dicts; on an interned columnar store that wastes exactly
the representation the store exists for.  This package compiles each
rule once into batch join plans over interned id rows
(:mod:`~repro.kernels.compiler`) and executes them set-at-a-time
(:mod:`~repro.kernels.runtime`), reproducing the interpreter's round
structure, staged facts, and match counts exactly — the interpreter
remains the fallback for stores without an id-array surface, and the
ground-truth oracle the property suite compares against.

Selection is the planner's ``exec`` dimension
(``--exec kernel/interpret/auto``); the engine-level dispatch lives in
:func:`repro.datalog.seminaive.seminaive_rounds`.
"""

from .compiler import (
    JoinStep,
    KernelProgram,
    PinPlan,
    RuleKernel,
    compile_kernels,
    compile_rule,
)
from .runtime import KernelEvaluator, kernel_capable

__all__ = [
    "JoinStep",
    "KernelProgram",
    "PinPlan",
    "RuleKernel",
    "compile_kernels",
    "compile_rule",
    "KernelEvaluator",
    "kernel_capable",
]
