"""Query decomposition (Definition 4.4).

A decomposition of a CQ q(x̄) is a set of CQs {q1(ȳ1), ..., qn(ȳn)} whose
atoms cover atoms(q), such that each ȳi is the restriction of x̄ to the
variables of qi, and any two atoms sharing a *non-output* variable end
up in the same subquery.  Output variables are "frozen" — they stand
for fixed constants — so their occurrences may be separated across
subqueries without losing the connection.

The finest decomposition groups atoms into connected components of the
"shares a non-output variable" relation; every other decomposition is a
union of such components (possibly overlapping).  The reasoner uses the
finest one; the validator accepts any set satisfying the definition.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..core.atoms import Atom, atoms_variables
from ..core.query import ConjunctiveQuery
from ..core.terms import Variable

__all__ = [
    "connected_components",
    "decompose",
    "is_decomposition",
    "restrict_output",
]


def restrict_output(
    output: Sequence[Variable], atoms: Sequence[Atom]
) -> tuple[Variable, ...]:
    """The restriction of the output tuple x̄ to the variables of *atoms*."""
    present = atoms_variables(atoms)
    return tuple(v for v in output if v in present)


def connected_components(
    atoms: Sequence[Atom], output_variables: Set[Variable]
) -> List[List[Atom]]:
    """Partition *atoms* into components connected via non-output variables.

    Two atoms are linked if they share a variable outside
    *output_variables*; components are the equivalence classes of the
    transitive closure of that relation.  Ground atoms (and atoms whose
    variables are all outputs) form singleton components.
    """
    atom_list = list(dict.fromkeys(atoms))
    parent = list(range(len(atom_list)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    by_variable: Dict[Variable, int] = {}
    for index, atom in enumerate(atom_list):
        for var in atom.variables():
            if var in output_variables:
                continue
            if var in by_variable:
                union(by_variable[var], index)
            else:
                by_variable[var] = index

    grouped: Dict[int, List[Atom]] = {}
    for index, atom in enumerate(atom_list):
        grouped.setdefault(find(index), []).append(atom)
    return list(grouped.values())


def decompose(query: ConjunctiveQuery) -> List[ConjunctiveQuery]:
    """The finest decomposition of *query* (Definition 4.4).

    Returns one subquery per connected component, with output tuples
    restricted accordingly.  A query with a single component decomposes
    into (a copy of) itself.
    """
    components = connected_components(query.atoms, query.output_variables())
    return [
        ConjunctiveQuery(
            restrict_output(query.output, component),
            tuple(component),
            head_predicate=query.head_predicate,
        )
        for component in components
    ]


def is_decomposition(
    query: ConjunctiveQuery, children: Sequence[ConjunctiveQuery]
) -> bool:
    """Check Definition 4.4: do *children* form a decomposition of *query*?"""
    if not children:
        return False
    covered: Set[Atom] = set()
    for child in children:
        covered.update(child.atoms)
    if covered != set(query.atoms):
        return False
    outputs = query.output_variables()
    for child in children:
        # (1) the output tuple is the restriction of x̄ to the child's vars
        if child.output != restrict_output(query.output, child.atoms):
            return False
        child_atoms = set(child.atoms)
        # (2) atoms sharing a non-output variable travel together
        for alpha in child.atoms:
            for beta in query.atoms:
                shared = alpha.variables() & beta.variables()
                if shared - outputs and beta not in child_atoms:
                    return False
    return True
