"""Proof-tree machinery: chunk unifiers, resolution, decomposition,
specialization, canonical renaming, and proof trees (Section 4.1)."""

from .canonical import canonical_form, canonical_variable, is_canonical_variable
from .chunk import ChunkUnifier, chunk_unifiers, shared_variables
from .decomposition import (
    connected_components,
    decompose,
    is_decomposition,
    restrict_output,
)
from .resolution import Resolvent, ido_resolvents, resolvents, retarget_for_outputs
from .specialization import (
    enumerate_specializations,
    is_specialization,
    specialize,
)
from .tree import ProofNode, ProofTree, eq_partition_substitution

__all__ = [
    "canonical_form",
    "canonical_variable",
    "is_canonical_variable",
    "ChunkUnifier",
    "chunk_unifiers",
    "shared_variables",
    "connected_components",
    "decompose",
    "is_decomposition",
    "restrict_output",
    "Resolvent",
    "resolvents",
    "ido_resolvents",
    "retarget_for_outputs",
    "specialize",
    "enumerate_specializations",
    "is_specialization",
    "ProofNode",
    "ProofTree",
    "eq_partition_substitution",
]
