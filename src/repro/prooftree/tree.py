"""Proof trees (Definition 4.6).

A proof tree of a CQ q(x̄) w.r.t. a set Σ of TGDs is a triple (T, λ, π):
a finite rooted tree T, a labeling λ of nodes by CQs, and a partition π
of the output variables x̄, such that

1. the root is labeled ``Q(eq_π(x̄)) ← eq_π(α1, ..., αm)``,
2. a node with one child is labeled by a CQ whose child is an IDO
   σ_v-resolvent (σ ∈ Σ) or a specialization of it,
3. a node with k > 1 children is labeled by a CQ whose children's
   labels form a decomposition of it.

The CQ *induced* by the tree collects the atoms of all leaf labels under
the head ``Q(eq_π(x̄))``.  Theorem 4.7: c̄ ∈ cert(q, D, Σ) iff some proof
tree of q w.r.t. Σ induces a CQ with c̄ among its answers over D.

Proof trees here record, on each edge, *which* operation produced the
child; :meth:`ProofTree.validate` re-checks every recorded operation
against the definitions, and the checkers in the sibling modules can
also validate externally supplied trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from ..core.atoms import Atom
from ..core.program import Program
from ..core.query import ConjunctiveQuery
from ..core.substitution import Substitution
from ..core.terms import Variable
from .canonical import canonical_form
from .decomposition import is_decomposition
from .resolution import ido_resolvents
from .specialization import is_specialization

__all__ = ["ProofNode", "ProofTree", "eq_partition_substitution"]


def eq_partition_substitution(
    partition: Sequence[Sequence[Variable]],
) -> Substitution:
    """``eq_π``: map the variables of each block to one representative.

    The representative of a block is its first element (the paper's
    "distinguished element of S_i").
    """
    mapping = {}
    for block in partition:
        if not block:
            raise ValueError("partition blocks must be non-empty")
        representative = block[0]
        for var in block:
            if var != representative:
                mapping[var] = representative
    return Substitution(mapping)


@dataclass
class ProofNode:
    """A node of a proof tree: a CQ label, children, and the edge operation.

    ``operation`` documents how the children were obtained from this
    node: ``"resolution"``, ``"specialization"``, ``"decomposition"``,
    or None for leaves.
    """

    label: ConjunctiveQuery
    children: List["ProofNode"] = field(default_factory=list)
    operation: Optional[str] = None

    def is_leaf(self) -> bool:
        return not self.children

    def descendants(self) -> Iterator["ProofNode"]:
        """This node and all nodes below it, pre-order."""
        yield self
        for child in self.children:
            yield from child.descendants()


class ProofTree:
    """A proof tree (T, λ, π) of a CQ w.r.t. a program."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        partition: Sequence[Sequence[Variable]],
        root: ProofNode,
    ):
        self.query = query
        self.partition = [list(block) for block in partition]
        self.root = root

    # -- construction ----------------------------------------------------------

    @staticmethod
    def root_label(
        query: ConjunctiveQuery, partition: Sequence[Sequence[Variable]]
    ) -> ConjunctiveQuery:
        """The label required of the root: ``Q(eq_π(x̄)) ← eq_π(atoms)``."""
        eq = eq_partition_substitution(partition)
        output = tuple(
            eq.apply_term(v) for v in query.output
        )
        if not all(isinstance(v, Variable) for v in output):
            raise ValueError("eq_π must map output variables to variables")
        return ConjunctiveQuery(
            output,  # type: ignore[arg-type]
            eq.apply_atoms(query.atoms),
            head_predicate=query.head_predicate,
        )

    @classmethod
    def trivial(
        cls,
        query: ConjunctiveQuery,
        partition: Optional[Sequence[Sequence[Variable]]] = None,
    ) -> "ProofTree":
        """The one-node proof tree (identity partition by default)."""
        if partition is None:
            partition = [[v] for v in dict.fromkeys(query.output)]
        return cls(query, partition, ProofNode(cls.root_label(query, partition)))

    # -- structure ---------------------------------------------------------

    def nodes(self) -> Iterator[ProofNode]:
        yield from self.root.descendants()

    def leaves(self) -> List[ProofNode]:
        return [n for n in self.nodes() if n.is_leaf()]

    def node_width(self) -> int:
        """``nwd(P)``: the largest label size over all nodes."""
        return max(node.label.width() for node in self.nodes())

    def is_linear(self) -> bool:
        """Each node has at most one child that is not a leaf."""
        for node in self.nodes():
            non_leaf_children = sum(
                1 for child in node.children if not child.is_leaf()
            )
            if non_leaf_children > 1:
                return False
        return True

    def induced_cq(self) -> ConjunctiveQuery:
        """The CQ induced by the tree: all leaf atoms under the root head."""
        atoms: List[Atom] = []
        for leaf in self.leaves():
            atoms.extend(leaf.label.atoms)
        unique = tuple(dict.fromkeys(atoms))
        root_output = self.root.label.output
        return ConjunctiveQuery(
            root_output, unique, head_predicate=self.query.head_predicate
        )

    # -- validation ----------------------------------------------------------

    def validate(self, program: Program) -> None:
        """Re-check every condition of Definition 4.6; raise on violation."""
        expected_root = self.root_label(self.query, self.partition)
        if canonical_form(
            self.root.label.atoms, self.root.label.output_variables()
        ) != canonical_form(
            expected_root.atoms, expected_root.output_variables()
        ) or self.root.label.output != expected_root.output:
            raise ValueError(
                "root label is not Q(eq_π(x̄)) ← eq_π(atoms(q))"
            )
        single_head = program.single_head()
        for node in self.nodes():
            if not node.children:
                continue
            if len(node.children) == 1:
                child = node.children[0]
                if self._is_ido_resolvent(node.label, child.label, single_head):
                    continue
                if is_specialization(node.label, child.label):
                    continue
                raise ValueError(
                    f"child of node labeled '{node.label}' is neither an IDO "
                    f"resolvent nor a specialization: '{child.label}'"
                )
            labels = [child.label for child in node.children]
            if not is_decomposition(node.label, labels):
                raise ValueError(
                    f"children of node labeled '{node.label}' do not form a "
                    "decomposition"
                )

    @staticmethod
    def _is_ido_resolvent(
        parent: ConjunctiveQuery,
        child: ConjunctiveQuery,
        program: Program,
    ) -> bool:
        """Does some σ ∈ Σ have an IDO resolvent of *parent* equal to *child*
        (up to renaming of non-output variables)?"""
        target = canonical_form(child.atoms, child.output_variables())
        if child.output != parent.output:
            return False
        for tgd in program:
            for resolvent in ido_resolvents(parent, tgd):
                form = canonical_form(
                    resolvent.query.atoms, resolvent.query.output_variables()
                )
                if form == target:
                    return True
        return False

    def __repr__(self) -> str:
        return (
            f"ProofTree(width={self.node_width()}, "
            f"nodes={sum(1 for _ in self.nodes())}, "
            f"linear={self.is_linear()})"
        )
