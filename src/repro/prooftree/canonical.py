"""Canonical renaming of conjunctive-query bodies.

Two CQ bodies that differ only in the names of their non-frozen
variables are the same object for every purpose in this package: proof
trees treat CQs "up to variable renaming" (the canonical renaming
``[p]`` of Section 6.1), and the deterministic simulation of the
Section 4.3 algorithm needs a finite state space, which it gets by
renaming variables into a fixed pool.

:func:`canonical_form` computes an exact canonical representative: the
lexicographically least sequence of atom *signatures* over all atom
orders, assigning canonical indices to variables in first-occurrence
order.  Frozen terms (constants, output variables, nulls) keep their
identity.  Ties between equal-signature atoms are resolved by
branch-and-bound, so the form is a true canonical invariant — two
bodies receive the same form iff they are equal up to a renaming of the
non-frozen variables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..core.atoms import Atom
from ..core.terms import Constant, Null, Term, Variable

__all__ = ["canonical_form", "canonical_variable", "is_canonical_variable"]

_CANON_PREFIX = "ᶜ"


def canonical_variable(index: int) -> Variable:
    """The *index*-th variable of the canonical pool."""
    return Variable(f"{_CANON_PREFIX}{index}")


def is_canonical_variable(variable: Variable) -> bool:
    """True iff *variable* came from :func:`canonical_variable`."""
    return variable.name.startswith(_CANON_PREFIX)


def _term_sort_key(term: Term) -> tuple:
    """A total order on concrete terms for deterministic signatures."""
    if isinstance(term, Constant):
        return (0, type(term.value).__name__, str(term.value))
    if isinstance(term, Null):
        return (1, "", str(term.label))
    return (2, "", term.name)


def _signature(
    atom: Atom, mapping: Dict[Variable, int], frozen: Set[Variable]
) -> tuple:
    """The signature of *atom* under a partial canonical renaming.

    Constants, nulls, and frozen variables are concrete; already-renamed
    variables show their canonical index; unmapped variables show their
    first-occurrence pattern *within the atom* so that, e.g.,
    ``R(x, y, x)`` and ``R(x, y, z)`` get different signatures.
    """
    local: Dict[Variable, int] = {}
    codes: List[tuple] = []
    for term in atom.args:
        if isinstance(term, Variable) and term not in frozen:
            if term in mapping:
                codes.append((1, mapping[term]))
            else:
                index = local.setdefault(term, len(local))
                codes.append((2, index))
        else:
            codes.append((0, _term_sort_key(term)))
    return (atom.predicate, len(atom.args), tuple(codes))


def _final_key(atom: Atom) -> tuple:
    """A total order on fully renamed atoms."""
    return (
        atom.predicate,
        len(atom.args),
        tuple(_term_sort_key(t) for t in atom.args),
    )


def canonical_form(
    atoms: Iterable[Atom], frozen: Iterable[Variable] = ()
) -> tuple[Atom, ...]:
    """Canonically rename and order *atoms* (set semantics: duplicates merge).

    Non-frozen variables are renamed into the canonical pool in
    first-use order along the chosen atom order; the atom order chosen
    is the one producing the lexicographically least key sequence, so
    the result is a canonical invariant of the body modulo renaming of
    non-frozen variables.
    """
    frozen_set: Set[Variable] = set(frozen)
    unique_atoms = list(dict.fromkeys(atoms))

    best_atoms: Optional[List[Atom]] = None
    best_keys: Optional[List[tuple]] = None

    def rename(atom: Atom, mapping: Dict[Variable, int]) -> Atom:
        new_args: List[Term] = []
        for term in atom.args:
            if isinstance(term, Variable) and term not in frozen_set:
                if term not in mapping:
                    mapping[term] = len(mapping)
                new_args.append(canonical_variable(mapping[term]))
            else:
                new_args.append(term)
        return Atom(atom.predicate, tuple(new_args))

    def search(
        remaining: List[Atom],
        mapping: Dict[Variable, int],
        acc_atoms: List[Atom],
        acc_keys: List[tuple],
    ) -> None:
        nonlocal best_atoms, best_keys
        if best_keys is not None and acc_keys:
            prefix = best_keys[: len(acc_keys)]
            if acc_keys > prefix:
                return  # this order can no longer beat the best
        if not remaining:
            if best_keys is None or acc_keys < best_keys:
                best_atoms = list(acc_atoms)
                best_keys = list(acc_keys)
            return
        signatures = [
            (_signature(atom, mapping, frozen_set), i)
            for i, atom in enumerate(remaining)
        ]
        minimum = min(sig for sig, _ in signatures)
        for sig, index in signatures:
            if sig != minimum:
                continue
            atom = remaining[index]
            new_mapping = dict(mapping)
            renamed = rename(atom, new_mapping)
            search(
                remaining[:index] + remaining[index + 1:],
                new_mapping,
                acc_atoms + [renamed],
                acc_keys + [_final_key(renamed)],
            )

    search(unique_atoms, {}, [], [])
    assert best_atoms is not None
    return tuple(best_atoms)
