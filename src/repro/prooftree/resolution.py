"""Chunk-based resolution: σ-resolvents and IDO resolvents (Section 4.1).

Given a CQ q(x̄) and a TGD σ (sharing no variables with q), a
*σ-resolvent* of q is a CQ ``q'(γ(x̄))`` with
``body(q') = γ((atoms(q) \\ S1) ∪ body(σ))`` for an MGCU (S1, S2, γ) of
q with σ (Definition 4.3).  A resolvent is **IDO** if the underlying
MGCU's substitution is the identity on the output variables of q — the
convention that output variables correspond to fixed constant values and
keep their names through resolution.

For IDO resolvents the class representatives of the unifier are
re-targeted so that a class containing an output variable maps onto that
output variable; a class containing two distinct output variables (or an
output variable and a constant) admits no IDO unifier and is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Set

from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.substitution import Substitution
from ..core.terms import Term, Variable
from ..core.tgd import TGD
from .chunk import ChunkUnifier, chunk_unifiers

__all__ = [
    "Resolvent",
    "resolvents",
    "ido_resolvents",
    "retarget_for_outputs",
    "rename_apart",
]


@dataclass(frozen=True)
class Resolvent:
    """A σ-resolvent together with the unifier that produced it."""

    query: ConjunctiveQuery
    unifier: ChunkUnifier
    tgd: TGD


def _classes_of(substitution: Substitution) -> Dict[Term, Set[Term]]:
    """Reconstruct the unification classes from an idempotent MGU."""
    classes: Dict[Term, Set[Term]] = {}
    for key in substitution:
        target = substitution[key]
        classes.setdefault(target, {target}).add(key)
    return classes


def retarget_for_outputs(
    substitution: Substitution, outputs: Set[Variable]
) -> Optional[Substitution]:
    """Rewrite class representatives so the MGU fixes output variables.

    Returns None when impossible: a class containing two distinct output
    variables, or an output variable together with a constant, cannot be
    fixed by any choice of representatives.
    """
    mapping: Dict[Term, Term] = {}
    for target, members in _classes_of(substitution).items():
        out_members = [m for m in members if m in outputs]
        rigid = target if not isinstance(target, Variable) else None
        if len(set(out_members)) > 1:
            return None
        if out_members and rigid is not None:
            return None
        representative: Term = out_members[0] if out_members else target
        for member in members:
            if member != representative and isinstance(member, Variable):
                mapping[member] = representative
    return Substitution(mapping)


def _resolvent_body(
    query_atoms: Sequence[Atom],
    unifier: ChunkUnifier,
    tgd: TGD,
    gamma: Substitution,
) -> tuple[Atom, ...]:
    """``γ((atoms(q) \\ S1) ∪ body(σ))`` with set semantics."""
    s1 = set(unifier.s1)
    kept = [a for a in query_atoms if a not in s1]
    raw = gamma.apply_atoms(tuple(kept) + tgd.body)
    return tuple(dict.fromkeys(raw))


def rename_apart(tgd: TGD, query: ConjunctiveQuery, base: str = "r") -> TGD:
    """Rename the TGD's variables away from every variable of *query*.

    Resolution requires q and σ to share no variables; a fixed suffix is
    not enough because chained resolutions re-introduce suffixed names.
    """
    query_names = {v.name for v in query.variables()}
    index = 0
    while True:
        candidate = tgd.rename(f"{base}{index}")
        if not ({v.name for v in candidate.variables()} & query_names):
            return candidate
        index += 1


def resolvents(
    query: ConjunctiveQuery,
    tgd: TGD,
) -> Iterator[Resolvent]:
    """Enumerate every σ-resolvent of *query* (not necessarily IDO).

    The TGD is renamed apart automatically.  The resolvent's output
    tuple is ``γ(x̄)`` — entries that become constants are dropped from
    the variable interface, matching
    :meth:`ConjunctiveQuery.apply`.
    """
    renamed = rename_apart(tgd, query)
    outputs = query.output_variables()
    for unifier in chunk_unifiers(query.atoms, outputs, renamed):
        gamma = unifier.gamma
        body = _resolvent_body(query.atoms, unifier, renamed, gamma)
        if not body:
            continue
        new_output = [
            v
            for v in (gamma.apply_term(o) for o in query.output)
            if isinstance(v, Variable)
        ]
        yield Resolvent(
            query=ConjunctiveQuery(
                tuple(new_output), body, head_predicate=query.head_predicate
            ),
            unifier=unifier,
            tgd=renamed,
        )


def ido_resolvents(
    query: ConjunctiveQuery,
    tgd: TGD,
) -> Iterator[Resolvent]:
    """Enumerate the IDO σ-resolvents of *query* (Definition 4.6(2)).

    The unifier is re-targeted to be the identity on output variables;
    unifiers for which that is impossible are skipped.
    """
    renamed = rename_apart(tgd, query)
    outputs = query.output_variables()
    for unifier in chunk_unifiers(query.atoms, outputs, renamed):
        gamma = retarget_for_outputs(unifier.gamma, outputs)
        if gamma is None:
            continue
        body = _resolvent_body(query.atoms, unifier, renamed, gamma)
        if not body:
            continue
        yield Resolvent(
            query=ConjunctiveQuery(
                query.output, body, head_predicate=query.head_predicate
            ),
            unifier=ChunkUnifier(unifier.s1, unifier.s2, gamma),
            tgd=renamed,
        )
