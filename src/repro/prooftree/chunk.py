"""Chunk unifiers and most general chunk unifiers (Definition 4.3).

A *chunk unifier* of a CQ q with a (single-head) TGD σ — q and σ sharing
no variables — is a triple (S1, S2, γ) with ∅ ⊂ S1 ⊆ atoms(q),
∅ ⊂ S2 ⊆ head(σ), and γ a unifier for S1 and S2 such that for every
existential variable x of σ occurring in S2:

1. γ(x) is not a constant, and
2. γ(x) = γ(y) implies y occurs in S1 and is not *shared* — where a
   variable y of S1 is shared if it is an output variable of q or occurs
   in ``atoms(q) \\ S1``.

Intuitively S1 is a "chunk" of the query that is resolved as a whole:
atoms that must all have been produced by the same application of σ in
the chase, because they would share an invented null.  The conditions
forbid unsound steps in which a shared variable silently loses its
connection to the rest of the query (the paper's ``R(x,y), S(y)``
example).

This module works with TGDs in single-head normal form (``S2`` is then
the full singleton head); multi-head TGDs should be normalized first via
:meth:`repro.core.program.Program.single_head`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Set

from ..core.atoms import Atom, atoms_variables
from ..core.substitution import Substitution
from ..core.terms import Variable
from ..core.tgd import TGD
from ..core.unification import UnionFind

__all__ = ["ChunkUnifier", "chunk_unifiers", "shared_variables"]


@dataclass(frozen=True)
class ChunkUnifier:
    """A most general chunk unifier (S1, S2, γ) of a CQ with a TGD."""

    s1: tuple[Atom, ...]
    s2: tuple[Atom, ...]
    gamma: Substitution


def shared_variables(
    query_atoms: Sequence[Atom],
    subset: Sequence[Atom],
    output_variables: Set[Variable],
) -> set[Variable]:
    """Variables of *subset* that are shared (Definition of Section 4.1).

    A variable y ∈ var(S) is shared if y is an output variable or occurs
    in ``atoms(q) \\ S``.
    """
    subset_list = list(subset)
    rest: list[Atom] = []
    pool = list(subset_list)
    for atom in query_atoms:
        if atom in pool:
            pool.remove(atom)
        else:
            rest.append(atom)
    rest_vars = atoms_variables(rest)
    return {
        v
        for v in atoms_variables(subset_list)
        if v in output_variables or v in rest_vars
    }


def _existential_conditions_hold(
    uf: UnionFind,
    existentials: Set[Variable],
    s1_variables: Set[Variable],
    shared: Set[Variable],
) -> bool:
    """Check conditions (1) and (2) of Definition 4.3 on the unifier."""
    classes = uf.classes()
    for z in existentials:
        root = uf.find(z)
        members = classes[root]
        rigid = uf.rigid_of(z)
        if rigid is not None:
            return False  # γ(z) would be a constant (or null)
        for member in members:
            if member == z:
                continue
            if not isinstance(member, Variable):
                return False
            if member not in s1_variables:
                return False  # unified with a head/frontier variable
            if member in shared:
                return False  # unified with a shared variable of q
    return True


def chunk_unifiers(
    query_atoms: Sequence[Atom],
    output_variables: Set[Variable],
    tgd: TGD,
    max_chunk: Optional[int] = None,
) -> Iterator[ChunkUnifier]:
    """Enumerate all MGCUs of the query with the (single-head) TGD.

    The TGD must already be renamed apart from the query.  ``max_chunk``
    optionally caps |S1| (completeness requires leaving it unbounded;
    the reasoner exposes it for experiments).
    """
    if len(tgd.head) != 1:
        raise ValueError(
            "chunk_unifiers expects single-head TGDs; normalize with "
            "Program.single_head() first"
        )
    head = tgd.head[0]
    existentials = {
        v for v in tgd.existential_variables() if v in head.variables()
    }
    candidates = [
        atom
        for atom in query_atoms
        if atom.predicate == head.predicate and atom.arity == head.arity
    ]
    limit = len(candidates) if max_chunk is None else min(max_chunk, len(candidates))

    for size in range(1, limit + 1):
        for subset in itertools.combinations(candidates, size):
            uf = UnionFind()
            consistent = True
            for atom in subset:
                for q_term, h_term in zip(atom.args, head.args):
                    if not uf.union(q_term, h_term):
                        consistent = False
                        break
                if not consistent:
                    break
            if not consistent:
                continue
            shared = shared_variables(query_atoms, subset, output_variables)
            s1_variables = atoms_variables(subset)
            if not _existential_conditions_hold(
                uf, existentials, s1_variables, shared
            ):
                continue
            yield ChunkUnifier(
                s1=tuple(subset), s2=(head,), gamma=uf.to_substitution()
            )
