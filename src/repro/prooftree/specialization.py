"""Query specialization (Definition 4.5).

A specialization of a CQ q(x̄) with atoms α1, ..., αn is a CQ

    Q(x̄, ȳ) ← ρ_z̄(α1, ..., αn)

where ȳ and z̄ are disjoint tuples of non-output variables of q and ρ_z̄
substitutes each variable of z̄ by a variable of x̄ ∪ ȳ.  In words: some
non-output variables are *promoted* to output variables (keeping their
names), and some others are *collapsed* onto (old or newly promoted)
output variables.

Specialization repairs the two incompletenesses the paper identifies:
(i) two output variables may denote the same constant, and (ii) a
non-output variable may denote a fixed constant — promoting it freezes
its name so a decomposition may split its occurrences.

In the concrete Section 4.3 algorithm, output variables are already
instantiated by constants, so specialization degenerates to substituting
non-output variables with constants of dom(D); that variant lives in
:mod:`repro.reasoning`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Sequence

from ..core.query import ConjunctiveQuery
from ..core.substitution import Substitution
from ..core.terms import Variable

__all__ = ["specialize", "enumerate_specializations", "is_specialization"]


def specialize(
    query: ConjunctiveQuery,
    promote: Sequence[Variable] = (),
    collapse: Optional[Mapping[Variable, Variable]] = None,
) -> ConjunctiveQuery:
    """Build the specialization Q(x̄, ȳ) ← ρ_z̄(atoms(q)).

    *promote* is ȳ (non-output variables that become outputs, appended
    in the given order); *collapse* is ρ_z̄ (each key a non-output
    variable not in ȳ, each value a variable of x̄ ∪ ȳ).
    """
    collapse = dict(collapse or {})
    outputs = query.output_variables()
    non_outputs = query.existential_variables()

    promote_set = set(promote)
    if len(promote) != len(promote_set):
        raise ValueError("promoted variables must be distinct")
    if not promote_set <= non_outputs:
        raise ValueError("promoted variables must be non-output variables of q")
    if promote_set & set(collapse):
        raise ValueError("ȳ and z̄ must be disjoint")
    for source, target in collapse.items():
        if source not in non_outputs:
            raise ValueError(f"{source} is not a non-output variable of q")
        if target not in outputs and target not in promote_set:
            raise ValueError(
                f"collapse target {target} is not an output or promoted variable"
            )
    rho = Substitution({k: v for k, v in collapse.items()})
    return ConjunctiveQuery(
        tuple(query.output) + tuple(promote),
        rho.apply_atoms(query.atoms),
        head_predicate=query.head_predicate,
    )


def enumerate_specializations(
    query: ConjunctiveQuery,
) -> Iterator[ConjunctiveQuery]:
    """All *single-step* specializations of *query*.

    Arbitrary specializations compose from single steps, each of which
    either promotes one non-output variable or collapses one non-output
    variable onto an existing output.  Enumerating single steps keeps
    the branching factor linear while preserving reachability of every
    specialization, which is what the proof-search algorithms need.
    """
    outputs = query.output
    for var in sorted(query.existential_variables(), key=lambda v: v.name):
        yield specialize(query, promote=(var,))
        for target in dict.fromkeys(outputs):
            yield specialize(query, collapse={var: target})


def is_specialization(
    parent: ConjunctiveQuery, child: ConjunctiveQuery
) -> bool:
    """Check whether *child* is a specialization of *parent* (Def. 4.5).

    The check reconstructs ȳ from the output tuples and then verifies
    that some substitution of the remaining non-output variables of the
    parent onto x̄ ∪ ȳ maps the parent's atoms onto the child's atoms.
    The reconstruction is syntactic — variable names are preserved by
    specialization, so no renaming search is needed.
    """
    k = len(parent.output)
    if tuple(child.output[:k]) != tuple(parent.output):
        return False
    promoted = tuple(child.output[k:])
    non_outputs = parent.existential_variables()
    if not set(promoted) <= non_outputs:
        return False

    allowed_targets = set(parent.output) | set(promoted)
    candidates = sorted(
        non_outputs - set(promoted), key=lambda v: v.name
    )

    # The substitution ρ is determined per variable; reconstruct it by
    # matching atoms positionally.  Because ρ only moves variables of z̄
    # and fixes everything else, each parent atom must map to a child
    # atom under a single consistent assignment.
    assignment: Dict[Variable, Variable] = {}

    def image(atom):
        return atom.predicate, tuple(
            assignment.get(t, t) if isinstance(t, Variable) else t
            for t in atom.args
        )

    child_atoms = {(a.predicate, a.args) for a in child.atoms}

    def backtrack(index: int) -> bool:
        if index == len(parent.atoms):
            return {image(a) for a in parent.atoms} == child_atoms
        atom = parent.atoms[index]
        free = [
            t
            for t in atom.args
            if isinstance(t, Variable)
            and t in candidates
            and t not in assignment
        ]
        if not free:
            return backtrack(index + 1)
        # try identity first, then each allowed target, per free variable
        var = free[0]
        for target in [var, *sorted(allowed_targets, key=lambda v: v.name)]:
            if target != var and target not in allowed_targets:
                continue
            assignment[var] = target
            if backtrack(index):
                return True
            del assignment[var]
        return False

    return backtrack(0)
