"""Benchmark scenarios: a program, a database, queries, and provenance.

The paper surveys TGD-sets from ChaseBench, iBench, iWarded, a
DBpedia-based benchmark, and industrial sources.  Those suites are not
redistributable, so :mod:`repro.benchsuite` generates synthetic
scenarios with the same structural features (**[SIM]**, DESIGN.md §5);
every generated scenario carries its suite label and the recursion
flavour it was planted with, so the E1 statistics can be validated
against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.instance import Database
from ..core.program import Program
from ..core.query import ConjunctiveQuery

__all__ = ["Scenario"]


@dataclass
class Scenario:
    """One benchmark scenario with its planted ground truth."""

    name: str
    suite: str                      # "iwarded" | "ibench" | "chasebench" | ...
    program: Program
    database: Database
    queries: List[ConjunctiveQuery] = field(default_factory=list)
    planted_recursion: str = "none"  # "none"|"linear"|"pwl"|"linearizable"|"nonpwl"
    meta: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"{self.suite}/{self.name}: {len(self.program)} TGDs, "
            f"{len(self.database)} facts, planted={self.planted_recursion}"
        )

    def key_space(self) -> tuple:
        """The scenario's addressable keys, for workload generation.

        Skewed traffic generators (:mod:`repro.workloads.generate`)
        sample query constants and update targets from this space.
        Families that know their key population export it explicitly
        via ``meta["key_space"]`` (the graph families: every vertex,
        including isolated ones); the fallback is every constant
        observed in the EDB, sorted for determinism.
        """
        exported = self.meta.get("key_space")
        if exported:
            return tuple(exported)
        return tuple(
            sorted(
                {
                    str(term)
                    for atom in self.database
                    for term in atom.args
                }
            )
        )
