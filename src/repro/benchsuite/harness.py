"""Scenario-matrix benchmark harness over the :mod:`repro.api` session
layer.

The paper's headline claims are empirical — piece-wise linear warded
programs evaluated in bounded space across the ChaseBench / iBench /
iWarded / DBpedia / industrial families — and this module is the one
command that measures them end-to-end: it takes a corpus (all five
generator families, sized by a ``scale`` knob), a set of engines (via
:class:`~repro.api.planner.Planner` dispatch), and a set of storage
backends, executes every cell through :class:`repro.api.Session`, and
records wall time, engine work counters, answer counts, and
per-component ``memory_report()`` bytes into one consolidated
:class:`~repro.benchsuite.report.SuiteReport`
(``benchmarks/results/BENCH_suite.json``).

Correctness rides along with the measurement: for every
(scenario, query) the harness cross-checks that all successful cells —
whatever engine and storage backend — report the identical
certain-answer set (:func:`~repro.benchsuite.report.check_agreement`).

Engine applicability is decided from the compiled program analysis,
mirroring the planner's own soundness rules:

* ``datalog`` only on full single-head programs (exact least fixpoint),
* ``pwl`` only on WARD ∩ PWL, ``ward`` on any warded program (the
  AND-OR search generalizes the linear one, so both run — and must
  agree — on piece-wise linear inputs),
* ``chase``/``network`` are always *attempted* under a scale-sized
  budget; a strict run that fails to saturate is recorded as a
  ``not-saturated`` cell and excluded from the agreement check (its
  prefix is sound but incomplete), never silently compared.

Drivers: ``python -m repro bench`` (CLI) and
``benchmarks/bench_suite_matrix.py`` (pytest / CI).
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import Session
from ..api.planner import ENGINES
from ..api.program import compile_program
from ..core.query import ConjunctiveQuery
from ..reasoning.answers import UnsupportedProgramError
from ..storage import BACKENDS
from .chasebench import generate_chasebench
from .dbpedia import generate_dbpedia
from .ibench import generate_ibench
from .industrial import generate_industrial
from .iwarded import generate_iwarded
from .report import CellResult, SuiteReport, answer_digest, check_agreement
from .scenario import Scenario

__all__ = [
    "SCALES",
    "SUITES",
    "DEFAULT_ENGINES",
    "suite_corpus",
    "applicable_engines",
    "run_cell",
    "run_matrix",
]

#: The five benchmark families the paper surveys (PAPER.md §1.2).
SUITES = ("iwarded", "ibench", "chasebench", "dbpedia", "industrial")

#: Engines the matrix exercises by default — every plannable engine.
DEFAULT_ENGINES = ENGINES

#: The ``--scale`` knob: per-family generator sizes plus the atom/step
#: budget handed to the strict materializing engines.  ``smoke`` is CI
#: sized (the whole matrix in well under a minute); ``small`` matches
#: the generators' defaults; ``medium`` doubles them.
SCALES: Dict[str, Dict[str, dict]] = {
    "smoke": {
        "iwarded": dict(vertices=8, edges=12),
        "ibench": dict(primitives=4, rows_per_relation=5),
        "chasebench": dict(entities=8),
        "dbpedia": dict(classes=8, entities=10, properties=3),
        "industrial": dict(companies=8, ownerships=12),
        "budget": dict(max_atoms=4000),
    },
    "small": {
        "iwarded": dict(vertices=12, edges=18),
        "ibench": dict(primitives=5, rows_per_relation=8),
        "chasebench": dict(entities=10),
        "dbpedia": dict(classes=12, entities=20, properties=4),
        "industrial": dict(companies=15, ownerships=25),
        "budget": dict(max_atoms=20000),
    },
    "medium": {
        "iwarded": dict(vertices=24, edges=40),
        "ibench": dict(primitives=8, rows_per_relation=16),
        "chasebench": dict(entities=20),
        "dbpedia": dict(classes=24, entities=40, properties=8),
        "industrial": dict(companies=30, ownerships=55),
        "budget": dict(max_atoms=50000),
    },
}


def suite_corpus(
    scale: str = "smoke",
    *,
    base_seed: int = 2019,
    suites: Sequence[str] = SUITES,
) -> List[Scenario]:
    """The matrix corpus: deterministic scenarios from all five families.

    Each family contributes piece-wise linear scenarios (so at least
    the two proof-tree engines run — and must agree — on every one),
    and the industrial family additionally contributes a full-Datalog
    control scenario so the semi-naive engine has exact cells too.
    """
    if scale not in SCALES:
        raise ValueError(
            f"unknown scale {scale!r}; choose one of {', '.join(SCALES)}"
        )
    for suite in suites:
        if suite not in SUITES:
            raise ValueError(
                f"unknown suite {suite!r}; choose from {', '.join(SUITES)}"
            )
    sizes = SCALES[scale]
    scenarios: List[Scenario] = []
    if "iwarded" in suites:
        scenarios.append(
            generate_iwarded(
                seed=base_seed, flavour="linear", **sizes["iwarded"]
            )
        )
        scenarios.append(
            generate_iwarded(
                seed=base_seed + 1, flavour="pwl", **sizes["iwarded"]
            )
        )
    if "ibench" in suites:
        scenarios.append(
            generate_ibench(
                seed=base_seed + 2, add_target_recursion=True,
                **sizes["ibench"],
            )
        )
    if "chasebench" in suites:
        scenarios.append(
            generate_chasebench(
                seed=base_seed + 3, recursion="linear", **sizes["chasebench"]
            )
        )
    if "dbpedia" in suites:
        scenarios.append(
            generate_dbpedia(seed=base_seed + 4, **sizes["dbpedia"])
        )
    if "industrial" in suites:
        scenarios.append(
            generate_industrial(
                seed=base_seed + 5, flavour="psc", **sizes["industrial"]
            )
        )
        scenarios.append(
            generate_industrial(
                seed=base_seed + 6, flavour="control", **sizes["industrial"]
            )
        )
    return scenarios


def applicable_engines(analysis, engines: Sequence[str]) -> List[str]:
    """The subset of *engines* that is sound-and-complete-capable here.

    ``chase`` and ``network`` stay in — they are exact *iff* they
    saturate, which :func:`run_cell` discovers by running them under a
    budget — while the class-gated engines are filtered up front.
    """
    selected: List[str] = []
    for engine in engines:
        if engine == "datalog" and not (
            analysis.full and analysis.single_head
        ):
            continue
        if engine == "pwl" and not (
            analysis.warded and analysis.piecewise_linear
        ):
            continue
        if engine == "ward" and not analysis.warded:
            continue
        selected.append(engine)
    return selected


def _resident_report(
    session: Session, compiled, plan
) -> Tuple[int, int, dict]:
    """Per-component resident (and spilled) bytes the cell left behind.

    Materializing engines are charged their saturated fixpoint store
    (the session cached it); the proof-tree engines hold bounded CQs
    instead of an instance, so their resident state is the shared EDB
    plus the star abstraction — measured with one visited-set so terms
    shared between the two are charged once.  The second figure is the
    disk-resident half (the sharded backend's evicted pages; zero for
    fully in-memory backends).
    """
    fixpoint = session.get_fixpoint(plan)
    if fixpoint is not None:
        report = fixpoint.memory_report()
        return (
            report.resident_bytes,
            report.spilled_bytes,
            dict(report.components),
        )
    seen: set = set()
    edb_report = session.edb.memory_report(seen)
    components = {
        f"edb.{name}": size for name, size in edb_report.components.items()
    }
    total = edb_report.total_bytes
    spilled = edb_report.spilled_bytes
    if plan.method in ("pwl", "ward"):
        abstraction = session.abstraction_for(compiled)
        abs_report = abstraction.memory_report(seen)
        components.update(
            (f"abstraction.{name}", size)
            for name, size in abs_report.components.items()
        )
        total += abs_report.total_bytes
        spilled += abs_report.spilled_bytes
    return total, spilled, components


def run_cell(
    scenario: Scenario,
    query: ConjunctiveQuery,
    engine: str,
    store: str,
    *,
    scale: str = "smoke",
    budget: Optional[dict] = None,
    compiled=None,
    exec_mode: str = "auto",
) -> CellResult:
    """Execute one matrix cell through a fresh :class:`Session`.

    A cold session per cell keeps the timing honest (no materialization
    or abstraction leaks in from a neighbouring cell) while the compile
    step stays outside the measured window — the matrix measures query
    answering, not parsing.  *compiled*, if given, is the scenario
    program's existing :class:`~repro.api.program.CompiledProgram`
    artifact, adopted instead of re-running the analysis per cell.
    """
    cell = CellResult(
        suite=scenario.suite,
        scenario=scenario.name,
        query=str(query),
        engine=engine,
        store=store,
        scale=scale,
    )
    session = Session(store=store)
    compiled = session.compile(
        compiled if compiled is not None else scenario.program
    )
    session.add_facts(scenario.database)

    kwargs: Dict[str, object] = {}
    if engine in ("chase", "network"):
        if budget is None:
            # Unknown scale labels (custom corpora) get the mid-size
            # budget rather than a KeyError.
            budget = SCALES.get(scale, SCALES["small"])["budget"]
        max_atoms = budget.get("max_atoms")
        steps_key = "max_steps" if engine == "chase" else "max_events"
        steps = budget.get(steps_key)
        if steps is None and max_atoms is not None:
            steps = 2 * max_atoms
        if max_atoms is not None:
            kwargs["max_atoms"] = max_atoms
        if steps is not None:
            kwargs[steps_key] = steps

    stream = session.query(
        query, program=compiled, method=engine, exec_mode=exec_mode,
        **kwargs,
    )
    start = perf_counter()
    try:
        answers = stream.to_set()
    except UnsupportedProgramError as error:
        cell.seconds = perf_counter() - start
        cell.status = "not-saturated"
        cell.detail = str(error)
        return cell
    except Exception as error:  # pragma: no cover — defensive
        cell.seconds = perf_counter() - start
        cell.status = "error"
        cell.detail = f"{type(error).__name__}: {error}"
        return cell
    cell.seconds = perf_counter() - start

    cell.answers = len(answers)
    cell.answer_digest = answer_digest(answers)
    cell.rounds = stream.stats.rounds
    cell.events = stream.stats.events
    cell.decided_tuples = stream.stats.decided_tuples
    cell.exec_mode = stream.stats.exec_mode
    cell.kernel_batches = stream.stats.kernel_batches
    cell.resident_bytes, cell.spilled_bytes, cell.memory = _resident_report(
        session, compiled, stream.plan
    )
    return cell


def run_matrix(
    scenarios: Optional[Sequence[Scenario]] = None,
    *,
    engines: Sequence[str] = DEFAULT_ENGINES,
    stores: Sequence[str] = BACKENDS,
    scale: str = "smoke",
    base_seed: int = 2019,
    suites: Sequence[str] = SUITES,
    queries_per_scenario: int = 1,
    progress=None,
    exec_mode: str = "auto",
) -> SuiteReport:
    """Run the full scenario × engine × store matrix.

    Without explicit *scenarios* the corpus comes from
    :func:`suite_corpus` (*scale*, *base_seed*, *suites*).  Engines a
    scenario's program class rules out are recorded as ``skipped``
    cells, so the emitted matrix is rectangular and the JSON says *why*
    a number is absent.  *progress*, if given, is called with each
    finished :class:`CellResult` (the CLI prints rows as they land).
    ``exec_mode`` is forwarded to every datalog cell (each cell's
    ``exec_mode`` field records what actually ran).
    """
    for engine in engines:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {', '.join(ENGINES)}"
            )
    for store in stores:
        if store not in BACKENDS:
            raise ValueError(
                f"unknown storage backend {store!r}; choose from "
                f"{', '.join(BACKENDS)}"
            )
    if queries_per_scenario < 1:
        raise ValueError("queries_per_scenario must be >= 1")
    if scenarios is None:
        scenarios = suite_corpus(scale, base_seed=base_seed, suites=suites)

    budget = SCALES[scale]["budget"] if scale in SCALES else None
    cells: List[CellResult] = []
    for scenario in scenarios:
        compiled = compile_program(scenario.program)
        analysis = compiled.analysis
        runnable = applicable_engines(analysis, engines)
        queries = scenario.queries[:queries_per_scenario]
        for query in queries:
            for engine in engines:
                # The proof-tree engines hold bounded CQs, never an
                # instance — the storage backend cannot change their
                # work or their footprint, so measure once and share
                # the cell across stores instead of re-running
                # byte-identical computations.
                shared: Optional[CellResult] = None
                for store in stores:
                    if engine not in runnable:
                        cell = CellResult(
                            suite=scenario.suite,
                            scenario=scenario.name,
                            query=str(query),
                            engine=engine,
                            store=store,
                            scale=scale,
                            status="skipped",
                            detail=(
                                f"engine {engine!r} is not exact for class "
                                f"{analysis.program_class}"
                            ),
                        )
                    elif shared is not None:
                        cell = replace(
                            shared,
                            store=store,
                            memory=dict(shared.memory),
                            detail=(
                                "store-independent engine: measurement "
                                f"shared from the {shared.store!r} cell"
                            ),
                        )
                    else:
                        cell = run_cell(
                            scenario, query, engine, store,
                            scale=scale, budget=budget, compiled=compiled,
                            # A forced exec mode binds the datalog
                            # engine only; the others have no kernel
                            # path and would refuse the plan.
                            exec_mode=(
                                exec_mode if engine == "datalog" else "auto"
                            ),
                        )
                        if engine in ("pwl", "ward") and cell.status == "ok":
                            # Only successful runs are shared: a failed
                            # cell keeps its diagnostic detail and is
                            # retried per store.
                            shared = cell
                    cells.append(cell)
                    if progress is not None:
                        progress(cell)

    report = SuiteReport(
        scale=scale,
        suites=tuple(dict.fromkeys(s.suite for s in scenarios)),
        engines=tuple(engines),
        stores=tuple(stores),
        cells=cells,
        meta={
            "base_seed": base_seed,
            "scenarios": [s.describe() for s in scenarios],
            "queries_per_scenario": queries_per_scenario,
            # The request is a cap, not a promise — scenarios ship
            # different query counts, so record what each one covered.
            "queries_covered": {
                s.name: min(queries_per_scenario, len(s.queries))
                for s in scenarios
            },
        },
    )
    report.disagreements = check_agreement(cells)
    return report
