"""Synthetic benchmark suites emulating the families the paper surveys
(ChaseBench, iBench, iWarded, DBpedia, industrial) — [SIM] substitutes,
see DESIGN.md §5 — plus the Section 1.2 recursion-statistics analyzer."""

from .chasebench import generate_chasebench
from .churn import ChurnScenario, generate_churn
from .dbpedia import example_33_program, generate_dbpedia
from .harness import (
    DEFAULT_ENGINES,
    SCALES,
    SUITES,
    applicable_engines,
    run_cell,
    run_matrix,
    suite_corpus,
)
from .ibench import generate_ibench
from .industrial import generate_industrial
from .iwarded import RECURSION_FLAVOURS, generate_iwarded
from .report import CellResult, SuiteReport, answer_digest, check_agreement
from .scenario import Scenario
from .stats import RecursionStatistics, classify_corpus, default_corpus

__all__ = [
    "Scenario",
    "ChurnScenario",
    "generate_churn",
    "generate_iwarded",
    "RECURSION_FLAVOURS",
    "generate_ibench",
    "generate_chasebench",
    "generate_dbpedia",
    "example_33_program",
    "generate_industrial",
    "classify_corpus",
    "RecursionStatistics",
    "default_corpus",
    "SCALES",
    "SUITES",
    "DEFAULT_ENGINES",
    "suite_corpus",
    "applicable_engines",
    "run_cell",
    "run_matrix",
    "CellResult",
    "SuiteReport",
    "answer_digest",
    "check_agreement",
]
