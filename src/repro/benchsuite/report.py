"""The consolidated benchmark artifact: ``BENCH_suite.json``.

One stable schema for the whole scenario matrix, replacing the
scattered per-benchmark ad-hoc JSON writers: every cell is one
(suite, scenario, query) × engine × store × scale measurement with
wall-clock seconds, resident bytes (per-component ``memory_report()``
accounting), the certain-answer count plus a content digest, and the
engine's work counters (semi-naive rounds, chase/network events,
proof-tree decisions).

:func:`check_agreement` is the correctness half of the artifact: for
each (suite, scenario, query) group, every *successful* cell —
whatever engine and storage backend produced it — must report the same
certain-answer set.  The digest (not just the count) is compared, so
two engines cannot agree by accident of cardinality.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "CellResult",
    "SuiteReport",
    "answer_digest",
    "check_agreement",
]

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = "repro/bench-suite/v1"

#: Cell statuses: ``ok`` cells enter the agreement check; ``skipped``
#: records an engine the program class rules out; ``not-saturated`` a
#: strict materializing run that hit its budget (sound prefix only);
#: ``error`` anything else — the pytest/CI entry fails on these.
CELL_STATUSES = ("ok", "skipped", "not-saturated", "error")


def answer_digest(answers: Iterable[Tuple]) -> str:
    """A content digest of a certain-answer set (order-independent).

    Terms and rows are length-prefixed so the encoding is injective:
    a constant containing ``,`` or a newline cannot make two different
    answer sets collide into one digest (which would silently defeat
    the agreement check).
    """
    rows = sorted(
        ";".join(
            f"{len(text)}:{text}"
            for text in (str(term) for term in answer)
        )
        for answer in answers
    )
    canonical = "\n".join(f"{len(row)}#{row}" for row in rows)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class CellResult:
    """One matrix cell: a (scenario, query) run on one engine × store."""

    suite: str
    scenario: str
    query: str
    engine: str
    store: str
    scale: str
    status: str = "ok"
    seconds: float = 0.0
    answers: int = 0
    answer_digest: str = ""
    rounds: int = 0
    events: int = 0
    decided_tuples: int = 0
    #: The exec dimension the datalog engine actually ran
    #: (``"kernel"``/``"interpret"``; empty off the datalog engine) and
    #: how many batch operations the compiled kernels executed.
    exec_mode: str = ""
    kernel_batches: int = 0
    resident_bytes: int = 0
    spilled_bytes: int = 0
    memory: Dict[str, int] = field(default_factory=dict)
    detail: str = ""

    @property
    def group_key(self) -> Tuple[str, str, str]:
        """Cells sharing this key must agree on the answer set."""
        return (self.suite, self.scenario, self.query)

    def as_dict(self) -> dict:
        return {
            "suite": self.suite,
            "scenario": self.scenario,
            "query": self.query,
            "engine": self.engine,
            "store": self.store,
            "scale": self.scale,
            "status": self.status,
            "seconds": self.seconds,
            "answers": self.answers,
            "answer_digest": self.answer_digest,
            "rounds": self.rounds,
            "events": self.events,
            "decided_tuples": self.decided_tuples,
            "exec_mode": self.exec_mode,
            "kernel_batches": self.kernel_batches,
            "resident_bytes": self.resident_bytes,
            "spilled_bytes": self.spilled_bytes,
            "memory": dict(self.memory),
            "detail": self.detail,
        }


def check_agreement(cells: Sequence[CellResult]) -> List[dict]:
    """Cross-engine/cross-store answer agreement over the matrix.

    Returns one record per (suite, scenario, query) whose successful
    cells disagree — empty means every engine and every backend told
    the same story.
    """
    groups: Dict[Tuple[str, str, str], List[CellResult]] = {}
    for cell in cells:
        if cell.status == "ok":
            groups.setdefault(cell.group_key, []).append(cell)
    disagreements: List[dict] = []
    for key, members in sorted(groups.items()):
        signatures = {(m.answers, m.answer_digest) for m in members}
        if len(signatures) > 1:
            disagreements.append(
                {
                    "suite": key[0],
                    "scenario": key[1],
                    "query": key[2],
                    "cells": [
                        {
                            "engine": m.engine,
                            "store": m.store,
                            "answers": m.answers,
                            "answer_digest": m.answer_digest,
                        }
                        for m in members
                    ],
                }
            )
    return disagreements


@dataclass
class SuiteReport:
    """The whole matrix run, serializable to ``BENCH_suite.json``."""

    scale: str
    suites: Tuple[str, ...]
    engines: Tuple[str, ...]
    stores: Tuple[str, ...]
    cells: List[CellResult] = field(default_factory=list)
    disagreements: List[dict] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def ok_cells(self) -> List[CellResult]:
        return [cell for cell in self.cells if cell.status == "ok"]

    @property
    def error_cells(self) -> List[CellResult]:
        return [cell for cell in self.cells if cell.status == "error"]

    @property
    def agreement_groups_checked(self) -> int:
        return len({cell.group_key for cell in self.ok_cells})

    def engines_ok_per_suite(self) -> Dict[str, set]:
        """Which engines produced at least one successful cell per suite."""
        covered: Dict[str, set] = {suite: set() for suite in self.suites}
        for cell in self.ok_cells:
            covered.setdefault(cell.suite, set()).add(cell.engine)
        return covered

    def stores_ok_per_suite(self) -> Dict[str, set]:
        covered: Dict[str, set] = {suite: set() for suite in self.suites}
        for cell in self.ok_cells:
            covered.setdefault(cell.suite, set()).add(cell.store)
        return covered

    def as_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "scale": self.scale,
            "suites": list(self.suites),
            "engines": list(self.engines),
            "stores": list(self.stores),
            "meta": dict(self.meta),
            "agreement": {
                "groups_checked": self.agreement_groups_checked,
                "disagreements": self.disagreements,
            },
            "cells": [cell.as_dict() for cell in self.cells],
        }

    def write(self, path) -> Path:
        """Serialize to *path*, creating parent directories."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    def summary_rows(self) -> List[Tuple[str, ...]]:
        """Printable (suite/scenario, engine, store, status, …) rows."""
        rows: List[Tuple[str, ...]] = []
        for cell in self.cells:
            rows.append(
                (
                    f"{cell.suite}/{cell.scenario}",
                    cell.engine,
                    cell.store,
                    cell.status,
                    f"{cell.seconds:.3f}" if cell.status == "ok" else "-",
                    str(cell.answers) if cell.status == "ok" else "-",
                    f"{cell.resident_bytes / 1024:.0f} KiB"
                    if cell.resident_bytes
                    else "-",
                )
            )
        return rows
