"""iBench-style data-exchange scenario generator (**[SIM]**).

iBench (Arocena et al., PVLDB 2015) generates schema-mapping scenarios
from primitive patterns: copy, projection, vertical/horizontal
partitioning, key invention (surrogate values via existentials), and
fusion joins.  Mappings are source-to-target TGDs — acyclic, hence
trivially piece-wise linear; their interest for this reproduction is
existential density and ward structure, plus occasionally a *target*
dependency adding mild (linear) recursion.

Each generated scenario composes a random multiset of those primitives
over fresh source relations.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.terms import Constant, Variable
from ..core.tgd import TGD
from ..lang.parser import parse_query
from .scenario import Scenario

__all__ = ["generate_ibench", "PRIMITIVES"]

PRIMITIVES = ("copy", "projection", "partition", "surrogate", "fusion")


def _vars(*names: str) -> tuple[Variable, ...]:
    return tuple(Variable(n) for n in names)


def _primitive_rules(kind: str, index: int) -> List[TGD]:
    """One schema-mapping primitive over fresh relations ``s{index}*``."""
    x, y, z, k = _vars("X", "Y", "Z", "K")
    src = f"ib_s{index}"
    tgt = f"ib_t{index}"
    if kind == "copy":
        return [TGD((Atom(src, (x, y)),), (Atom(tgt, (x, y)),), label="copy")]
    if kind == "projection":
        return [TGD((Atom(src, (x, y)),), (Atom(tgt, (x,)),), label="proj")]
    if kind == "partition":
        # Vertical partitioning with an invented join key.
        left, right = f"{tgt}_a", f"{tgt}_b"
        return [
            TGD(
                (Atom(src, (x, y)),),
                (Atom(left, (x, k)), Atom(right, (k, y))),
                label="partition",
            )
        ]
    if kind == "surrogate":
        # Key invention: every source tuple gets a surrogate identifier.
        return [
            TGD((Atom(src, (x, y)),), (Atom(tgt, (x, y, k)),), label="surrogate")
        ]
    if kind == "fusion":
        other = f"ib_s{index}_b"
        return [
            TGD(
                (Atom(src, (x, y)), Atom(other, (y, z))),
                (Atom(tgt, (x, z)),),
                label="fusion",
            )
        ]
    raise ValueError(f"unknown primitive {kind!r}")


def generate_ibench(
    *,
    seed: int,
    primitives: int = 5,
    rows_per_relation: int = 8,
    add_target_recursion: bool = False,
    name: Optional[str] = None,
) -> Scenario:
    """Generate a data-exchange scenario from random primitives.

    With ``add_target_recursion`` a linear target dependency (a
    transitive relation over the first target) is appended — iBench's
    "target tgds" option, still piece-wise linear.
    """
    rng = random.Random(seed)
    rules: List[TGD] = []
    chosen: List[str] = []
    for i in range(primitives):
        kind = rng.choice(PRIMITIVES)
        chosen.append(kind)
        rules.extend(_primitive_rules(kind, i))

    planted = "none"
    if add_target_recursion:
        x, y, z = _vars("X", "Y", "Z")
        tgt0 = "ib_t0"
        closure = "ib_closure"
        rules.append(
            TGD((Atom(tgt0, (x, y)),), (Atom(closure, (x, y)),), label="tbase")
        )
        rules.append(
            TGD(
                (Atom(tgt0, (x, y)), Atom(closure, (y, z))),
                (Atom(closure, (x, z)),),
                label="tstep",
            )
        )
        # guarantee tgt0 is binary: force primitive 0 to be a copy
        rules[0:1] = _primitive_rules("copy", 0)
        chosen[0] = "copy"
        planted = "linear"

    program = Program(rules, name=name or f"ibench-{seed}")
    database = Database()
    for i in range(primitives):
        for row in range(rows_per_relation):
            a = Constant(f"a{rng.randrange(rows_per_relation)}")
            b = Constant(f"b{rng.randrange(rows_per_relation)}")
            database.add(Atom(f"ib_s{i}", (a, b)))
            if chosen[i] == "fusion":
                c = Constant(f"c{rng.randrange(rows_per_relation)}")
                database.add(Atom(f"ib_s{i}_b", (b, c)))

    # An atomic probe query over some target relation, arity-correct.
    target = sorted(program.head_predicates())[0]
    arity = program.schema()[target]
    args = ", ".join(f"V{i}" for i in range(arity))
    queries = [parse_query(f"q(V0) :- {target}({args}).")]
    return Scenario(
        name=program.name,
        suite="ibench",
        program=program,
        database=database,
        queries=queries,
        planted_recursion=planted,
        meta={"primitives": chosen, "seed": seed},
    )
