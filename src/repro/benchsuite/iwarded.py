"""iWarded-style scenario generator (**[SIM]**).

iWarded is "a benchmark specifically targeted at warded sets of TGDs";
its distinctive feature is that its TGD-sets are *not warded by chance*:
they exercise existential quantification, harmful variables, and wards
deliberately.  This generator plants the same features with a chosen
recursion flavour:

* ``none`` — acyclic rule chains with existentials,
* ``linear`` — linear recursion over an extensional relation,
* ``pwl`` — mutually recursive predicate pairs where every rule has
  exactly one recursive body atom (piece-wise linear, beyond linear),
* ``linearizable`` — the transitive-closure doubling pattern that the
  Section 1.2 elimination procedure rewrites into linear form,
* ``nonpwl`` — rules with two mutually recursive body atoms outside the
  composition pattern (genuinely beyond PWL, still warded).

Every scenario embeds the warded existential core
``P(x) → ∃z R(x,z); R(x,y) → P(y)`` (the paper's running example of
dangerous-variable taming), so wardedness is exercised and not vacuous.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.terms import Variable
from ..core.tgd import TGD
from ..lang.parser import parse_query
from .graphs import add_binary_relation, add_unary_relation, random_edges
from .scenario import Scenario

__all__ = ["generate_iwarded", "RECURSION_FLAVOURS"]

RECURSION_FLAVOURS = ("none", "linear", "pwl", "linearizable", "nonpwl")


def _variables(*names: str) -> tuple[Variable, ...]:
    return tuple(Variable(n) for n in names)


def _existential_core(prefix: str) -> List[TGD]:
    """``P(x) → ∃z R(x,z); R(x,y) → P(y)`` with prefixed predicate names."""
    x, y, z = _variables("X", "Y", "Z")
    p, r = f"{prefix}P", f"{prefix}R"
    return [
        TGD((Atom(p, (x,)),), (Atom(r, (x, z)),), label=f"{prefix}invent"),
        TGD((Atom(r, (x, y)),), (Atom(p, (y,)),), label=f"{prefix}propagate"),
    ]


def _recursion_rules(flavour: str, prefix: str) -> List[TGD]:
    """The planted recursion block over EDB relation ``{prefix}e``."""
    x, y, z, w = _variables("X", "Y", "Z", "W")
    e, t, s = f"{prefix}e", f"{prefix}t", f"{prefix}s"
    base = TGD((Atom(e, (x, y)),), (Atom(t, (x, y)),), label="base")
    if flavour == "none":
        return [
            TGD((Atom(e, (x, y)),), (Atom(t, (x, y)),), label="copy"),
            TGD((Atom(t, (x, y)),), (Atom(s, (x, y)),), label="chain"),
        ]
    if flavour == "linear":
        return [
            base,
            TGD(
                (Atom(e, (x, y)), Atom(t, (y, z))),
                (Atom(t, (x, z)),),
                label="linear-step",
            ),
        ]
    if flavour == "pwl":
        # Two mutually recursive predicates plus an intensional helper
        # from a lower stratum (the Example 3.3 shape: the body joins a
        # recursive atom with another *intensional* but non-mutually-
        # recursive atom — piece-wise linear without being
        # intensionally linear).
        h = f"{prefix}h"
        return [
            base,
            TGD((Atom(e, (x, y)),), (Atom(h, (x, y)),), label="helper"),
            TGD(
                (Atom(t, (x, y)), Atom(h, (y, z))),
                (Atom(s, (x, z)),),
                label="pwl-fwd",
            ),
            TGD(
                (Atom(s, (x, y)), Atom(h, (y, z))),
                (Atom(t, (x, z)),),
                label="pwl-back",
            ),
        ]
    if flavour == "linearizable":
        return [
            base,
            TGD(
                (Atom(t, (x, y)), Atom(t, (y, z))),
                (Atom(t, (x, z)),),
                label="doubling",
            ),
        ]
    if flavour == "nonpwl":
        return [
            base,
            TGD(
                (Atom(t, (x, y)), Atom(s, (y, z))),
                (Atom(t, (x, z)),),
                label="mix",
            ),
            TGD(
                (Atom(t, (x, y)), Atom(t, (y, z))),
                (Atom(s, (x, z)),),
                label="cross",
            ),
        ]
    raise ValueError(f"unknown recursion flavour {flavour!r}")


def generate_iwarded(
    *,
    seed: int,
    flavour: str,
    vertices: int = 12,
    edges: int = 18,
    name: Optional[str] = None,
) -> Scenario:
    """Generate one iWarded-style scenario with the given recursion flavour."""
    rng = random.Random(seed)
    prefix = "iw_"
    rules = _recursion_rules(flavour, prefix) + _existential_core(prefix)
    program = Program(rules, name=name or f"iwarded-{flavour}-{seed}")

    database = Database()
    add_binary_relation(
        database, f"{prefix}e", random_edges(vertices, edges, rng)
    )
    seeds = sorted({f"n{rng.randrange(vertices)}" for _ in range(3)})
    add_unary_relation(database, f"{prefix}P", seeds)

    queries = [
        parse_query(f"q(X,Y) :- {prefix}t(X,Y)."),
        parse_query(f"q(X) :- {prefix}P(X)."),
    ]
    planted = {
        "none": "none",
        "linear": "linear",
        "pwl": "pwl",
        "linearizable": "linearizable",
        "nonpwl": "nonpwl",
    }[flavour]
    return Scenario(
        name=program.name,
        suite="iwarded",
        program=program,
        database=database,
        queries=queries,
        planted_recursion=planted,
        meta={
            "vertices": vertices,
            "edges": edges,
            "seed": seed,
            # Exported for skewed workload generation: every vertex,
            # not just the ones currently carrying edges.
            "key_space": [f"n{i}" for i in range(vertices)],
        },
    )
