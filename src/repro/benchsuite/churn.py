"""Churn scenario family: interleaved insert/retract/query streams.

The continuous-reasoning workload the incremental-maintenance layer
(:mod:`repro.incremental`) targets: a long-lived session over a fact
base that keeps changing under it — edges arriving and departing while
queries must stay exact.  A :class:`ChurnScenario` packages a base
:class:`~repro.benchsuite.scenario.Scenario` (a full, single-head
program: the maintainable fragment) with a deterministic stream of
:class:`~repro.incremental.ChangeSet` updates, each bounded to a churn
fraction of the extensional relation and mixing insertions with
retractions.

Drivers: ``benchmarks/bench_incremental_churn.py`` (incremental vs
recompute-from-scratch) and the property suite
(``tests/property/test_prop_incremental.py`` exercises random
interleavings; this module provides the seeded, benchmark-scale ones).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from ..core.atoms import Atom
from ..core.terms import Constant
from ..incremental import ChangeSet
from ..lang.parser import parse_program, parse_query
from .scenario import Scenario

__all__ = ["ChurnScenario", "generate_churn"]

#: The program under churn: linear transitive closure (a recursive
#: stratum maintained by DRed) plus two non-recursive strata maintained
#: by counting supports — every maintenance path is on the hot path.
_CHURN_RULES = """
    t(X,Y) :- e(X,Y).
    t(X,Z) :- e(X,Y), t(Y,Z).
    mutual(X,Y) :- t(X,Y), t(Y,X).
    reach(X) :- t(X,Y).
"""

_CHURN_QUERIES = (
    "q(X,Y) :- t(X,Y).",
    "q(X,Y) :- mutual(X,Y).",
    "q(X) :- reach(X).",
)


@dataclass
class ChurnScenario:
    """A base scenario plus a deterministic update stream."""

    scenario: Scenario
    steps: List[ChangeSet] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.scenario.name

    def describe(self) -> str:
        inserts = sum(len(step.inserts) for step in self.steps)
        retracts = sum(len(step.retracts) for step in self.steps)
        return (
            f"{self.scenario.describe()}; churn: {len(self.steps)} "
            f"update(s), +{inserts}/-{retracts} facts"
        )


def _edge(a: int, b: int) -> Atom:
    return Atom("e", (Constant(f"n{a}"), Constant(f"n{b}")))


def generate_churn(
    *,
    vertices: int = 128,
    edges: int = 256,
    clusters: int = 16,
    steps: int = 100,
    churn: float = 0.1,
    retract_fraction: float = 0.5,
    seed: int = 2019,
) -> ChurnScenario:
    """A clustered-graph churn stream, deterministic in *seed*.

    The edge relation is partitioned into *clusters* weakly-connected
    components (the shape of the paper's industrial ownership networks:
    many medium-sized company groups, not one giant graph), and each
    update batch churns edges of one cluster.  This is the workload
    incremental maintenance is *for* — updates whose consequences are
    local while the total materialization stays large; an adversarial
    single-SCC graph instead drives DRed's overdeletion toward the size
    of the whole closure and loses to recomputation (documented in
    docs/BENCHMARKS.md).

    Each update retracts and inserts live ``e`` edges; the combined
    batch size is at most ``churn * edges`` (the ≤10%% default), with
    *retract_fraction* of it retractions.  Retractions always target
    currently-present edges and insertions currently absent ones, so
    every operation is effective.
    """
    if not 0 < churn <= 1:
        raise ValueError(f"churn must be in (0, 1], got {churn}")
    if vertices % clusters:
        raise ValueError(
            f"vertices ({vertices}) must be divisible by clusters "
            f"({clusters})"
        )
    rng = random.Random(seed)
    size = vertices // clusters
    live: set[tuple] = set()

    def fresh_pair(cluster: int) -> tuple:
        base = cluster * size
        while True:
            a = base + rng.randrange(size)
            b = base + rng.randrange(size)
            if a != b and (a, b) not in live:
                return (a, b)

    for cluster in range(clusters):
        for _ in range(edges // clusters):
            live.add(fresh_pair(cluster))
    facts = " ".join(f"e(n{a},n{b})." for a, b in sorted(live))
    program, database = parse_program(
        facts + _CHURN_RULES,
        name=f"churn-v{vertices}-e{edges}-c{clusters}-s{seed}",
    )

    batch = max(1, int(churn * len(live)))
    retract_count = max(1, int(batch * retract_fraction))
    insert_count = max(1, batch - retract_count)
    stream: List[ChangeSet] = []
    for _ in range(steps):
        cluster = rng.randrange(clusters)
        mine = sorted(p for p in live if p[0] // size == cluster)
        outgoing = rng.sample(mine, min(retract_count, len(mine)))
        live.difference_update(outgoing)
        incoming = []
        for _ in range(insert_count):
            pair = fresh_pair(cluster)
            live.add(pair)
            incoming.append(pair)
        stream.append(
            ChangeSet.of(
                inserts=[_edge(a, b) for a, b in incoming],
                retracts=[_edge(a, b) for a, b in outgoing],
            )
        )

    scenario = Scenario(
        name=program.name,
        suite="churn",
        program=program,
        database=database,
        queries=[parse_query(q) for q in _CHURN_QUERIES],
        planted_recursion="linear",
        meta={
            "vertices": vertices,
            "edges": edges,
            "clusters": clusters,
            "steps": steps,
            "churn": churn,
            "retract_fraction": retract_fraction,
            "seed": seed,
            # The exported key space: every vertex name, isolated ones
            # included — workload generators sample keys from here
            # (Scenario.key_space), not from whichever vertices happen
            # to carry edges right now.
            "key_space": [f"n{i}" for i in range(vertices)],
        },
    )
    return ChurnScenario(scenario=scenario, steps=stream)
