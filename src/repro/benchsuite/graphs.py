"""Random relational data generators shared by the scenario builders."""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.terms import Constant

__all__ = [
    "random_edges",
    "chain_edges",
    "layered_edges",
    "add_binary_relation",
    "add_unary_relation",
]


def chain_edges(n: int, prefix: str = "n") -> List[Tuple[str, str]]:
    """A simple path n0 → n1 → ... → n_{n-1} (worst case for reachability)."""
    return [(f"{prefix}{i}", f"{prefix}{i+1}") for i in range(n - 1)]


def random_edges(
    n: int, m: int, rng: random.Random, prefix: str = "n"
) -> List[Tuple[str, str]]:
    """*m* distinct directed edges over *n* named vertices (no loops)."""
    edges: set[Tuple[str, str]] = set()
    attempts = 0
    while len(edges) < m and attempts < 50 * m:
        attempts += 1
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a != b:
            edges.add((f"{prefix}{a}", f"{prefix}{b}"))
    return sorted(edges)


def layered_edges(
    layers: int, width: int, rng: random.Random, density: float = 0.5,
    prefix: str = "v",
) -> List[Tuple[str, str]]:
    """A layered DAG: edges only between consecutive layers."""
    edges: List[Tuple[str, str]] = []
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                if rng.random() < density:
                    edges.append(
                        (f"{prefix}{layer}_{i}", f"{prefix}{layer+1}_{j}")
                    )
    return edges


def add_binary_relation(
    database: Database, predicate: str, pairs: Sequence[Tuple[str, str]]
) -> None:
    """Insert (a, b) pairs as facts of a binary predicate."""
    for a, b in pairs:
        database.add(Atom(predicate, (Constant(a), Constant(b))))


def add_unary_relation(
    database: Database, predicate: str, values: Sequence[str]
) -> None:
    """Insert values as facts of a unary predicate."""
    for value in values:
        database.add(Atom(predicate, (Constant(value),)))
