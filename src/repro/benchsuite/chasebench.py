"""ChaseBench-style scenario generator (**[SIM]**).

ChaseBench (Benedikt et al., PODS 2017) collects data-exchange and
query-answering scenarios — "doctors", "deep", LUBM-style ontologies —
characterized by source-to-target mappings plus *target* dependencies
with existentials that force real chase work.  This generator emulates
the "doctors"-like shape: entity relations mapped into a target schema
with invented identifiers, foreign-key-style target TGDs, and a
configurable amount of (linear or doubling) recursion in the target.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.terms import Constant, Variable
from ..core.tgd import TGD
from ..lang.parser import parse_query
from .scenario import Scenario

__all__ = ["generate_chasebench"]


def _vars(*names: str) -> tuple[Variable, ...]:
    return tuple(Variable(n) for n in names)


def generate_chasebench(
    *,
    seed: int,
    entities: int = 10,
    recursion: str = "linear",   # "none" | "linear" | "linearizable"
    name: Optional[str] = None,
) -> Scenario:
    """Generate a doctors-style schema-mapping scenario."""
    if recursion not in ("none", "linear", "linearizable"):
        raise ValueError(f"unsupported recursion flavour {recursion!r}")
    rng = random.Random(seed)
    x, y, z, w, k = _vars("X", "Y", "Z", "W", "K")

    doctor = "cb_doctor"          # (name, hospital)
    hospital = "cb_hospital"      # (hospital, city)
    works = "cb_worksAt"          # target: (doctor, hospital)
    employee = "cb_employee"      # target: (person, org, id!)
    org = "cb_org"                # target: (org,)
    refers = "cb_refers"          # (doctor, doctor)
    reachable = "cb_reachable"    # target closure of refers

    rules: List[TGD] = [
        # ST mappings with key invention.
        TGD((Atom(doctor, (x, y)),), (Atom(works, (x, y)),), label="st1"),
        TGD(
            (Atom(doctor, (x, y)),),
            (Atom(employee, (x, y, k)),),
            label="st2",
        ),
        TGD((Atom(hospital, (x, y)),), (Atom(org, (x,)),), label="st3"),
        # Target dependency: every workplace is an organization with
        # an (invented) registration.
        TGD((Atom(works, (x, y)),), (Atom(org, (y,)),), label="t1"),
        TGD(
            (Atom(org, (x,)),),
            (Atom(employee, (k, x, w)),),
            label="t2-foreign-key",
        ),
    ]

    planted = "none"
    if recursion in ("linear", "linearizable"):
        rules.append(
            TGD((Atom(refers, (x, y)),), (Atom(reachable, (x, y)),), label="rbase")
        )
        if recursion == "linear":
            rules.append(
                TGD(
                    (Atom(refers, (x, y)), Atom(reachable, (y, z))),
                    (Atom(reachable, (x, z)),),
                    label="rstep",
                )
            )
            planted = "linear"
        else:
            rules.append(
                TGD(
                    (Atom(reachable, (x, y)), Atom(reachable, (y, z))),
                    (Atom(reachable, (x, z)),),
                    label="rdouble",
                )
            )
            planted = "linearizable"

    program = Program(rules, name=name or f"chasebench-{recursion}-{seed}")
    database = Database()
    hospitals = [f"h{i}" for i in range(max(2, entities // 3))]
    cities = [f"city{i}" for i in range(3)]
    for i in range(entities):
        database.add(
            Atom(
                doctor,
                (Constant(f"doc{i}"), Constant(rng.choice(hospitals))),
            )
        )
    for h in hospitals:
        database.add(Atom(hospital, (Constant(h), Constant(rng.choice(cities)))))
    for _ in range(entities):
        a, b = rng.randrange(entities), rng.randrange(entities)
        if a != b:
            database.add(
                Atom(refers, (Constant(f"doc{a}"), Constant(f"doc{b}")))
            )

    queries = [
        parse_query(f"q(X) :- {org}(X)."),
        parse_query(f"q(X,Y) :- {reachable}(X,Y)."),
    ]
    return Scenario(
        name=program.name,
        suite="chasebench",
        program=program,
        database=database,
        queries=queries,
        planted_recursion=planted,
        meta={"entities": entities, "seed": seed},
    )
