"""Recursion statistics over a scenario corpus (the Section 1.2 claim).

The paper reports that across its benchmarks "approximately 70% of the
TGD-sets use recursion in [the piece-wise linear] way: approximately 55%
of the TGD-sets directly use the above type of recursion, while 15% can
be transformed into warded sets of TGDs that use recursion as explained
above" via the standard elimination of unnecessary non-linear recursion.

:func:`classify_corpus` measures exactly those three buckets over a
scenario corpus with the package's own analyzers (Definition 4.1
membership and the Section 1.2 linearization), and
:func:`default_corpus` builds a corpus whose *suite mixture* mirrors the
benchmark families the paper lists; the E1 benchmark then checks that
the measured fractions land in the reported bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.linearization import linearize
from ..analysis.piecewise import is_piecewise_linear
from ..analysis.wardedness import is_warded
from .chasebench import generate_chasebench
from .dbpedia import generate_dbpedia
from .ibench import generate_ibench
from .industrial import generate_industrial
from .iwarded import generate_iwarded
from .scenario import Scenario

__all__ = ["RecursionStatistics", "classify_corpus", "default_corpus"]


@dataclass
class RecursionStatistics:
    """The three Section 1.2 buckets (plus totals and sanity counters)."""

    total: int
    direct_pwl: int
    linearizable: int
    beyond: int
    warded: int

    @property
    def direct_fraction(self) -> float:
        return self.direct_pwl / self.total if self.total else 0.0

    @property
    def linearizable_fraction(self) -> float:
        return self.linearizable / self.total if self.total else 0.0

    @property
    def pwl_fraction(self) -> float:
        """The headline "~70%" number: direct + linearizable."""
        return self.direct_fraction + self.linearizable_fraction

    def rows(self) -> List[tuple[str, int, float]]:
        """Printable (bucket, count, fraction) rows."""
        return [
            ("directly piece-wise linear", self.direct_pwl, self.direct_fraction),
            ("piece-wise linear after elimination", self.linearizable,
             self.linearizable_fraction),
            ("beyond piece-wise linear", self.beyond,
             self.beyond / self.total if self.total else 0.0),
        ]


def classify_corpus(scenarios: Sequence[Scenario]) -> RecursionStatistics:
    """Measure the three recursion buckets with the package analyzers."""
    direct = 0
    linearizable = 0
    beyond = 0
    warded = 0
    for scenario in scenarios:
        program = scenario.program
        if is_warded(program):
            warded += 1
        if is_piecewise_linear(program):
            direct += 1
        else:
            result = linearize(program)
            if result.piecewise_linear:
                linearizable += 1
            else:
                beyond += 1
    return RecursionStatistics(
        total=len(scenarios),
        direct_pwl=direct,
        linearizable=linearizable,
        beyond=beyond,
        warded=warded,
    )


def default_corpus(base_seed: int = 2019, scale: int = 2) -> List[Scenario]:
    """A corpus mirroring the paper's benchmark-family mixture.

    Per ``scale`` unit the corpus contains 19 scenarios: 6 iWarded
    (mixed flavours, recursion-heavy), 4 iBench (data exchange, little
    recursion), 4 ChaseBench (mappings + mild recursion), 2 DBpedia
    (ontology, PWL), 3 industrial (graph analytics, mixed) — a mixture
    calibrated so the planted ground truth sits near the paper's
    55% direct / 15% after-elimination / 30% beyond split.
    """
    scenarios: List[Scenario] = []
    seed = base_seed
    for _ in range(scale):
        for flavour in ("linear", "pwl", "linearizable", "nonpwl", "nonpwl",
                        "nonpwl"):
            scenarios.append(generate_iwarded(seed=seed, flavour=flavour))
            seed += 1
        for i in range(4):
            scenarios.append(
                generate_ibench(seed=seed, add_target_recursion=(i % 2 == 0))
            )
            seed += 1
        for recursion in ("none", "linear", "linearizable", "linearizable"):
            scenarios.append(generate_chasebench(seed=seed, recursion=recursion))
            seed += 1
        for _ in range(2):
            scenarios.append(generate_dbpedia(seed=seed))
            seed += 1
        for flavour in ("psc", "nonpwl", "nonpwl"):
            scenarios.append(generate_industrial(seed=seed, flavour=flavour))
            seed += 1
    return scenarios
