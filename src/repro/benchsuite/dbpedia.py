"""DBpedia-style ontology scenario generator (**[SIM]**).

The paper's DBpedia-based benchmark reasons over an ontology with class
hierarchies, property restrictions, and inverse properties — the OWL 2
QL entailment fragment that Example 3.3 distills into six warded TGDs.
This generator instantiates exactly that rule shape over a random class
DAG and random instance data: the program is the paper's Example 3.3
(modulo predicate naming), which is warded and piece-wise linear; the
database is a synthetic "knowledge graph" of typed entities.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.terms import Constant
from ..lang.parser import parse_program, parse_query
from .scenario import Scenario

__all__ = ["generate_dbpedia", "example_33_program"]

_EXAMPLE_33 = """
    subClassStar(X, Y) :- subClass(X, Y).
    subClassStar(X, Z) :- subClassStar(X, Y), subClass(Y, Z).
    type(X, Z)         :- type(X, Y), subClassStar(Y, Z).
    triple(X, Z, W)    :- type(X, Y), restriction(Y, Z).
    triple(Z, W, X)    :- triple(X, Y, Z), inverse(Y, W).
    type(X, W)         :- triple(X, Y, Z), restriction(W, Y).
"""


def example_33_program() -> Program:
    """The paper's Example 3.3 TGD set (OWL 2 QL entailment core).

    The fourth rule invents a ``w`` (the object of the implied
    property), making ``triple`` positions affected; the ``type`` and
    ``triple`` atoms act as wards exactly as the paper describes.
    """
    program, facts = parse_program(_EXAMPLE_33, name="example-3.3")
    assert len(facts) == 0
    return program


def generate_dbpedia(
    *,
    seed: int,
    classes: int = 12,
    entities: int = 20,
    properties: int = 4,
    name: Optional[str] = None,
) -> Scenario:
    """Random ontology instance under the Example 3.3 rule set."""
    rng = random.Random(seed)
    program = example_33_program()
    database = Database()

    class_names = [f"C{i}" for i in range(classes)]
    # Random forest-shaped subclass hierarchy: each class except the
    # roots picks a parent among earlier classes.
    for i in range(1, classes):
        if rng.random() < 0.8:
            parent = rng.randrange(i)
            database.add(
                Atom(
                    "subClass",
                    (Constant(class_names[i]), Constant(class_names[parent])),
                )
            )
    property_names = [f"prop{i}" for i in range(properties)]
    for prop in property_names:
        if rng.random() < 0.7:
            database.add(
                Atom("inverse", (Constant(prop), Constant(f"{prop}_inv")))
            )
        restricted = rng.choice(class_names)
        database.add(
            Atom("restriction", (Constant(restricted), Constant(prop)))
        )
    for i in range(entities):
        database.add(
            Atom(
                "type",
                (Constant(f"e{i}"), Constant(rng.choice(class_names))),
            )
        )

    queries = [
        parse_query("q(X, Z) :- type(X, Z)."),
        parse_query("q(X, Y) :- subClassStar(X, Y)."),
    ]
    return Scenario(
        name=name or f"dbpedia-{seed}",
        suite="dbpedia",
        program=program,
        database=database,
        queries=queries,
        planted_recursion="pwl",
        meta={"classes": classes, "entities": entities, "seed": seed},
    )
