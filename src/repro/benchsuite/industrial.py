"""Industrial-style scenario generator (**[SIM]**).

The Vadalog papers motivate the system with financial knowledge-graph
scenarios from the paper's industrial partners — company ownership and
control ("person of significant control"), counterparty exposure, and
similar link-analysis workloads.  This generator produces the classic
*company control* scenario:

* ``own(x, y)`` — extensional ownership edges between companies;
* ``control(x, y)`` — x controls y: directly by ownership, or
  transitively through controlled companies (linear recursion);
* a PSC variant adds existential officers: every controlled company has
  a significant controller record with an invented case identifier;
* the ``nonpwl`` variant models *joint control* — control established
  by combining two controlled intermediaries — which needs two
  mutually recursive body atoms (beyond PWL, still warded).
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.atoms import Atom
from ..core.instance import Database
from ..core.program import Program
from ..core.terms import Variable
from ..core.tgd import TGD
from ..lang.parser import parse_query
from .graphs import add_binary_relation, random_edges
from .scenario import Scenario

__all__ = ["generate_industrial"]


def _vars(*names: str) -> tuple[Variable, ...]:
    return tuple(Variable(n) for n in names)


def generate_industrial(
    *,
    seed: int,
    companies: int = 15,
    ownerships: int = 25,
    flavour: str = "psc",        # "control" | "psc" | "nonpwl"
    name: Optional[str] = None,
) -> Scenario:
    """Generate a company-control knowledge-graph scenario."""
    if flavour not in ("control", "psc", "nonpwl"):
        raise ValueError(f"unsupported flavour {flavour!r}")
    rng = random.Random(seed)
    x, y, z, k = _vars("X", "Y", "Z", "K")
    own, control, psc = "ind_own", "ind_control", "ind_psc"

    rules: List[TGD] = [
        TGD((Atom(own, (x, y)),), (Atom(control, (x, y)),), label="direct"),
        TGD(
            (Atom(control, (x, y)), Atom(own, (y, z))),
            (Atom(control, (x, z)),),
            label="transitive",
        ),
    ]
    planted = "linear"
    if flavour == "psc":
        rules.append(
            TGD(
                (Atom(control, (x, y)),),
                (Atom(psc, (x, y, k)),),
                label="psc-record",
            )
        )
        planted = "linear"
    if flavour == "nonpwl":
        joint = "ind_joint"
        rules.append(
            TGD(
                (Atom(control, (x, y)), Atom(control, (x, z)), Atom(own, (y, z))),
                (Atom(joint, (x, z)),),
                label="joint",
            )
        )
        rules.append(
            TGD((Atom(joint, (x, y)),), (Atom(control, (x, y)),), label="lift")
        )
        planted = "nonpwl"

    program = Program(rules, name=name or f"industrial-{flavour}-{seed}")
    database = Database()
    add_binary_relation(
        database, own, random_edges(companies, ownerships, rng, prefix="co")
    )

    queries = [
        parse_query(f"q(X,Y) :- {control}(X,Y)."),
    ]
    return Scenario(
        name=program.name,
        suite="industrial",
        program=program,
        database=database,
        queries=queries,
        planted_recursion=planted,
        meta={"companies": companies, "flavour": flavour, "seed": seed},
    )
