"""Term interning.

A :class:`TermTable` maps ground terms (constants and labeled nulls) to
dense integer ids and back.  Interning is what makes columnar storage
space-efficient: each distinct term is stored once, facts become tuples
of small integers, and term equality during index probes becomes
integer equality.

Ids are dense and stable: the *n*-th distinct term interned receives id
``n``, and decoding returns the exact object first interned (so, e.g.,
a labeled null keeps the ``depth`` bookkeeping it was created with).

One table may be *shared* by several stores (a columnar base and its
overlay delta, or every shard of a sharded store): ids are global to
the table, not to any holder, so rows written by one holder decode
identically through another.  Sharing is what keeps the interning cost
a one-time charge — ``memory_report()`` with a shared visited-set
counts a shared table exactly once.  The intern path is made
thread-safe for that reason: a frozen base's table may still grow
through the mutable delta layered above it.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Set

from ..core.terms import Term
from .memory import deep_sizeof

__all__ = ["TermTable"]


class TermTable:
    """A bidirectional term ↔ integer-id dictionary."""

    __slots__ = ("_ids", "_terms", "_lock")

    def __init__(self) -> None:
        self._ids: Dict[Term, int] = {}
        self._terms: List[Term] = []
        self._lock = threading.Lock()

    def intern(self, term: Term) -> int:
        """The id of *term*, assigning the next dense id if unseen."""
        tid = self._ids.get(term)
        if tid is None:
            # Double-checked: the lock is paid only on a miss, and two
            # racing holders of a shared table agree on the id.
            with self._lock:
                tid = self._ids.get(term)
                if tid is None:
                    tid = len(self._terms)
                    self._terms.append(term)
                    self._ids[term] = tid
        return tid

    def intern_many(self, terms: Iterable[Term]) -> List[int]:
        """Ids for *terms* in order, interning unseen ones in bulk.

        Equivalent to ``[self.intern(t) for t in terms]`` — same ids,
        same assignment order for unseen terms — but the lock is taken
        once for the whole batch of misses instead of once per miss,
        which is what makes bulk loading and kernel-side head
        construction cheap on a shared table.
        """
        ids = self._ids
        resolved: List[int] = []
        pending: List[tuple[int, Term]] = []
        for position, term in enumerate(terms):
            tid = ids.get(term)
            resolved.append(tid)
            if tid is None:
                pending.append((position, term))
        if pending:
            with self._lock:
                for position, term in pending:
                    tid = ids.get(term)
                    if tid is None:
                        tid = len(self._terms)
                        self._terms.append(term)
                        ids[term] = tid
                    resolved[position] = tid
        return resolved

    def id_of(self, term: Term) -> Optional[int]:
        """The id of *term*, or None if it was never interned."""
        return self._ids.get(term)

    def term(self, tid: int) -> Term:
        """The term with id *tid* (the object first interned)."""
        return self._terms[tid]

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def measured_bytes(self, seen: Set[int]) -> int:
        """Deep size of the table, shared-``seen`` accounting."""
        return deep_sizeof(self._ids, seen) + deep_sizeof(self._terms, seen)

    def __repr__(self) -> str:
        return f"TermTable({len(self)} terms)"
