"""Pluggable fact-storage backends (the record-manager layer).

The engines — chase runner, operator network, semi-naive evaluation —
are written against the :class:`FactStore` interface and accept a
``store=`` argument naming a backend:

* ``"instance"`` — :class:`repro.core.instance.Instance`, the original
  object-set representation with eager per-(position, term) indexes;
* ``"columnar"`` — :class:`ColumnarStore`, interned term-id tuples with
  lazy per-(predicate, position) indexes and an LRU probe cache;
* ``"delta"`` — :class:`DeltaOverlay` over a columnar base: a small
  writable delta above a frozen base, with ``promote()`` merging;
* ``"sharded"`` — :class:`ShardedStore`, relations hash-partitioned
  into shards kept resident under a byte budget, cold shards spilled
  to disk (out-of-core; see :mod:`repro.storage.sharded`).

All backends produce identical answers (the property suite asserts
this); they differ in space and probe cost, which
:meth:`FactStore.memory_report` makes measurable.
"""

from __future__ import annotations

from typing import Callable, Iterable, Union

from ..core.atoms import Atom
from .base import FactStore, FrozenStoreError, MemoryReport
from .columnar import ColumnarStore
from .delta import DeltaOverlay
from .interning import TermTable
from .memory import deep_sizeof, traced_peak
from .sharded import (
    ShardedStore,
    SpillPager,
    StateDirectory,
    sharded_store_factory,
)

__all__ = [
    "FactStore",
    "FrozenStoreError",
    "MemoryReport",
    "ColumnarStore",
    "DeltaOverlay",
    "ShardedStore",
    "SpillPager",
    "StateDirectory",
    "sharded_store_factory",
    "TermTable",
    "deep_sizeof",
    "traced_peak",
    "BACKENDS",
    "StoreChoice",
    "make_store",
]

#: Backend names accepted by ``make_store`` and every ``store=``
#: argument.  "sharded" is appended last: error messages render this
#: tuple, and several tests pin the historical prefix.
BACKENDS = ("instance", "columnar", "delta", "sharded")

StoreChoice = Union[str, FactStore, Callable[[], FactStore]]


def make_store(store: StoreChoice = "instance", atoms: Iterable[Atom] = ()) -> FactStore:
    """Build a fact store from a backend name, factory, or instance.

    * a backend name from :data:`BACKENDS` builds a fresh store seeded
      with *atoms* (for ``"delta"`` the seed becomes the frozen base);
    * a callable is invoked to produce an empty store, then seeded;
    * an existing :class:`FactStore` is seeded in place and returned.
    """
    if isinstance(store, FactStore):
        store.add_all(atoms)
        return store
    if callable(store):
        built = store()
        built.add_all(atoms)
        return built
    if store == "instance":
        from ..core.instance import Instance

        return Instance(atoms)
    if store == "columnar":
        return ColumnarStore(atoms)
    if store == "delta":
        return DeltaOverlay(ColumnarStore(atoms))
    if store == "sharded":
        return ShardedStore(atoms)
    raise ValueError(
        f"unknown storage backend {store!r}; expected one of {BACKENDS}"
    )
