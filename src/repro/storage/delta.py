"""Delta-overlay storage.

:class:`DeltaOverlay` layers a small writable *delta* store over a
frozen *base* store.  This is the shape delta-oriented evaluation
actually wants: semi-naive rounds and the operator network's delta
streams read the union but only ever write the (small) top layer, and
:meth:`DeltaOverlay.promote` merges the delta into the base at a round
boundary.  The streaming-Vadalog architecture builds its recursion
handling on exactly this base/delta split.

Both layers are themselves :class:`~repro.storage.base.FactStore`
instances, so overlays compose with any backend (columnar base under an
instance delta, etc.).  The base is treated as frozen by convention —
the overlay never writes to it outside ``promote()`` — but it is not
copied, so constructing an overlay over a large base is O(1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from ..core.atoms import Atom
from ..core.terms import Term
from .base import FactStore, MemoryReport
from .columnar import ColumnarStore
from .memory import deep_sizeof

__all__ = ["DeltaOverlay"]


class DeltaOverlay(FactStore):
    """A writable delta layered over a frozen base store.

    New atoms (not present in either layer) land in the delta;
    ``promote()`` merges the delta into the base and starts a fresh one.
    """

    backend_name = "delta"

    def __init__(
        self,
        base: Optional[FactStore] = None,
        atoms: Iterable[Atom] = (),
    ):
        self._base = base if base is not None else ColumnarStore()
        self._delta = self._base.fresh()
        # Shadow accounting: how many delta atoms are *also* in the base
        # (possible because the base is frozen only by convention), with
        # the layer lengths the count was valid for.  add() keeps the
        # key current on the fast path; any mutation that bypasses the
        # overlay changes a layer length and forces a recount.
        self._overlap_count = 0
        self._overlap_key: Optional[tuple[int, int]] = (len(self._base), 0)
        # Base-aware deletion: the base is frozen, so retracting one of
        # its atoms records a tombstone that every base-side read path
        # filters; ``promote()`` applies tombstones to the base for
        # real.  Invariant (kept by add/discard): a tombstoned atom is
        # never simultaneously in the delta.
        self._tombstones: set[Atom] = set()
        self._dead_count = 0
        self._dead_key: Optional[tuple[int, int]] = (len(self._base), 0)
        self.promotions = 0
        self.add_all(atoms)

    @property
    def base(self) -> FactStore:
        """The frozen lower layer."""
        return self._base

    @property
    def delta(self) -> FactStore:
        """The writable upper layer (atoms added since the last promote)."""
        return self._delta

    # -- mutation ----------------------------------------------------------

    def add(self, atom: Atom) -> bool:
        self._check_mutable()
        if atom in self._tombstones:
            # Re-asserting a retracted base atom resurrects it: drop
            # the tombstone and the base copy shows through again.
            self._tombstones.discard(atom)
            self._dead_key = None  # force a recount on the next read
            if atom in self._base:
                return True
            # Dangling tombstone (base mutated behind our back): fall
            # through and store the atom in the delta like any other.
        if atom in self._base:
            return False
        added = self._delta.add(atom)
        if added and self._overlap_key == (
            len(self._base), len(self._delta) - 1
        ):
            # Both layers were exactly as the cached count last saw
            # them, and the new delta atom is not in the base: the
            # count stays valid for the grown delta.  Any other shape
            # means a layer was mutated behind the overlay's back, and
            # the stale key forces a recount on the next read.
            self._overlap_key = (self._overlap_key[0], len(self._delta))
        return added

    def _overlap(self) -> int:
        """How many delta atoms the base shadows (cached, recounted
        whenever either layer was mutated behind the overlay's back)."""
        key = (len(self._base), len(self._delta))
        if key != self._overlap_key:
            self._overlap_count = sum(
                1 for atom in self._delta if atom in self._base
            )
            self._overlap_key = key
        return self._overlap_count

    def discard(self, atom: Atom) -> bool:
        """Remove *atom* from the overlay's visible set.

        A delta atom is deleted outright; a base atom gets a tombstone
        (the base stays frozen until :meth:`promote` applies it).
        """
        if not isinstance(atom, Atom):
            return False
        self._check_mutable()
        removed = self._delta.discard(atom)
        # A delta-side removal changes the delta length, which stales
        # the overlap key and forces a recount on the next read.
        if atom in self._base and atom not in self._tombstones:
            self._tombstones.add(atom)
            if self._dead_key == (len(self._base), len(self._tombstones) - 1):
                self._dead_count += 1
                self._dead_key = (self._dead_key[0], len(self._tombstones))
            removed = True
        return removed

    def _dead(self) -> int:
        """How many tombstones shadow a live base atom (cached)."""
        if not self._tombstones:
            return 0
        key = (len(self._base), len(self._tombstones))
        if key != self._dead_key:
            self._dead_count = sum(
                1 for atom in self._tombstones if atom in self._base
            )
            self._dead_key = key
        return self._dead_count

    def promote(self) -> int:
        """Merge the delta into the base (and apply any tombstones);
        return how many atoms moved."""
        self._check_mutable()
        if self._tombstones:
            self._base.discard_all(self._tombstones)
            self._tombstones.clear()
        self._dead_count = 0
        moved = self._base.add_all(self._delta)
        self._delta = self._base.fresh()
        self._overlap_count = 0
        self._overlap_key = (len(self._base), 0)
        self._dead_key = (len(self._base), 0)
        self.promotions += 1
        return moved

    # -- membership and iteration -----------------------------------------

    def _unshadowed(self, atoms: Iterable[Atom]) -> Iterator[Atom]:
        """Delta atoms not also present in the (mutable) base.

        The insert-time guard in :meth:`add` keeps the layers disjoint
        only as long as the base never changes; an atom added to the
        base afterwards (it is frozen by convention, not enforcement)
        would otherwise be reported twice by every read path.
        """
        if self._overlap() == 0:
            # The common case — the base really was left frozen — keeps
            # the zero-overhead read path: no per-atom membership probe
            # in the engines' inner join loops.
            yield from atoms
            return
        for atom in atoms:
            if atom not in self._base:
                yield atom

    def _live(self, atoms: Iterable[Atom]) -> Iterator[Atom]:
        """Base atoms not retracted through a tombstone."""
        if not self._tombstones:
            yield from atoms
            return
        for atom in atoms:
            if atom not in self._tombstones:
                yield atom

    def __contains__(self, atom: object) -> bool:
        if atom in self._delta:
            return True
        return atom in self._base and atom not in self._tombstones

    def __iter__(self) -> Iterator[Atom]:
        yield from self._live(self._base)
        yield from self._unshadowed(self._delta)

    def __len__(self) -> int:
        return (
            len(self._base) - self._dead()
            + len(self._delta) - self._overlap()
        )

    def count(self, predicate: Optional[str] = None) -> int:
        if predicate is None:
            return len(self)
        if self._overlap() == 0 and not self._tombstones:
            # No shadowed atoms anywhere: delegate so each backend
            # keeps its O(1)/index-based counting path.
            return self._base.count(predicate) + self._delta.count(predicate)
        return sum(
            1 for _ in self._live(self._base.by_predicate(predicate))
        ) + sum(
            1 for _ in self._unshadowed(self._delta.by_predicate(predicate))
        )

    # -- retrieval ---------------------------------------------------------

    def by_predicate(self, predicate: str) -> Iterator[Atom]:
        yield from self._live(self._base.by_predicate(predicate))
        yield from self._unshadowed(self._delta.by_predicate(predicate))

    def predicates(self) -> set[str]:
        names = self._base.predicates() | self._delta.predicates()
        if self._tombstones:
            names = {n for n in names if any(True for _ in self.by_predicate(n))}
        return names

    def matching_bound(
        self,
        predicate: str,
        bound: Mapping[int, Term],
        arity: Optional[int] = None,
    ) -> Iterator[Atom]:
        yield from self._live(
            self._base.matching_bound(predicate, bound, arity)
        )
        yield from self._unshadowed(
            self._delta.matching_bound(predicate, bound, arity)
        )

    def matching(self, pattern: Atom) -> Iterator[Atom]:
        # Delegate per layer so each backend keeps its optimized path.
        yield from self._live(self._base.matching(pattern))
        yield from self._unshadowed(self._delta.matching(pattern))

    # -- lifecycle ---------------------------------------------------------

    def freeze(self) -> "DeltaOverlay":
        """Seal the overlay *and both layers* — the base was frozen by
        convention all along; a frozen overlay enforces it."""
        self._base.freeze()
        self._delta.freeze()
        super().freeze()
        return self

    def fresh(self) -> "DeltaOverlay":
        return DeltaOverlay(self._base.fresh())

    def copy(self) -> "DeltaOverlay":
        clone = DeltaOverlay(self._base.copy())
        clone._delta.add_all(self._delta)
        clone._tombstones = set(self._tombstones)
        clone._dead_key = None
        return clone

    # -- accounting --------------------------------------------------------

    def memory_report(self, seen: Optional[set[int]] = None) -> MemoryReport:
        # One shared visited-set across both layers: term objects decoded
        # from the base and re-interned in the delta are charged once,
        # and term_count is the true number of distinct terms.
        if seen is None:
            seen = set()
        base_report = self._base.memory_report(seen)
        delta_report = self._delta.memory_report(seen)
        components = {
            f"base.{name}": size
            for name, size in base_report.components.items()
        }
        components.update(
            (f"delta.{name}", size)
            for name, size in delta_report.components.items()
        )
        components["tombstones"] = deep_sizeof(self._tombstones, seen)
        spilled = {
            f"base.{name}": size
            for name, size in base_report.spilled.items()
        }
        spilled.update(
            (f"delta.{name}", size)
            for name, size in delta_report.spilled.items()
        )
        return MemoryReport(
            backend=self.backend_name,
            atom_count=len(self),
            term_count=len(self.active_domain()),
            components=components,
            spilled=spilled,
        )

    def __repr__(self) -> str:
        return (
            f"DeltaOverlay(base={len(self._base)} atoms, "
            f"delta={len(self._delta)} atoms)"
        )
