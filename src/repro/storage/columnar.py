"""Interned columnar fact storage.

:class:`ColumnarStore` keeps each predicate's facts as tuples of
integer term-ids (one :class:`~repro.storage.interning.TermTable` per
store), instead of the per-atom Python objects an
:class:`~repro.core.instance.Instance` holds.  The design follows the
Vadalog record-manager: cheap appends, hash indexes built lazily per
(predicate, position) on first probe, and a small LRU cache in front of
repeated ``matching`` probes (the access pattern the chase's trigger
discovery and the operator network's joins produce).

Space characteristics compared to ``Instance``:

* each fact is one tuple of ints plus one hash-set slot for
  deduplication — no ``Atom``/``Constant`` objects per occurrence;
* a position index exists only for positions actually probed, and maps
  term-id → row numbers (ints), not term → set-of-atoms;
* every distinct term is materialized exactly once, in the term table.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..core.atoms import Atom
from ..core.terms import Term
from .base import FactStore, MemoryReport
from .interning import TermTable
from .memory import deep_sizeof

__all__ = ["ColumnarStore"]

Row = Tuple[int, ...]


class _Relation:
    """One predicate's facts at one arity: rows of term-ids plus indexes."""

    __slots__ = ("predicate", "arity", "rows", "row_pos", "indexes", "version")

    def __init__(self, predicate: str, arity: int):
        self.predicate = predicate
        self.arity = arity
        self.rows: List[Row] = []
        # row → its row number; doubles as the dedup set and makes
        # swap-remove deletion O(arity + built indexes).
        self.row_pos: Dict[Row, int] = {}
        # 0-based position → term-id → row numbers; built lazily.
        self.indexes: Dict[int, Dict[int, List[int]]] = {}
        self.version = 0

    def add(self, row: Row) -> bool:
        if row in self.row_pos:
            return False
        row_number = len(self.rows)
        self.rows.append(row)
        self.row_pos[row] = row_number
        for position, index in self.indexes.items():
            index.setdefault(row[position], []).append(row_number)
        self.version += 1
        return True

    def discard(self, row: Row) -> bool:
        """Swap-remove *row*, keeping rows dense and indexes coherent."""
        number = self.row_pos.pop(row, None)
        if number is None:
            return False
        last = len(self.rows) - 1
        moved = self.rows[last]
        self.rows.pop()
        if number != last:
            self.rows[number] = moved
            self.row_pos[moved] = number
        for position, index in self.indexes.items():
            bucket = index.get(row[position])
            if bucket is not None:
                bucket.remove(number)
                if not bucket:
                    del index[row[position]]
            if number != last:
                moved_bucket = index.get(moved[position])
                if moved_bucket is not None:
                    moved_bucket[moved_bucket.index(last)] = number
        self.version += 1
        return True

    def index_for(self, position: int) -> Dict[int, List[int]]:
        """The term-id index at 0-based *position*, built on first use."""
        index = self.indexes.get(position)
        if index is None:
            index = {}
            for row_number, row in enumerate(self.rows):
                index.setdefault(row[position], []).append(row_number)
            self.indexes[position] = index
        return index


class ColumnarStore(FactStore):
    """A :class:`FactStore` over interned term-id tuples.

    ``probe_cache_size`` bounds the LRU cache of materialized
    ``matching_bound`` results; 0 disables caching.
    """

    backend_name = "columnar"

    def __init__(
        self,
        atoms: Iterable[Atom] = (),
        *,
        probe_cache_size: int = 128,
        table: Optional[TermTable] = None,
    ):
        # ``table`` lets several stores share one interning table (a
        # base and the overlay delta above it): ids are table-global,
        # the shared object is charged once by ``memory_report``'s
        # visited-set, and terms the base already interned cost the
        # delta nothing.
        self._table = table if table is not None else TermTable()
        # predicate → arity → relation (mixed arities are legal, as in
        # Instance, though schema_of() rejects them downstream).
        self._relations: Dict[str, Dict[int, _Relation]] = {}
        self._size = 0
        self._probe_cache_size = probe_cache_size
        # probe key → [matching rows, decoded atoms or None]: rows are
        # snapshotted at probe time, atoms memoized on first full drain.
        self._probe_cache: OrderedDict[tuple, list] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        # Guards the probe cache and the lazy index builds: reads are
        # not pure on this backend (a cold probe builds an index and
        # populates the LRU), so two threads probing one frozen
        # snapshot concurrently would otherwise race those structures.
        self._probe_lock = threading.Lock()
        self.add_all(atoms)

    # -- interned bulk surface ---------------------------------------------

    @property
    def table(self) -> TermTable:
        """The interning table (shared across one base/delta family)."""
        return self._table

    def rows_interned(
        self, predicate: Optional[str] = None
    ) -> List[Tuple[str, int, List[Row]]]:
        """Snapshots of every relation as interned id rows.

        Returns ``(predicate, arity, rows)`` batches — the bulk read
        half of the kernel surface: engines mirror relations from here
        without decoding a single :class:`Atom`.  Row tuples are the
        stored objects (immutable); the containing lists are snapshots.
        """
        if predicate is None:
            items = list(self._relations.items())
        else:
            items = [(predicate, self._relations.get(predicate, {}))]
        return [
            (pred, arity, list(relation.rows))
            for pred, by_arity in items
            for arity, relation in by_arity.items()
            if relation.rows
        ]

    def extend_interned(
        self, predicate: str, arity: int, rows: Iterable[Row]
    ) -> int:
        """Bulk-append interned id rows to one relation.

        The write half of the kernel surface: equivalent to adding the
        decoded atoms one by one (same dedup, same indexes, same final
        content) but with one version bump per batch and no per-atom
        ``Atom``/``intern`` round-trip.  Every id must already be
        interned in :attr:`table`; rows are validated against *arity*.
        Returns how many rows were new.
        """
        self._check_mutable()
        limit = len(self._table)
        by_arity = self._relations.setdefault(predicate, {})
        relation = by_arity.get(arity)
        if relation is None:
            relation = by_arity[arity] = _Relation(predicate, arity)
        row_pos = relation.row_pos
        stored = relation.rows
        indexes = relation.indexes
        added = 0
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise ValueError(
                    f"extend_interned({predicate!r}, arity={arity}): row "
                    f"{row!r} has {len(row)} column(s)"
                )
            if row in row_pos:
                continue
            for tid in row:
                if not isinstance(tid, int) or not 0 <= tid < limit:
                    raise ValueError(
                        f"extend_interned({predicate!r}): id {tid!r} is "
                        f"not interned (table holds {limit} terms)"
                    )
            number = len(stored)
            stored.append(row)
            row_pos[row] = number
            for position, index in indexes.items():
                index.setdefault(row[position], []).append(number)
            added += 1
        if added:
            relation.version += 1
            self._size += added
        return added

    # -- encoding ----------------------------------------------------------

    def _encode(self, atom: Atom) -> Row:
        return tuple(self._table.intern(term) for term in atom.args)

    def _try_encode(self, atom: Atom) -> Optional[Row]:
        """Encode without interning; None if any term is unknown."""
        row = []
        for term in atom.args:
            tid = self._table.id_of(term)
            if tid is None:
                return None
            row.append(tid)
        return tuple(row)

    def _decode(self, predicate: str, row: Row) -> Atom:
        return Atom(predicate, tuple(self._table.term(tid) for tid in row))

    # -- mutation ----------------------------------------------------------

    def add(self, atom: Atom) -> bool:
        if not atom.is_ground():
            raise ValueError(f"stores contain ground atoms only, got {atom}")
        self._check_mutable()
        by_arity = self._relations.setdefault(atom.predicate, {})
        relation = by_arity.get(atom.arity)
        if relation is None:
            relation = by_arity[atom.arity] = _Relation(atom.predicate, atom.arity)
        if relation.add(self._encode(atom)):
            self._size += 1
            return True
        return False

    def discard(self, atom: Atom) -> bool:
        if not isinstance(atom, Atom):
            return False
        self._check_mutable()
        relation = self._relations.get(atom.predicate, {}).get(atom.arity)
        if relation is None:
            return False
        row = self._try_encode(atom)
        if row is None or not relation.discard(row):
            return False
        # Stale probe-cache entries die with the relation version bump;
        # interned terms stay (re-insertion is cheap and ids are stable).
        self._size -= 1
        return True

    # -- membership and iteration -----------------------------------------

    def __contains__(self, atom: object) -> bool:
        if not isinstance(atom, Atom):
            return False
        relation = self._relations.get(atom.predicate, {}).get(atom.arity)
        if relation is None:
            return False
        row = self._try_encode(atom)
        return row is not None and row in relation.row_pos

    def __iter__(self) -> Iterator[Atom]:
        for predicate, by_arity in self._relations.items():
            for relation in by_arity.values():
                for row in relation.rows:
                    yield self._decode(predicate, row)

    def __len__(self) -> int:
        return self._size

    def count(self, predicate: Optional[str] = None) -> int:
        if predicate is None:
            return self._size
        return sum(
            len(relation.rows)
            for relation in self._relations.get(predicate, {}).values()
        )

    # -- retrieval ---------------------------------------------------------

    def by_predicate(self, predicate: str) -> Iterator[Atom]:
        for relation in list(self._relations.get(predicate, {}).values()):
            # Snapshot of the row list: callers may add while consuming.
            for row in list(relation.rows):
                yield self._decode(predicate, row)

    def predicates(self) -> set[str]:
        return {
            predicate
            for predicate, by_arity in self._relations.items()
            if any(relation.rows for relation in by_arity.values())
        }

    def matching_bound(
        self,
        predicate: str,
        bound: Mapping[int, Term],
        arity: Optional[int] = None,
    ) -> Iterator[Atom]:
        by_arity = self._relations.get(predicate)
        if not by_arity:
            return
        relations = (
            [by_arity[arity]] if arity is not None and arity in by_arity
            else [] if arity is not None
            else list(by_arity.values())
        )
        for relation in relations:
            if not bound:
                for row in list(relation.rows):
                    yield self._decode(predicate, row)
                continue
            if any(position > relation.arity for position in bound):
                continue
            encoded: Dict[int, int] = {}
            unknown = False
            for position, term in bound.items():
                tid = self._table.id_of(term)
                if tid is None:
                    unknown = True
                    break
                encoded[position - 1] = tid
            if unknown:
                continue
            yield from self._probe(relation, encoded)

    def _probe(self, relation: _Relation, encoded: Dict[int, int]) -> Iterator[Atom]:
        """Probe through the best index, LRU-cached per relation version.

        The matching *rows* are materialized up front, before the first
        yield: this generator may be suspended across store mutations,
        and a ``discard`` swap-remove moves rows under previously
        snapshotted row numbers — dereferencing them lazily used to
        yield a wrong atom at the probe position (or raise IndexError).
        Snapshotting rows also matches :meth:`by_predicate`'s contract
        (the result reflects the store at probe start) and lets every
        probe populate the cache whether or not the consumer drains it,
        so repeated existence checks on one key hit the cache instead
        of re-scanning.  Only decoding stays lazy (per pull).

        Counter semantics (pinned by ``test_storage``): each ``_probe``
        call is exactly one ``cache_hits`` or one ``cache_misses``,
        partial drains included.

        Thread safety: the lookup/compute/publish section runs under
        ``_probe_lock`` — cold probes *write* (they build the lazy
        index and insert into the LRU), and two unsynchronized readers
        on the same cold (predicate, position) used to race the index
        dict and the OrderedDict reordering.  The lock is released
        before the first yield, so decoding and consumption proceed
        concurrently; the post-drain memoization writes an immutable
        tuple into a list slot, which is atomic and idempotent (racing
        drains decode the same frozen rows).
        """
        key = (
            relation.predicate,
            relation.arity,
            relation.version,
            tuple(sorted(encoded.items())),
        )
        with self._probe_lock:
            entry = self._probe_cache.get(key)
            if entry is not None:
                self.cache_hits += 1
                self._probe_cache.move_to_end(key)
            else:
                self.cache_misses += 1
                # Probe through the position with the smallest bucket
                # among the already-built indexes; build one for the
                # first bound position when none exists yet.
                built = [p for p in encoded if p in relation.indexes]
                probe_position = (
                    min(built, key=lambda p: len(relation.indexes[p].get(encoded[p], ())))
                    if built
                    else min(encoded)
                )
                bucket = relation.index_for(probe_position).get(
                    encoded[probe_position], ()
                )
                entry = [
                    tuple(
                        row
                        for row in (
                            relation.rows[number] for number in tuple(bucket)
                        )
                        if all(row[p] == tid for p, tid in encoded.items())
                    ),
                    None,
                ]
                if self._probe_cache_size > 0:
                    self._probe_cache[key] = entry
                    while len(self._probe_cache) > self._probe_cache_size:
                        self._probe_cache.popitem(last=False)
        rows, decoded = entry
        if decoded is not None:
            yield from decoded
            return
        collected: List[Atom] = []
        for row in rows:
            atom = self._decode(relation.predicate, row)
            collected.append(atom)
            yield atom
        # Full drain: memoize the decoded atoms so repeated hits on
        # this (relation version, probe) stop paying per-row decoding.
        entry[1] = tuple(collected)

    # -- lifecycle ---------------------------------------------------------

    def fresh(self) -> "ColumnarStore":
        """An empty store *sharing this store's interning table*.

        ``fresh()`` is how :class:`~repro.storage.delta.DeltaOverlay`
        builds its delta layer; sharing the table means re-deriving a
        base term in the delta re-uses the base's id and object instead
        of interning a second copy — the interning cost of a base/delta
        stack is one table, counted once.  The table is append-only and
        its intern path is thread-safe, so sharing it with a frozen
        base is sound: existing ids never change.
        """
        return ColumnarStore(
            probe_cache_size=self._probe_cache_size, table=self._table
        )

    # -- accounting --------------------------------------------------------

    @property
    def stats(self) -> dict:
        """Probe-cache and index statistics (observability for tests)."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_entries": len(self._probe_cache),
            "indexes_built": sum(
                len(relation.indexes)
                for by_arity in self._relations.values()
                for relation in by_arity.values()
            ),
            "terms_interned": len(self._table),
        }

    def memory_report(self, seen: Optional[set[int]] = None) -> MemoryReport:
        if seen is None:
            seen = set()
        columns = 0
        dedup = 0
        indexes = 0
        for by_arity in self._relations.values():
            for relation in by_arity.values():
                columns += deep_sizeof(relation.rows, seen)
                dedup += deep_sizeof(relation.row_pos, seen)
                indexes += deep_sizeof(relation.indexes, seen)
        terms = self._table.measured_bytes(seen)
        cache = deep_sizeof(self._probe_cache, seen)
        components = {
            "columns": columns,
            "dedup": dedup,
            "indexes": indexes,
            "terms": terms,
            "probe_cache": cache,
        }
        if self.has_scratch:
            # Measured last: row tuples an attached kernel shares with
            # the store are charged to "columns", scratch gets only the
            # engine's own structures (indexes, delta buffers, mirrors).
            components["kernel_scratch"] = self.scratch_bytes(seen)
        return MemoryReport(
            backend=self.backend_name,
            atom_count=self._size,
            term_count=len(self._table),
            components=components,
        )

    def __repr__(self) -> str:
        return f"ColumnarStore({self._size} atoms, {len(self._table)} terms)"
