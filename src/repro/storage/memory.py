"""Memory accounting helpers.

Two complementary measurements back ``memory_report()``:

* :func:`deep_sizeof` — a recursive ``sys.getsizeof`` walk that charges
  every reachable object once (a shared ``seen`` set lets callers
  measure several components without double counting shared objects);
* :func:`traced_peak` — the peak allocation while running an action,
  via ``tracemalloc`` (what the E2/E13 benchmarks report).

``sys.getsizeof`` is shallow and implementation-specific, but it is
consistent across the backends being compared, which is all the
space-efficiency measurements need.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Any, Callable, Optional, Set, Tuple

__all__ = ["deep_sizeof", "traced_peak"]

#: Atomic types whose payload getsizeof already covers.
_ATOMIC = (str, bytes, bytearray, int, float, complex, bool, type(None))


def deep_sizeof(obj: Any, seen: Optional[Set[int]] = None) -> int:
    """Bytes of *obj* and everything reachable from it, counted once.

    Pass the same *seen* set across several calls to charge shared
    substructure only to the first call that reaches it.
    """
    if seen is None:
        seen = set()
    total = 0
    stack = [obj]
    while stack:
        current = stack.pop()
        ident = id(current)
        if ident in seen:
            continue
        seen.add(ident)
        try:
            total += sys.getsizeof(current)
        except TypeError:  # pragma: no cover - exotic objects
            continue
        if isinstance(current, _ATOMIC):
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        else:
            attrs = getattr(current, "__dict__", None)
            if attrs is not None:
                stack.append(attrs)
            slots = getattr(type(current), "__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for name in slots:
                if hasattr(current, name):
                    stack.append(getattr(current, name))
    return total


def traced_peak(action: Callable[[], Any]) -> Tuple[Any, int]:
    """Run *action*, returning ``(result, peak allocated bytes)``."""
    tracemalloc.start()
    try:
        result = action()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak
