"""Out-of-core, budgeted, hash-partitioned fact storage.

:class:`ShardedStore` implements the full :class:`~repro.storage.base.
FactStore` surface over *shards*: each (predicate, arity) relation is
hash-partitioned on a key position into a fixed number of shards, each
shard a small set of interned term-id rows.  Shards are the unit of

* **locality** — a probe bound on the partition key touches exactly one
  shard;
* **parallelism** — independent shards scan concurrently
  (:mod:`repro.parallel.shardscan`);
* **memory control** — resident shards are tracked against a byte
  budget; when the estimate exceeds it, least-recently-used shards are
  *evicted*: their rows persist as a :class:`~repro.storage.sharded.
  spill.SpillPager` page and the resident set is dropped.  A later
  touch reloads the page transparently.

All shards share **one** interning table, so a term costs its object
exactly once however many shards (or overlay layers above the store)
mention it, and evicted pages stay decodable — ids are stable.

The store composes with everything built against ``FactStore``: a
:class:`~repro.storage.delta.DeltaOverlay` can layer a writable delta
over a frozen sharded base (the delta shares the base's interning
table via :meth:`fresh`), ``freeze()`` seals the atom set while read
paths may still page shards in and out (internal state, never
observable content), and ``memory_report()`` splits the accounting
into resident components and spilled page bytes.
"""

from __future__ import annotations

import itertools
import os
import sys
import threading
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ...core.atoms import Atom
from ...core.terms import Term
from ..base import FactStore, MemoryReport
from ..interning import TermTable
from ..memory import deep_sizeof
from .spill import SpillPager

__all__ = ["ShardedStore", "DEFAULT_SHARDS"]

Row = Tuple[int, ...]

#: Default shard count per relation — small enough that empty shards
#: cost nothing, large enough for useful probe parallelism.
DEFAULT_SHARDS = 8

#: Fibonacci-hash multiplier: spreads dense term-ids across shards.
_MIX = 0x9E3779B1

#: Distinct spill-file names for stores sharing one ``spill_dir``.
_spill_seq = itertools.count()


def _row_cost(arity: int) -> int:
    """Estimated resident bytes one row adds to a shard.

    Deliberately generous (tuple header + per-slot pointers + hash-set
    slot + a share of the boxed ids): the budget enforcement acts on
    this estimate, so overestimating errs toward evicting early —
    the safe side of a memory bound.
    """
    return 120 + 8 * arity


class _Shard:
    """One hash partition of a relation: resident rows or a spill page.

    ``rows is None`` means evicted — the rows live in the pager and
    ``count`` (always valid) remembers the cardinality.  ``dirty``
    tracks whether the resident rows differ from the persisted page, so
    evicting an unchanged reloaded shard skips the rewrite.
    """

    __slots__ = ("rows", "count", "estimate", "dirty", "paged")

    def __init__(self) -> None:
        self.rows: Optional[set] = set()
        self.count = 0
        self.estimate = 0
        self.dirty = False
        self.paged = False  # a page for this shard exists in the pager

    @property
    def resident(self) -> bool:
        return self.rows is not None


class _ShardedRelation:
    """One predicate at one arity: a fixed array of shards."""

    __slots__ = ("predicate", "arity", "key", "shards", "version")

    def __init__(self, predicate: str, arity: int, key_position: int,
                 num_shards: int):
        self.predicate = predicate
        self.arity = arity
        # 0-based partition position; -1 parks zero-arity relations
        # (and any arity shorter than the configured key) in shard 0.
        key = key_position - 1
        self.key = key if 0 <= key < arity else (0 if arity else -1)
        self.shards: List[_Shard] = [_Shard() for _ in range(num_shards)]
        self.version = 0

    def shard_of(self, row: Row) -> int:
        if self.key < 0:
            return 0
        return ((row[self.key] * _MIX) & 0xFFFFFFFF) % len(self.shards)

    @property
    def count(self) -> int:
        return sum(shard.count for shard in self.shards)


class ShardedStore(FactStore):
    """A :class:`FactStore` that hash-partitions relations into
    spillable shards under a resident-byte budget.

    ``memory_budget`` bounds the *estimated* resident bytes of shard
    rows (None: unbounded, nothing ever spills); the resident set may
    transiently exceed it by at most one shard (the store never evicts
    the shard it is currently touching, which would livelock a single
    oversized shard).  ``key_position`` is the 1-based argument
    position relations are partitioned on, following the paper's
    ``R[i]`` notation.  ``spill_dir`` hosts the SQLite spill file
    (a private temporary directory when omitted, reclaimed with the
    store).
    """

    backend_name = "sharded"

    def __init__(
        self,
        atoms: Iterable[Atom] = (),
        *,
        memory_budget: Optional[int] = None,
        num_shards: int = DEFAULT_SHARDS,
        key_position: int = 1,
        spill_dir: Union[str, Path, None] = None,
        table: Optional[TermTable] = None,
    ):
        if memory_budget is not None and memory_budget <= 0:
            raise ValueError("memory_budget must be positive (or None)")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if key_position < 1:
            raise ValueError("key_position is 1-based; must be >= 1")
        self._table = table if table is not None else TermTable()
        self._budget = memory_budget
        self._num_shards = num_shards
        self._key_position = key_position
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        path = None
        if self._spill_dir is not None:
            path = self._spill_dir / (
                f"spill-{os.getpid()}-{next(_spill_seq)}.sqlite"
            )
        self._pager = SpillPager(path)
        self._finalizer = weakref.finalize(self, self._pager.close)
        self._relations: Dict[str, Dict[int, _ShardedRelation]] = {}
        self._size = 0
        #: Resident shards in LRU order (oldest first).
        self._lru: "OrderedDict[Tuple[str, int, int], _Shard]" = OrderedDict()
        self._resident_estimate = 0
        #: One lock for all structural state: adds, discards, loads and
        #: evictions all move rows between RAM and the pager, and read
        #: paths (probes, containment) may trigger loads — so reads are
        #: not pure here any more than ColumnarStore's are.
        self._lock = threading.RLock()
        self.evictions = 0
        self.reloads = 0
        self.add_all(atoms)

    # -- configuration -----------------------------------------------------

    @property
    def memory_budget(self) -> Optional[int]:
        return self._budget

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def key_position(self) -> int:
        return self._key_position

    @property
    def table(self) -> TermTable:
        """The shared interning table (one per shard *family*)."""
        return self._table

    @property
    def pager(self) -> SpillPager:
        return self._pager

    # -- encoding ----------------------------------------------------------

    def _encode(self, atom: Atom) -> Row:
        return tuple(self._table.intern(term) for term in atom.args)

    def _try_encode(self, atom: Atom) -> Optional[Row]:
        row = []
        for term in atom.args:
            tid = self._table.id_of(term)
            if tid is None:
                return None
            row.append(tid)
        return tuple(row)

    def _decode(self, predicate: str, row: Row) -> Atom:
        return Atom(predicate, tuple(self._table.term(tid) for tid in row))

    # -- shard residency ---------------------------------------------------

    def _touch(self, relation: _ShardedRelation, index: int,
               shard: _Shard) -> None:
        """Mark *shard* most-recently-used (lock held)."""
        key = (relation.predicate, relation.arity, index)
        if key in self._lru:
            self._lru.move_to_end(key)
        else:
            self._lru[key] = shard

    def _load(self, relation: _ShardedRelation, index: int,
              shard: _Shard) -> None:
        """Page an evicted shard back in (lock held)."""
        if shard.resident:
            return
        rows = self._pager.read(relation.predicate, relation.arity, index)
        shard.rows = set(rows) if rows is not None else set()
        shard.estimate = shard.count * _row_cost(relation.arity)
        shard.dirty = False
        self._resident_estimate += shard.estimate
        self.reloads += 1

    def _evict(self, key: Tuple[str, int, int], shard: _Shard) -> None:
        """Spill one resident shard (lock held)."""
        predicate, arity, index = key
        if shard.dirty or not shard.paged:
            if shard.count:
                self._pager.write(predicate, arity, index, shard.rows)
                shard.paged = True
            elif shard.paged:
                self._pager.delete(predicate, arity, index)
                shard.paged = False
        shard.rows = None
        self._resident_estimate -= shard.estimate
        shard.estimate = 0
        shard.dirty = False
        self.evictions += 1

    def _enforce_budget(self, keep: Tuple[str, int, int]) -> None:
        """Evict LRU shards until the estimate fits the budget (lock
        held).  *keep* — the shard being touched — is never evicted."""
        if self._budget is None:
            return
        while self._resident_estimate > self._budget and len(self._lru) > 1:
            key = next(iter(self._lru))
            if key == keep:
                self._lru.move_to_end(key)
                key = next(iter(self._lru))
                if key == keep:  # keep is the only resident shard
                    break
            self._evict(key, self._lru.pop(key))

    def _resident_rows(self, relation: _ShardedRelation, index: int,
                       shard: _Shard) -> set:
        """The shard's row set, paging it in and touching LRU (lock
        held)."""
        self._load(relation, index, shard)
        self._touch(relation, index, shard)
        self._enforce_budget((relation.predicate, relation.arity, index))
        return shard.rows

    def _peek_rows(self, relation: _ShardedRelation, index: int,
                   shard: _Shard) -> List[Row]:
        """A snapshot of the shard's rows *without* changing residency.

        Full scans (iteration, unbound probes) read evicted pages
        straight from the pager instead of thrashing the LRU — a scan
        of a store bigger than its budget must not evict the hot set.
        """
        if shard.resident:
            return list(shard.rows)
        if not shard.count:
            return []
        rows = self._pager.read(relation.predicate, relation.arity, index)
        return rows if rows is not None else []

    # -- interned bulk surface ---------------------------------------------

    def rows_interned(
        self, predicate: Optional[str] = None
    ) -> List[Tuple[str, int, List[Row]]]:
        """Snapshots of every relation as interned id rows.

        Same contract as :meth:`ColumnarStore.rows_interned`; evicted
        shards are read through page peeks, so a bulk read of a store
        bigger than its budget does not thrash the resident set.
        """
        with self._lock:
            if predicate is None:
                relations = [
                    relation
                    for by_arity in self._relations.values()
                    for relation in by_arity.values()
                ]
            else:
                relations = list(self._relations.get(predicate, {}).values())
            return [
                (
                    relation.predicate,
                    relation.arity,
                    [
                        row
                        for index, shard in enumerate(relation.shards)
                        if shard.count
                        for row in self._peek_rows(relation, index, shard)
                    ],
                )
                for relation in relations
                if relation.count
            ]

    def extend_interned(
        self, predicate: str, arity: int, rows: Iterable[Row]
    ) -> int:
        """Bulk-append interned id rows to one relation.

        Rows are grouped by target shard so each shard is paged in at
        most once per batch; the byte budget is enforced after each
        shard's group, the same discipline as per-atom ``add``.  One
        version bump per batch.  Returns how many rows were new.
        """
        self._check_mutable()
        limit = len(self._table)
        added = 0
        with self._lock:
            by_arity = self._relations.setdefault(predicate, {})
            relation = by_arity.get(arity)
            if relation is None:
                relation = by_arity[arity] = _ShardedRelation(
                    predicate, arity, self._key_position, self._num_shards
                )
            cost = _row_cost(arity)
            grouped: Dict[int, List[Row]] = {}
            for row in rows:
                row = tuple(row)
                if len(row) != arity:
                    raise ValueError(
                        f"extend_interned({predicate!r}, arity={arity}): "
                        f"row {row!r} has {len(row)} column(s)"
                    )
                for tid in row:
                    if not isinstance(tid, int) or not 0 <= tid < limit:
                        raise ValueError(
                            f"extend_interned({predicate!r}): id {tid!r} "
                            f"is not interned (table holds {limit} terms)"
                        )
                grouped.setdefault(relation.shard_of(row), []).append(row)
            for index, batch in grouped.items():
                shard = relation.shards[index]
                resident = self._resident_rows(relation, index, shard)
                shard_added = 0
                for row in batch:
                    if row in resident:
                        continue
                    resident.add(row)
                    shard_added += 1
                if shard_added:
                    shard.count += shard_added
                    shard.dirty = True
                    shard.estimate += cost * shard_added
                    self._resident_estimate += cost * shard_added
                    added += shard_added
                self._enforce_budget((predicate, arity, index))
            if added:
                relation.version += 1
                self._size += added
        return added

    # -- mutation ----------------------------------------------------------

    def add(self, atom: Atom) -> bool:
        if not atom.is_ground():
            raise ValueError(f"stores contain ground atoms only, got {atom}")
        self._check_mutable()
        row = self._encode(atom)
        with self._lock:
            by_arity = self._relations.setdefault(atom.predicate, {})
            relation = by_arity.get(atom.arity)
            if relation is None:
                relation = by_arity[atom.arity] = _ShardedRelation(
                    atom.predicate, atom.arity,
                    self._key_position, self._num_shards,
                )
            index = relation.shard_of(row)
            shard = relation.shards[index]
            rows = self._resident_rows(relation, index, shard)
            if row in rows:
                return False
            rows.add(row)
            shard.count += 1
            shard.dirty = True
            cost = _row_cost(relation.arity)
            shard.estimate += cost
            self._resident_estimate += cost
            relation.version += 1
            self._size += 1
            self._enforce_budget((atom.predicate, atom.arity, index))
            return True

    def discard(self, atom: Atom) -> bool:
        if not isinstance(atom, Atom):
            return False
        self._check_mutable()
        with self._lock:
            relation = self._relations.get(atom.predicate, {}).get(atom.arity)
            if relation is None:
                return False
            row = self._try_encode(atom)
            if row is None:
                return False
            index = relation.shard_of(row)
            shard = relation.shards[index]
            rows = self._resident_rows(relation, index, shard)
            if row not in rows:
                return False
            rows.remove(row)
            shard.count -= 1
            shard.dirty = True
            cost = _row_cost(relation.arity)
            shard.estimate -= cost
            self._resident_estimate -= cost
            relation.version += 1
            self._size -= 1
            return True

    # -- membership and iteration -----------------------------------------

    def __contains__(self, atom: object) -> bool:
        if not isinstance(atom, Atom):
            return False
        with self._lock:
            relation = self._relations.get(atom.predicate, {}).get(atom.arity)
            if relation is None:
                return False
            row = self._try_encode(atom)
            if row is None:
                return False
            index = relation.shard_of(row)
            shard = relation.shards[index]
            if not shard.count:
                return False
            if shard.resident:
                self._touch(relation, index, shard)
                return row in shard.rows
            # Membership on an evicted shard peeks at the page without
            # paying a full reload — one containment check must not
            # disturb the resident working set.
            return row in self._peek_rows(relation, index, shard)

    def _snapshots(
        self, predicate: Optional[str] = None
    ) -> Iterator[Tuple[str, List[Row]]]:
        """Per-shard row snapshots (decoding happens outside the lock)."""
        with self._lock:
            if predicate is None:
                relations = [
                    relation
                    for by_arity in self._relations.values()
                    for relation in by_arity.values()
                ]
            else:
                relations = list(self._relations.get(predicate, {}).values())
            batches = [
                (relation.predicate,
                 self._peek_rows(relation, index, shard))
                for relation in relations
                for index, shard in enumerate(relation.shards)
                if shard.count
            ]
        return iter(batches)

    def __iter__(self) -> Iterator[Atom]:
        for predicate, rows in self._snapshots():
            for row in rows:
                yield self._decode(predicate, row)

    def __len__(self) -> int:
        return self._size

    def count(self, predicate: Optional[str] = None) -> int:
        if predicate is None:
            return self._size
        with self._lock:
            return sum(
                relation.count
                for relation in self._relations.get(predicate, {}).values()
            )

    # -- retrieval ---------------------------------------------------------

    def by_predicate(self, predicate: str) -> Iterator[Atom]:
        for pred, rows in self._snapshots(predicate):
            for row in rows:
                yield self._decode(pred, row)

    def predicates(self) -> set:
        with self._lock:
            return {
                predicate
                for predicate, by_arity in self._relations.items()
                if any(relation.count for relation in by_arity.values())
            }

    def _encode_bound(
        self, relation: _ShardedRelation, bound: Mapping[int, Term]
    ) -> Optional[Dict[int, int]]:
        """0-based position → term-id, or None if any term is unknown
        (then nothing can match) — mirrors the columnar probe."""
        encoded: Dict[int, int] = {}
        for position, term in bound.items():
            tid = self._table.id_of(term)
            if tid is None:
                return None
            encoded[position - 1] = tid
        return encoded

    def _matched_rows(
        self, relation: _ShardedRelation, encoded: Dict[int, int]
    ) -> List[Row]:
        """All rows agreeing with the bound positions (lock held).

        A probe bound on the partition key touches exactly one shard —
        paged in and LRU-touched, probes define the hot set; any other
        probe scans every shard through page peeks.  Matches are
        materialized before the first yield, so a consumer suspended
        across ``discard`` calls still sees the probe-time snapshot
        (the interleaving that corrupted the columnar probe in PR 5).
        """
        if relation.key in encoded:
            tid = encoded[relation.key]
            index = ((tid * _MIX) & 0xFFFFFFFF) % len(relation.shards)
            shard = relation.shards[index]
            if not shard.count:
                return []
            rows = self._resident_rows(relation, index, shard)
            return [
                row
                for row in rows
                if all(row[p] == t for p, t in encoded.items())
            ]
        matched: List[Row] = []
        for index, shard in enumerate(relation.shards):
            if not shard.count:
                continue
            for row in self._peek_rows(relation, index, shard):
                if all(row[p] == t for p, t in encoded.items()):
                    matched.append(row)
        return matched

    def matching_bound(
        self,
        predicate: str,
        bound: Mapping[int, Term],
        arity: Optional[int] = None,
    ) -> Iterator[Atom]:
        with self._lock:
            by_arity = self._relations.get(predicate)
            if not by_arity:
                return iter(())
            relations = (
                [by_arity[arity]] if arity is not None and arity in by_arity
                else [] if arity is not None
                else list(by_arity.values())
            )
            matched: List[Tuple[str, Row]] = []
            for relation in relations:
                if any(position > relation.arity for position in bound):
                    continue
                encoded = self._encode_bound(relation, bound)
                if encoded is None:
                    continue
                matched.extend(
                    (relation.predicate, row)
                    for row in self._matched_rows(relation, encoded)
                )
        return (self._decode(pred, row) for pred, row in matched)

    # -- shard-parallel probing -------------------------------------------

    def probe_shards(
        self,
        predicate: str,
        bound: Mapping[int, Term],
        arity: Optional[int] = None,
    ) -> List[Callable[[], List[Atom]]]:
        """The probe split into one independent task per shard.

        Each returned callable filters and decodes *one* shard's
        snapshot when invoked — the unit the parallel executor fans out
        across its worker pool (:mod:`repro.parallel.shardscan`).  The
        union of the tasks' results equals ``matching_bound``'s result
        at snapshot time, by construction.
        """
        tasks: List[Callable[[], List[Atom]]] = []
        with self._lock:
            by_arity = self._relations.get(predicate)
            if not by_arity:
                return tasks
            relations = (
                [by_arity[arity]] if arity is not None and arity in by_arity
                else [] if arity is not None
                else list(by_arity.values())
            )
            for relation in relations:
                if any(position > relation.arity for position in bound):
                    continue
                encoded = self._encode_bound(relation, bound)
                if encoded is None:
                    continue
                for index, shard in enumerate(relation.shards):
                    if not shard.count:
                        continue
                    if relation.key in encoded:
                        tid = encoded[relation.key]
                        target = (
                            (tid * _MIX) & 0xFFFFFFFF
                        ) % len(relation.shards)
                        if index != target:
                            continue
                    snapshot = self._peek_rows(relation, index, shard)
                    tasks.append(self._shard_task(
                        relation.predicate, snapshot, dict(encoded)
                    ))
        return tasks

    def _shard_task(
        self, predicate: str, snapshot: List[Row], encoded: Dict[int, int]
    ) -> Callable[[], List[Atom]]:
        def scan() -> List[Atom]:
            return [
                self._decode(predicate, row)
                for row in snapshot
                if all(row[p] == t for p, t in encoded.items())
            ]

        return scan

    # -- lifecycle ---------------------------------------------------------

    def fresh(self) -> "ShardedStore":
        """An empty store with this store's configuration, sharing the
        interning table (its spill file, if any, is its own)."""
        return ShardedStore(
            memory_budget=self._budget,
            num_shards=self._num_shards,
            key_position=self._key_position,
            spill_dir=self._spill_dir,
            table=self._table,
        )

    # -- accounting --------------------------------------------------------

    @property
    def stats(self) -> dict:
        """Residency and paging counters (observability for tests)."""
        with self._lock:
            resident = len(self._lru)
            spilled = sum(
                1
                for by_arity in self._relations.values()
                for relation in by_arity.values()
                for shard in relation.shards
                if not shard.resident and shard.count
            )
            return {
                "resident_shards": resident,
                "spilled_shards": spilled,
                "resident_estimate": self._resident_estimate,
                "memory_budget": self._budget,
                "evictions": self.evictions,
                "reloads": self.reloads,
                "spill_pages": self._pager.pages,
                "spill_bytes": self._pager.bytes,
                "terms_interned": len(self._table),
            }

    def memory_report(self, seen: Optional[set] = None) -> MemoryReport:
        if seen is None:
            seen = set()
        with self._lock:
            shards_bytes = 0
            map_bytes = 0
            for by_arity in self._relations.values():
                for relation in by_arity.values():
                    for shard in relation.shards:
                        if shard.resident:
                            shards_bytes += deep_sizeof(shard.rows, seen)
                        map_bytes += (
                            sys.getsizeof(shard)
                            + sys.getsizeof(shard.count)
                            + sys.getsizeof(shard.estimate)
                        )
                    map_bytes += sys.getsizeof(relation)
            terms = self._table.measured_bytes(seen)
            spilled = {"pages": self._pager.bytes}
            components = {
                "shards": shards_bytes,
                "shard_map": map_bytes,
                "terms": terms,
            }
            if self.has_scratch:
                # Last, so rows shared with an attached kernel are
                # charged to "shards" and scratch reports only the
                # engine's own structures.
                components["kernel_scratch"] = self.scratch_bytes(seen)
            return MemoryReport(
                backend=self.backend_name,
                atom_count=self._size,
                term_count=len(self._table),
                components=components,
                spilled=spilled,
            )

    def __repr__(self) -> str:
        budget = (
            f"{self._budget}B budget" if self._budget is not None
            else "unbounded"
        )
        return (
            f"ShardedStore({self._size} atoms, {len(self._table)} terms, "
            f"{self._num_shards} shards/relation, {budget}, "
            f"{self._pager.pages} spilled page(s))"
        )
