"""Warm-start persistence: a directory of promoted fixpoints.

A :class:`StateDirectory` checkpoints the serving layer's durable
state — the current EDB plus every maintainable saturated
materialization promoted by the fixpoint caches — so a restarted
``repro serve --state-dir`` answers its first query from the persisted
fixpoint instead of resaturating from scratch.  This is the sharded
store's out-of-core story completed across process boundaries: spilling
bounds memory *within* a run, the state directory carries the work
*between* runs.

What is persisted is deliberately engine-independent: ground atoms
(term objects pickle directly; ids are an in-process encoding and never
leave the process) keyed by the stable parts of the fixpoint cache
identity — (method, store name, engine kwargs).  The process-local
parts of the key (``id(program)``, demand tokens) are reconstructed or
excluded on load: demand-specific (magic) materializations are never
persisted, mirroring the migration policy across snapshot versions.

A checkpoint is only loadable by a server running the *same program* —
enforced with a content fingerprint, not a filename convention, so a
stale directory behind an edited program falls back to cold start
instead of serving answers from the wrong rules.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple, Union

from ...core.atoms import Atom

__all__ = ["FixpointRecord", "SavedState", "StateDirectory",
           "program_fingerprint"]

#: Bump when the pickle layout changes; mismatched checkpoints are
#: ignored (cold start), never migrated.
STATE_FORMAT = 1


def program_fingerprint(compiled) -> str:
    """A stable content identity for a compiled program.

    Prefers the source text (what the user deployed); falls back to the
    rule reprs for programs built in memory.  Either way the name is
    included, so two deployments of one rule set checkpoint separately.
    """
    digest = hashlib.sha256()
    digest.update(compiled.name.encode())
    digest.update(b"\x00")
    source = getattr(compiled, "source", None)
    if source:
        digest.update(source.encode())
    else:
        for rule in compiled.program:
            digest.update(repr(rule).encode())
            digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class FixpointRecord:
    """One persisted saturated materialization.

    ``kwargs`` is the sorted ``(name, repr(value))`` tuple from the
    fixpoint cache key — already stable and comparable across
    processes.  ``atoms`` is the full saturated atom set; the loader
    rebuilds whatever backend the serving store choice names.
    """

    method: str
    store_name: str
    kwargs: tuple
    atoms: Tuple[Atom, ...]


@dataclass(frozen=True)
class SavedState:
    """One checkpoint: the EDB and its promoted fixpoints."""

    program_key: str
    store_name: str
    version: int
    edb: Tuple[Atom, ...]
    fixpoints: Tuple[FixpointRecord, ...] = field(default_factory=tuple)


class StateDirectory:
    """Atomic pickle persistence under one directory.

    Checkpoints replace each other atomically (write-then-rename), so a
    crash mid-checkpoint leaves the previous one intact — the warm
    start is best-effort but never torn.
    """

    STATE_FILE = "state.pkl"

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)

    @property
    def path(self) -> Path:
        return self._path

    @property
    def state_file(self) -> Path:
        return self._path / self.STATE_FILE

    def save(self, state: SavedState) -> Path:
        """Persist *state* atomically; returns the checkpoint file."""
        self._path.mkdir(parents=True, exist_ok=True)
        payload = {"format": STATE_FORMAT, "state": state}
        fd, tmp_name = tempfile.mkstemp(
            prefix="state-", suffix=".tmp", dir=str(self._path)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self.state_file)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return self.state_file

    def load(self, program_key: Optional[str] = None) -> Optional[SavedState]:
        """The checkpoint, or None when absent/foreign/corrupt.

        With *program_key* given, a checkpoint of a different program
        is treated as absent (cold start) — serving cached fixpoints of
        the wrong rules would be silent corruption, an empty cache is
        merely slow.
        """
        try:
            with open(self.state_file, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != STATE_FORMAT:
            return None
        state = payload.get("state")
        if not isinstance(state, SavedState):
            return None
        if program_key is not None and state.program_key != program_key:
            return None
        return state

    def clear(self) -> None:
        try:
            os.unlink(self.state_file)
        except OSError:
            pass

    def __repr__(self) -> str:
        present = "present" if self.state_file.exists() else "empty"
        return f"StateDirectory({self._path}, {present})"
