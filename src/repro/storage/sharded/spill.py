"""The disk half of the sharded store: a SQLite-backed page store.

A :class:`SpillPager` persists evicted shards as *pages*: one row per
(predicate, arity, shard index), holding the shard's term-id rows as a
packed binary blob (``array('q')`` — 8-byte little-endian ids, arity
ids per fact).  SQLite is used purely as a transactional page manager —
exactly the role the Vadalog record manager assigns its persistence
layer — not as a query engine: probes never run SQL over facts, they
reload the page and scan interned ids in memory.

The pager is lazy: no file or connection exists until the first write,
so constructing a sharded store (which every engine run does) costs no
I/O when the working set fits the budget.
"""

from __future__ import annotations

import sqlite3
import threading
from array import array
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["SpillPager"]

Row = Tuple[int, ...]

#: Bytes per stored id (``array('q')``): fixed-width keeps page size a
#: pure function of row count and arity.
ID_BYTES = 8


def pack_rows(rows: Iterable[Row]) -> bytes:
    """Flatten rows of term-ids into the page payload."""
    flat = array("q")
    for row in rows:
        flat.extend(row)
    return flat.tobytes()


def unpack_rows(payload: bytes, arity: int, count: int) -> List[Row]:
    """Rebuild rows from a page payload (inverse of :func:`pack_rows`).

    *count* disambiguates the zero-arity case, where every row packs to
    zero bytes (a propositional relation holds at most one fact, but
    the encoding stays total).
    """
    if arity == 0:
        return [()] * count
    flat = array("q")
    flat.frombytes(payload)
    return [
        tuple(flat[i : i + arity]) for i in range(0, len(flat), arity)
    ]


class SpillPager:
    """Pages of evicted shard rows, keyed by (predicate, arity, shard).

    Thread-safe: one connection guarded by one lock (the sharded store
    serializes its own structural mutations the same way).  ``bytes``
    tracks the live payload bytes on disk — the "spilled" half of
    ``memory_report()`` — without touching the file.
    """

    def __init__(self, path: Optional[Path] = None):
        self._path = Path(path) if path is not None else None
        self._tmpdir = None  # owns the backing dir when auto-created
        self._conn: Optional[sqlite3.Connection] = None
        self._lock = threading.Lock()
        #: page key → payload bytes, mirrored so accounting is O(1).
        self._page_bytes: Dict[Tuple[str, int, int], int] = {}
        self.writes = 0
        self.reads = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def path(self) -> Optional[Path]:
        """The backing file, or None while still unmaterialized."""
        return self._path

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            if self._path is None:
                import tempfile

                self._tmpdir = tempfile.TemporaryDirectory(
                    prefix="repro-spill-"
                )
                self._path = Path(self._tmpdir.name) / "spill.sqlite"
            self._path.parent.mkdir(parents=True, exist_ok=True)
            # check_same_thread=False: all access is serialized by
            # self._lock, the store's reader threads included.
            self._conn = sqlite3.connect(
                str(self._path), check_same_thread=False
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS pages ("
                "  predicate TEXT NOT NULL,"
                "  arity INTEGER NOT NULL,"
                "  shard INTEGER NOT NULL,"
                "  count INTEGER NOT NULL,"
                "  payload BLOB NOT NULL,"
                "  PRIMARY KEY (predicate, arity, shard)"
                ")"
            )
            self._conn.commit()
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
            if self._tmpdir is not None:
                self._tmpdir.cleanup()
                self._tmpdir = None

    # -- pages -------------------------------------------------------------

    def write(
        self, predicate: str, arity: int, shard: int, rows: Iterable[Row]
    ) -> int:
        """Persist one shard's rows; returns the payload bytes on disk."""
        rows = list(rows)
        payload = pack_rows(rows)
        with self._lock:
            conn = self._connect()
            conn.execute(
                "INSERT OR REPLACE INTO pages "
                "(predicate, arity, shard, count, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                (predicate, arity, shard, len(rows), payload),
            )
            conn.commit()
            self._page_bytes[(predicate, arity, shard)] = len(payload)
            self.writes += 1
        return len(payload)

    def read(
        self, predicate: str, arity: int, shard: int
    ) -> Optional[List[Row]]:
        """Load one page's rows, or None if never written."""
        with self._lock:
            if self._conn is None:
                return None
            cursor = self._conn.execute(
                "SELECT payload, count FROM pages "
                "WHERE predicate = ? AND arity = ? AND shard = ?",
                (predicate, arity, shard),
            )
            found = cursor.fetchone()
            if found is None:
                return None
            self.reads += 1
        return unpack_rows(found[0], arity, found[1])

    def delete(self, predicate: str, arity: int, shard: int) -> None:
        """Drop one page (its shard was reloaded and re-dirtied)."""
        with self._lock:
            if self._conn is None:
                return
            self._conn.execute(
                "DELETE FROM pages "
                "WHERE predicate = ? AND arity = ? AND shard = ?",
                (predicate, arity, shard),
            )
            self._conn.commit()
            self._page_bytes.pop((predicate, arity, shard), None)

    # -- accounting --------------------------------------------------------

    @property
    def bytes(self) -> int:
        """Live payload bytes across all pages (disk-resident facts)."""
        with self._lock:
            return sum(self._page_bytes.values())

    @property
    def pages(self) -> int:
        with self._lock:
            return len(self._page_bytes)

    def __repr__(self) -> str:
        return (
            f"SpillPager({self.pages} pages, {self.bytes}B, "
            f"path={str(self._path) if self._path else '<unmaterialized>'})"
        )
