"""Out-of-core, budgeted, shard-parallel fact storage.

The package splits the concern in three:

* :mod:`~repro.storage.sharded.store` — :class:`ShardedStore`, the
  :class:`~repro.storage.base.FactStore` backend: relations hash-
  partitioned into shards, resident under a byte budget with LRU
  eviction;
* :mod:`~repro.storage.sharded.spill` — :class:`SpillPager`, the
  SQLite-backed page store evicted shards persist to;
* :mod:`~repro.storage.sharded.state` — :class:`StateDirectory`,
  warm-start checkpoints of EDB + promoted fixpoints across restarts.

:func:`sharded_store_factory` packages a configured store as the
factory callable every ``store=`` surface accepts (sessions, the
snapshot manager, ``make_store``), with ``__name__`` pinned to
``"sharded"`` so plan labels and fixpoint cache keys stay stable across
processes — the property warm-start reconstruction depends on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Union

from .spill import SpillPager
from .state import (
    FixpointRecord,
    SavedState,
    StateDirectory,
    program_fingerprint,
)
from .store import DEFAULT_SHARDS, ShardedStore

__all__ = [
    "DEFAULT_SHARDS",
    "FixpointRecord",
    "SavedState",
    "ShardedStore",
    "SpillPager",
    "StateDirectory",
    "program_fingerprint",
    "sharded_store_factory",
]


def sharded_store_factory(
    memory_budget: Optional[int] = None,
    spill_dir: Union[str, Path, None] = None,
    *,
    num_shards: int = DEFAULT_SHARDS,
    key_position: int = 1,
) -> Callable[[], ShardedStore]:
    """A ``store=`` factory building configured :class:`ShardedStore`\\ s.

    Every store the factory builds gets its own spill file (and its own
    interning table — sharing happens through ``fresh()``, i.e. within
    one base/delta family, not across independent engine runs).
    """

    def sharded() -> ShardedStore:
        return ShardedStore(
            memory_budget=memory_budget,
            num_shards=num_shards,
            key_position=key_position,
            spill_dir=spill_dir,
        )

    # The label surfaces in plan explanations and cache keys; the
    # configuration must not change the identity, or a warm restart
    # with a different budget could not find its own checkpoints.
    sharded.__name__ = "sharded"
    return sharded
