"""The fact-storage interface.

The Vadalog system paper describes a dedicated storage/record-manager
layer — indexes and caches feeding the streaming operator network —
underneath the reasoning algorithms.  This module formalizes that layer
for the reproduction: :class:`FactStore` is the contract every backend
implements, and every engine (the chase, the operator network,
semi-naive evaluation, homomorphism search) is written against it.

A store holds *ground* atoms (constants and labeled nulls).  The
retrieval primitive is :meth:`FactStore.matching_bound`: all stored
atoms of a predicate whose argument at each bound (1-based) position
equals the given term.  The pattern form :meth:`FactStore.matching`
— match a possibly non-ground atom, respecting repeated variables —
is derived from it, so backends only implement the bound-position
probe.

Every backend also answers :meth:`FactStore.memory_report`, making the
paper's space-efficiency claims measurable per component (fact payload,
indexes, interning tables, caches) instead of anecdotal.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional

from ..core.atoms import Atom, schema_of
from ..core.terms import Constant, Null, Term, Variable

__all__ = ["FactStore", "FrozenStoreError", "MemoryReport", "pattern_agrees"]


class FrozenStoreError(RuntimeError):
    """Mutation attempted on a store frozen by :meth:`FactStore.freeze`.

    Raised instead of silently corrupting a snapshot: the serving layer
    hands frozen EDB views to concurrent readers, and any write to one
    would break snapshot isolation for every in-flight query admitted
    under that version.
    """


@dataclass(frozen=True)
class MemoryReport:
    """Per-component byte accounting for one store.

    ``components`` maps a component name (``"facts"``, ``"indexes"``,
    ...) to its deeply measured size in bytes.  Components are measured
    with a shared visited-set, so shared objects are charged to the
    first component that reaches them and the total is not inflated by
    double counting.

    ``spilled`` accounts bytes that live *on disk* rather than in the
    process (the sharded backend's evicted pages); they never count
    toward ``total_bytes``, which remains the resident figure every
    space claim is made against.
    """

    backend: str
    atom_count: int
    term_count: int
    components: Mapping[str, int]
    spilled: Mapping[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.components.values())

    @property
    def resident_bytes(self) -> int:
        """Alias of :attr:`total_bytes`, paired with ``spilled_bytes``."""
        return self.total_bytes

    @property
    def spilled_bytes(self) -> int:
        return sum(self.spilled.values())

    def as_dict(self) -> dict:
        """A JSON-ready representation (used by the benchmarks)."""
        return {
            "backend": self.backend,
            "atom_count": self.atom_count,
            "term_count": self.term_count,
            "total_bytes": self.total_bytes,
            "resident_bytes": self.resident_bytes,
            "spilled_bytes": self.spilled_bytes,
            "components": dict(self.components),
            "spilled": dict(self.spilled),
        }

    def __str__(self) -> str:
        parts = ", ".join(
            f"{name}={size}B" for name, size in self.components.items()
        )
        spill = (
            f", spilled {self.spilled_bytes}B" if self.spilled else ""
        )
        return (
            f"MemoryReport({self.backend}: {self.atom_count} atoms, "
            f"{self.term_count} terms, {self.total_bytes}B{spill}; {parts})"
        )


def pattern_agrees(pattern: Atom, stored: Atom) -> bool:
    """Does *stored* match the (possibly non-ground) *pattern*?

    Same predicate and arity, every ground argument equal, and repeated
    variables bound consistently.
    """
    if pattern.predicate != stored.predicate or pattern.arity != stored.arity:
        return False
    bound: Dict[Variable, Term] = {}
    for p_term, s_term in zip(pattern.args, stored.args):
        if isinstance(p_term, Variable):
            seen = bound.get(p_term)
            if seen is None:
                bound[p_term] = s_term
            elif seen != s_term:
                return False
        elif p_term != s_term:
            return False
    return True


class FactStore(ABC):
    """Abstract interface of a set of ground atoms with indexed retrieval.

    Backends differ in representation (object sets, interned columns,
    base-plus-delta overlays, ...) but expose the same operations, so
    the chase, the operator network, and semi-naive evaluation run
    unchanged on any of them.
    """

    #: Human-readable backend identifier, reported by ``memory_report``.
    backend_name: str = "abstract"

    #: Class-level default so backends need no ``__init__`` cooperation;
    #: :meth:`freeze` shadows it with an instance attribute.
    _frozen: bool = False

    #: Engine scratch accounting hooks (name → ``provider(seen) -> int``);
    #: class-level ``None`` until :meth:`register_scratch` creates the
    #: instance dict, so backends need no ``__init__`` cooperation.
    _scratch_providers: Optional[Dict[str, object]] = None

    # -- engine scratch accounting ----------------------------------------

    def register_scratch(self, name: str, provider) -> None:
        """Attach an engine working-memory accountant to this store.

        *provider* is called as ``provider(seen)`` with the report's
        shared visited-set and returns the scratch bytes the engine
        currently holds against this store (kernel hash-table builds,
        delta id buffers, ...).  Backends fold the sum into their
        ``memory_report()`` under a ``kernel_scratch`` component, so a
        budget probe taken mid-fixpoint sees engine state instead of
        silently under-counting.  Re-registering a name replaces it.
        """
        if self._scratch_providers is None:
            self._scratch_providers = {}
        self._scratch_providers[name] = provider

    def unregister_scratch(self, name: str) -> None:
        """Detach a scratch accountant; unknown names are a no-op."""
        if self._scratch_providers is not None:
            self._scratch_providers.pop(name, None)

    @property
    def has_scratch(self) -> bool:
        """True while at least one scratch provider is attached."""
        return bool(self._scratch_providers)

    def scratch_bytes(self, seen: Optional[set] = None) -> int:
        """Engine scratch currently registered against this store."""
        providers = self._scratch_providers
        if not providers:
            return 0
        if seen is None:
            seen = set()
        return sum(provider(seen) for provider in list(providers.values()))

    # -- immutability ------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has sealed this store."""
        return self._frozen

    def freeze(self) -> "FactStore":
        """Seal the store: every later mutation raises
        :class:`FrozenStoreError`.

        Freezing is one-way and idempotent.  The snapshot manager of
        the serving layer freezes each EDB version before handing it to
        concurrent readers, turning the ``DeltaOverlay`` convention
        ("the base is frozen") into an enforced invariant.
        """
        self._frozen = True
        return self

    def _check_mutable(self) -> None:
        """Guard for backend mutation paths (cheap: one attribute read)."""
        if self._frozen:
            raise FrozenStoreError(
                f"{type(self).__name__} is frozen (a snapshot view); "
                "mutations would corrupt concurrent readers"
            )

    # -- mutation ----------------------------------------------------------

    @abstractmethod
    def add(self, atom: Atom) -> bool:
        """Insert *atom*; return True iff it was not already present.

        Implementations must reject non-ground atoms with ValueError.
        """

    def add_all(self, atoms: Iterable[Atom]) -> int:
        """Insert many atoms; return how many were new."""
        return sum(1 for atom in atoms if self.add(atom))

    @abstractmethod
    def discard(self, atom: Atom) -> bool:
        """Remove *atom*; return True iff it was present.

        Removing an absent atom is a no-op (set semantics, mirroring
        :meth:`set.discard`).  Backends must keep every index, cache,
        and derived structure coherent with the shrunken atom set —
        the incremental-maintenance layer retracts through this.
        """

    def discard_all(self, atoms: Iterable[Atom]) -> int:
        """Remove many atoms; return how many were present."""
        return sum(1 for atom in atoms if self.discard(atom))

    # -- membership and iteration -----------------------------------------

    @abstractmethod
    def __contains__(self, atom: object) -> bool: ...

    @abstractmethod
    def __iter__(self) -> Iterator[Atom]: ...

    @abstractmethod
    def __len__(self) -> int: ...

    def contains(self, atom: Atom) -> bool:
        """Method form of ``atom in store``."""
        return atom in self

    def count(self, predicate: Optional[str] = None) -> int:
        """Number of stored atoms, optionally restricted to a predicate."""
        if predicate is None:
            return len(self)
        return sum(1 for _ in self.by_predicate(predicate))

    def atoms(self) -> frozenset[Atom]:
        """A frozen snapshot of the current atom set."""
        return frozenset(self)

    # -- retrieval ---------------------------------------------------------

    @abstractmethod
    def by_predicate(self, predicate: str) -> Iterator[Atom]:
        """All stored atoms whose predicate is *predicate*.

        Like :meth:`matching_bound`, the returned iterator must be safe
        against mutation of the store while it is consumed.
        """

    @abstractmethod
    def predicates(self) -> set[str]:
        """All predicate names with at least one stored atom."""

    @abstractmethod
    def matching_bound(
        self,
        predicate: str,
        bound: Mapping[int, Term],
        arity: Optional[int] = None,
    ) -> Iterator[Atom]:
        """Atoms of *predicate* agreeing with every bound position.

        *bound* maps 1-based positions to ground terms, following the
        paper's ``R[i]`` notation.  With ``arity`` given, only atoms of
        that arity are returned.  An empty *bound* is a predicate scan.

        Implementations must iterate over snapshots, so callers may add
        atoms to the store while consuming the result (the engines'
        delta loops rely on this being backend-independent).
        """

    def matching(self, pattern: Atom) -> Iterator[Atom]:
        """Stored atoms matching the (possibly non-ground) *pattern*.

        Derived from :meth:`matching_bound`; repeated variables in the
        pattern are enforced here.
        """
        bound = {
            i: term
            for i, term in enumerate(pattern.args, start=1)
            if not isinstance(term, Variable)
        }
        need_agree = len(pattern.variables()) < sum(
            1 for t in pattern.args if isinstance(t, Variable)
        )
        for stored in self.matching_bound(
            pattern.predicate, bound, arity=pattern.arity
        ):
            if not need_agree or pattern_agrees(pattern, stored):
                yield stored

    # -- derived views -----------------------------------------------------

    def active_domain(self) -> set[Term]:
        """``dom(I)``: every constant and null occurring in the store."""
        domain: set[Term] = set()
        for atom in self:
            domain.update(atom.args)
        return domain

    def constants(self) -> set[Constant]:
        """All constants occurring in the store."""
        return {t for t in self.active_domain() if isinstance(t, Constant)}

    def nulls(self) -> set[Null]:
        """All labeled nulls occurring in the store."""
        return {t for t in self.active_domain() if isinstance(t, Null)}

    def schema(self) -> dict[str, int]:
        """Predicate → arity map inferred from the stored atoms."""
        return schema_of(self)

    # -- lifecycle ---------------------------------------------------------

    def fresh(self) -> "FactStore":
        """An empty store of the same backend."""
        return type(self)()

    def copy(self) -> "FactStore":
        """An independent copy sharing no mutable state."""
        clone = self.fresh()
        clone.add_all(self)
        return clone

    # -- accounting --------------------------------------------------------

    @abstractmethod
    def memory_report(self, seen: Optional[set[int]] = None) -> MemoryReport:
        """Byte-level accounting of the store's resident structures.

        *seen* lets composite stores (e.g. an overlay) measure several
        member stores without charging shared objects twice.
        """
