"""Work/span accounting for reasoning workloads.

The NC² membership argument is about *depth*: a parallel machine can
decide reachability-like problems in polylogarithmic depth with
polynomial work.  For the engineering claim ("multi-core speed-ups")
the relevant observables are

* **work** — total cost of all tasks,
* **span** — the critical path: what no amount of parallelism removes,
* **makespan(P)** — completion time under *P* workers, here computed
  with the classic LPT (longest processing time first) greedy, which is
  a 4/3-approximation of the optimum and is deterministic.

Per-tuple certainty decisions are independent tasks (span = the single
most expensive tuple); rounds of a semi-naive fixpoint are sequential
but each round's rule applications parallelize (span = sum of
per-round maxima).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "greedy_makespan",
    "speedup_curve",
    "SpeedupPoint",
    "round_work_span",
]


def greedy_makespan(costs: Sequence[float], workers: int) -> float:
    """LPT makespan of independent tasks on *workers* identical workers."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    if not costs:
        return 0.0
    loads = [0.0] * min(workers, len(costs))
    heap: List[float] = list(loads)
    heapq.heapify(heap)
    for cost in sorted(costs, reverse=True):
        lightest = heapq.heappop(heap)
        heapq.heappush(heap, lightest + float(cost))
    return max(heap)


@dataclass(frozen=True)
class SpeedupPoint:
    """One row of a scaling curve."""

    workers: int
    makespan: float
    speedup: float
    efficiency: float


def speedup_curve(
    costs: Sequence[float], worker_counts: Iterable[int]
) -> List[SpeedupPoint]:
    """Makespan/speedup/efficiency for each worker count.

    ``speedup(P) = makespan(1) / makespan(P)``; efficiency divides by
    P.  The curve saturates at ``work / span`` — the parallelism the
    workload inherently offers.
    """
    sequential = greedy_makespan(costs, 1)
    points: List[SpeedupPoint] = []
    for workers in worker_counts:
        makespan = greedy_makespan(costs, workers)
        speedup = sequential / makespan if makespan > 0 else 1.0
        points.append(
            SpeedupPoint(
                workers=workers,
                makespan=makespan,
                speedup=speedup,
                efficiency=speedup / workers,
            )
        )
    return points


def round_work_span(
    per_round_costs: Sequence[Sequence[float]],
) -> Tuple[float, float]:
    """(work, span) of a round-synchronous computation.

    Rounds run sequentially; tasks inside one round run in parallel.
    This models parallel semi-naive evaluation: span = Σ_r max(costs_r)
    — the fixpoint depth is the sequential bottleneck, which is exactly
    why bounded-depth (NC-style) evaluation matters for PWL programs.
    """
    work = 0.0
    span = 0.0
    for costs in per_round_costs:
        if not costs:
            continue
        work += float(sum(costs))
        span += float(max(costs))
    return work, span
