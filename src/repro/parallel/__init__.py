"""Parallel execution of WARD ∩ PWL reasoning (Section 7, future work (1)).

"NLogSpace is contained in the class NC² of highly parallelizable
problems.  This means that reasoning under piece-wise linear warded
sets of TGDs is principally parallelizable, unlike warded sets of TGDs.
We plan to exploit this for the parallel execution of reasoning tasks
in both multi-core settings and in the map-reduce model.  In fact, we
are currently in the process of implementing a multi-core
implementation ..."

Two views of that claim are made executable here:

* :mod:`workplan <repro.parallel.workplan>` — work/span accounting:
  the per-tuple certainty decisions of a query workload are mutually
  independent, so their parallel makespan under *P* workers is a
  scheduling problem over measured per-tuple costs.  ``speedup_curve``
  reports the multi-core scaling shape the paper's preliminary results
  hint at.
* :mod:`executor <repro.parallel.executor>` — an actual multi-worker
  ``certain_answers``: the candidate tuples are decided concurrently by
  a thread pool, with the star-abstraction oracle computed once and
  shared read-only.  Answers are identical to the sequential facade by
  construction.
* :mod:`shardscan <repro.parallel.shardscan>` — shard-parallel CQ
  evaluation over the hash-partitioned sharded store: the pinned
  atom's matches fan out one scan-and-join task per shard, an exact
  partition of the homomorphism space.
"""

from .executor import ParallelReport, parallel_certain_answers
from .shardscan import ShardScanReport, shard_parallel_evaluate
from .workplan import (
    SpeedupPoint,
    greedy_makespan,
    round_work_span,
    speedup_curve,
)

__all__ = [
    "parallel_certain_answers",
    "ParallelReport",
    "shard_parallel_evaluate",
    "ShardScanReport",
    "greedy_makespan",
    "speedup_curve",
    "SpeedupPoint",
    "round_work_span",
]
